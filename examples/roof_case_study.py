#!/usr/bin/env python3
"""Case study: reproduce one row of the paper's Table I on an industrial roof.

Prepares the synthetic reconstruction of Roof 2 (the largest of the paper's
three industrial roofs), runs the solar-data extraction flow, and compares
the traditional and proposed placements for N = 32 modules in strings of 8 --
the configuration of the paper's Figure 7(b)/(e).

Run with:  python examples/roof_case_study.py          (reduced resolution)
           python examples/roof_case_study.py --full   (hourly, every day)
"""

from __future__ import annotations

import argparse

from repro.analysis import placement_ascii, spatial_variation_coefficient, string_uniformity
from repro.core import compare_placements, greedy_floorplan, traditional_floorplan
from repro.experiments import CaseStudyConfig, build_problem, prepare_case_study, roof2_spec
from repro.io import save_placement


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="hourly samples of every day")
    parser.add_argument("--modules", type=int, default=32, help="number of modules to place")
    parser.add_argument(
        "--save", type=str, default="", help="write the proposed placement JSON here"
    )
    args = parser.parse_args()

    config = CaseStudyConfig(
        scale=1.0,
        time_step_minutes=60.0,
        day_stride=1 if args.full else 7,
    )
    print("Preparing Roof 2 (DSM, shading, weather, irradiance field)...")
    study = prepare_case_study(roof2_spec(), config)
    print(
        f"  grid {study.grid.n_cols} x {study.grid.n_rows} elements of "
        f"{study.grid.pitch * 100:.0f} cm, Ng = {study.grid.n_valid} valid"
    )
    p75 = study.solar.percentile_map(75)
    p75_variation = spatial_variation_coefficient(p75)
    print(f"  spatial variation of the p75 irradiance map: CV = {p75_variation:.3f}")

    problem = build_problem(study, args.modules, 8)
    print(
        f"\nPlacing N = {args.modules} modules "
        f"({problem.topology.n_series} in series per string)..."
    )
    traditional = traditional_floorplan(problem)
    greedy = greedy_floorplan(problem, suitability=traditional.suitability)
    comparison = compare_placements(problem, traditional.placement, greedy.placement)

    baseline = comparison.baseline
    candidate = comparison.candidate
    print(f"  traditional ({traditional.strategy}): {baseline.annual_energy_mwh:7.3f} MWh/year")
    print(
        f"  proposed (greedy, {greedy.runtime_s * 1e3:.0f} ms):  "
        f"{candidate.annual_energy_mwh:7.3f} MWh/year"
    )
    print(f"  improvement: {comparison.improvement_percent:+.2f} %  (paper row: +23.6 %)")
    print(
        f"  wiring: {candidate.wiring_extra_length_m:.1f} m extra cable, "
        f"{candidate.wiring_loss_fraction * 100:.3f} % of the yearly energy"
    )

    uniformity_trad = string_uniformity(traditional.placement, traditional.suitability)
    uniformity_greedy = string_uniformity(greedy.placement, traditional.suitability)
    print(
        f"  string uniformity (min/mean suitability per string): "
        f"{uniformity_trad.mean_ratio:.3f} -> {uniformity_greedy.mean_ratio:.3f}"
    )

    shape = problem.grid.shape
    print("\nTraditional placement (letters = series strings):")
    print(placement_ascii(traditional.placement, shape, max_rows=12, max_cols=76))
    print("\nProposed placement:")
    print(placement_ascii(greedy.placement, shape, max_rows=12, max_cols=76))

    if args.save:
        save_placement(greedy.placement, args.save)
        print(f"\nProposed placement written to {args.save}")


if __name__ == "__main__":
    main()
