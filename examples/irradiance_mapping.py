#!/usr/bin/env python3
"""Irradiance mapping: the solar-data extraction flow of the paper's Section IV.

Builds the synthetic Roof 3 scene, runs the DSM shading analysis and the
radiation chain (clear sky + decomposition + transposition), renders the
75th-percentile irradiance map of Figure 6(b), and exports the intermediate
artefacts (DSM as ESRI ASCII grid, weather trace as CSV) so they can be
inspected or fed back through :mod:`repro.io`.

Run with:  python examples/irradiance_mapping.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.analysis import ascii_heatmap, map_statistics, monthly_energy
from repro.experiments import CaseStudyConfig, prepare_case_study, roof3_spec
from repro.io import write_asc, write_weather_csv


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("irradiance_outputs")
    output_dir.mkdir(parents=True, exist_ok=True)

    config = CaseStudyConfig(scale=1.0, time_step_minutes=60.0, day_stride=7)
    print("Preparing Roof 3 (DSM, horizon map, weather, irradiance field)...")
    study = prepare_case_study(roof3_spec(), config)

    print(f"  DSM: {study.scene.dsm.shape[1]} x {study.scene.dsm.shape[0]} cells at "
          f"{study.scene.dsm.pitch} m")
    print(f"  virtual grid: {study.grid.n_cols} x {study.grid.n_rows} at {study.grid.pitch} m, "
          f"Ng = {study.grid.n_valid}")
    print(f"  weather: {study.weather.annual_ghi_kwh_per_m2():.0f} kWh/m^2 of yearly GHI, "
          f"mean temperature {study.weather.mean_temperature():.1f} degC")

    p75 = study.solar.percentile_map(75)
    insolation = study.solar.annual_insolation_map_kwh()
    print("\n75th-percentile irradiance map statistics [W/m^2]:")
    for key, value in map_statistics(p75).items():
        print(f"    {key:>8}: {value:10.2f}")
    print("\nYearly plane-of-array insolation statistics [kWh/m^2]:")
    for key, value in map_statistics(insolation).items():
        print(f"    {key:>8}: {value:10.2f}")

    print("\n75th-percentile irradiance map (Figure 6b analogue):")
    print(ascii_heatmap(p75, max_rows=16, max_cols=76))

    # Monthly profile of the irradiance incident on the best cell.
    best_index = int(np.nanargmax(insolation.ravel()))
    best_row, best_col = np.unravel_index(best_index, insolation.shape)
    series = study.solar.irradiance_for_cell(int(best_row), int(best_col))
    breakdown = monthly_energy(study.solar.time_grid, series)
    print("\nMonthly insolation of the best grid element [kWh/m^2]:")
    for month, energy_wh in breakdown.as_dict().items():
        print(f"    {month}: {energy_wh / 1e3:6.1f}")

    dsm_path = output_dir / "roof3_dsm.asc"
    weather_path = output_dir / "roof3_weather.csv"
    write_asc(study.scene.dsm, dsm_path)
    write_weather_csv(study.weather, weather_path)
    print(f"\nExported DSM to {dsm_path} and weather trace to {weather_path}")


if __name__ == "__main__":
    main()
