#!/usr/bin/env python3
"""Sweep demo: a latitude x module-count grid rendered as a Markdown report.

Takes one small residential scenario, sweeps it across three site latitudes
and two installation sizes through the declarative sweep engine, and renders
the aggregated table -- including the per-stage cache-reuse accounting -- as
a Markdown report artifact.

The interesting part is the accounting: the 3 x 2 = 6 points need only
*three* solar-field computations, because the module-count axis does not
touch the solar content key and the stage cache collapses the rest.

Run with:  python examples/sweep_report.py [--output sweep-report.md]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.gis import RoofSpec, chimney
from repro.scenario import ScenarioSpec, SolarSpec, TimeSpec
from repro.sweep import SweepAxis, SweepPlan, run_sweep
from repro.sweep.report import sweep_report


def base_scenario() -> ScenarioSpec:
    """A small residential scenario, coarse enough to sweep in seconds."""
    roof = RoofSpec(
        name="sweep-demo-roof",
        width_m=9.0,
        depth_m=5.0,
        tilt_deg=30.0,
        azimuth_deg=0.0,
        eave_height_m=5.0,
        edge_setback_m=0.3,
        obstacles=(chimney(2.0, 3.5, side_m=0.8, height_m=1.5),),
    )
    return ScenarioSpec(
        name="sweep-demo",
        roof=roof,
        n_modules=4,
        n_series=2,
        grid_pitch=0.4,
        dsm_pitch=0.5,
        time=TimeSpec(step_minutes=120.0, day_stride=30),
        solar=SolarSpec(n_horizon_sectors=24, horizon_max_distance_m=40.0),
        description="Latitude x module-count sweep demo",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="", help="also write the Markdown report here")
    args = parser.parse_args()

    plan = SweepPlan(
        name="latitude-x-modules",
        base=base_scenario(),
        axes=(
            SweepAxis("weather.latitude_deg", (25.0, 45.0, 65.0)),
            SweepAxis("n_modules", (2, 4)),
        ),
    )
    print(f"sweep {plan.name!r}: {plan.n_points} points "
          f"({' x '.join(axis.name for axis in plan.axes)})")

    # A throwaway cache directory keeps the demo hermetic while still
    # demonstrating the within-run stage reuse across the grid.
    with tempfile.TemporaryDirectory(prefix="repro-sweep-demo-") as cache_dir:
        sweep = run_sweep(plan, cache=cache_dir, parallel=False)

    artifact = sweep_report(sweep, title="Latitude x module-count sweep")
    print()
    print(artifact.markdown)

    recomputed = sweep.stage_recompute_counts()
    print(f"solar fields computed: {recomputed.get('solar', 0)} for "
          f"{sweep.n_points} points (module-count axis reuses the cache)")

    pivot = sweep.pivot("latitude_deg", "n_modules", "annual_energy_mwh")
    print("\nannual energy [MWh/y], latitude (rows) x modules (columns):")
    header = "  lat    " + "".join(f"N={label:<8}" for label in pivot.col_labels)
    print(header)
    for label, row in zip(pivot.row_labels, pivot.values):
        cells = "".join(f"{value:<10.3f}" for value in row)
        print(f"  {label:<7}{cells}")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(artifact.markdown)
        print(f"\nreport written to {args.output}")


if __name__ == "__main__":
    main()
