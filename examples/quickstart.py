#!/usr/bin/env python3
"""Quickstart: optimal PV floorplanning of a small residential roof.

Builds a synthetic 10 m x 6 m south-facing roof with a couple of obstacles,
simulates one year of spatio-temporal irradiance, and compares the
traditional compact placement against the paper's sparse greedy placement
(the scenario of the paper's Figure 1, on a residential scale).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import TimeGrid, plan_roof
from repro.analysis import ascii_heatmap, placement_ascii
from repro.gis import simple_residential_roof


def main() -> None:
    roof = simple_residential_roof(
        name="residential-quickstart",
        width_m=10.0,
        depth_m=6.0,
        tilt_deg=30.0,
        azimuth_deg=0.0,  # facing due south
        n_obstacles=3,
        seed=7,
    )

    # Hourly samples of every 7th day: a fast, unbiased estimate of the year.
    result = plan_roof(
        roof,
        n_modules=8,
        n_series=4,
        time_grid=TimeGrid(step_minutes=60.0, day_stride=7),
        weather_seed=1,
    )

    print("=" * 72)
    print("Quickstart: residential roof, 8 x PV-MF165EB3 (4 in series, 2 strings)")
    print("=" * 72)
    print(result.report())

    print("\n75th-percentile irradiance map (brighter = better):")
    print(ascii_heatmap(result.problem.solar.percentile_map(75), max_rows=14, max_cols=50))

    shape = result.problem.grid.shape
    print("\nTraditional compact placement (letters = series strings):")
    print(placement_ascii(result.traditional.placement, shape, max_rows=14, max_cols=50))
    print("\nProposed sparse placement:")
    print(placement_ascii(result.greedy.placement, shape, max_rows=14, max_cols=50))

    candidate = result.comparison.candidate
    print(
        f"\nWiring overhead of the sparse placement: "
        f"{candidate.wiring_extra_length_m:.1f} m of extra cable, "
        f"{candidate.wiring_loss_fraction * 100:.3f} % of the yearly energy, "
        f"${candidate.wiring_extra_cost:.0f} of material."
    )


if __name__ == "__main__":
    main()
