#!/usr/bin/env python3
"""Module characterisation: regenerate the curves of Figures 2(a) and 3.

Prints the single-diode cell I-V family and the PV-MF165EB3 normalised
characteristics (Pmax, Voc, Isc vs irradiance and temperature) that anchor
the paper's empirical module model, and cross-checks the empirical model
against the physics-based cell model at the maximum power point.

Run with:  python examples/module_characterization.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure2_iv_curves, figure3_module_characteristics
from repro.pv import paper_module_model, reference_cell_for_module


def main() -> None:
    print("=" * 72)
    print("Figure 2(a): single-diode cell I-V curves")
    print("=" * 72)
    family = figure2_iv_curves()
    for irradiance in family.irradiances:
        voltages, currents = family.curve(irradiance, 25.0)
        print(
            f"  G = {irradiance:6.0f} W/m^2 : Isc = {currents[0]:5.2f} A, "
            f"Voc = {voltages[-1]:5.3f} V"
        )
    for temperature in family.temperatures:
        voltages, currents = family.curve(family.irradiances[-1], temperature)
        print(
            f"  T = {temperature:5.1f} degC  : Isc = {currents[0]:5.2f} A, "
            f"Voc = {voltages[-1]:5.3f} V"
        )

    print()
    print("=" * 72)
    print("Figure 3: PV-MF165EB3 normalised characteristics")
    print("=" * 72)
    chars = figure3_module_characteristics()
    print("  vs irradiance (T = 25 degC):")
    print("    G [W/m^2]   Pmax/Pref   Isc/Iref   Voc/Vref")
    for g, p, i, v in zip(chars.irradiances, chars.pmax_vs_g, chars.isc_vs_g, chars.voc_vs_g):
        print(f"    {g:9.0f}   {p:9.3f}   {i:8.3f}   {v:8.3f}")
    print("  vs temperature (G = 1000 W/m^2):")
    print("    T [degC]    Pmax/Pref   Voc/Vref")
    for t, p, v in zip(chars.temperatures, chars.pmax_vs_t, chars.voc_vs_t):
        print(f"    {t:8.1f}   {p:9.3f}   {v:8.3f}")

    print()
    print("=" * 72)
    print("Cross-check: empirical module model vs 50-cell single-diode stack")
    print("=" * 72)
    module = paper_module_model()
    cell = reference_cell_for_module(module_isc=7.36, module_voc=30.4, n_cells=50)
    print("    G [W/m^2]   empirical Pmpp [W]   single-diode Pmpp [W]   ratio")
    for irradiance in (200.0, 400.0, 600.0, 800.0, 1000.0):
        empirical = float(
            module.power_at_cell_temperature(np.array([irradiance]), np.array([25.0]))[0]
        )
        _, _, p_cell = cell.maximum_power_point(irradiance, 25.0)
        physical = p_cell * 50  # 50 series cells share the same current
        ratio = empirical / physical
        print(f"    {irradiance:9.0f}   {empirical:18.1f}   {physical:21.1f}   {ratio:5.2f}")


if __name__ == "__main__":
    main()
