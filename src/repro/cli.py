"""Command-line front-end: ``python -m repro`` / the ``repro`` console script.

Subcommands
-----------
``list-scenarios``
    Show the built-in scenario catalog (name, solver, size, description).
``run``
    Execute one scenario -- built-in by name or loaded from a JSON file --
    through the cached staged pipeline and print its report.
``batch``
    Execute a scenario fleet in parallel worker processes and write a JSONL
    results store.
``compare``
    Run several solvers on the same scenario (sharing every cached stage)
    and print a side-by-side table.
``sweep``
    Expand a declarative sweep -- a plan file, or a base scenario plus
    ``--axis path=v1,v2,...`` flags -- through the cached batch runner and
    print/store the aggregated table.  Runs as a durable campaign by
    default (``--store none`` opts out).
``campaign``
    Fault-tolerant, resumable fleet execution backed by the SQLite result
    store: ``run`` enrolls + executes, ``enroll`` enrolls without
    executing (feeding a worker fleet), ``worker`` joins a cooperative
    fleet pulling points from the shared store until the queue drains,
    ``status`` inspects (per-owner lease view, per-stage latency table),
    ``resume`` re-attempts the missing points from the store alone,
    ``export`` emits the standard JSONL results format, ``doctor`` audits
    the store for corruption and dead-driver leases (``--repair`` fixes
    what it finds).  ``run``/``resume``/``worker`` accept ``--timeout``
    (per-point wall-clock budget enforced by a watchdog) and
    ``--retry-backoff`` (delay between retry attempts); SIGINT/SIGTERM
    mark or release in-flight points and exit with code 130.  ``--store``
    everywhere takes a path or a backend URL (``sqlite:///path``).
``serve``
    Planning-as-a-service: a threaded HTTP/JSON front-end over the
    campaign store.  ``POST /v1/plan`` answers memo hits instantly from
    the content-digest store and enqueues misses into a serve campaign
    (priority ``interactive`` by default) for a ``campaign worker`` fleet
    sharing the same ``--store``; ``GET /v1/requests/<id>`` polls status,
    ``/v1/healthz`` and ``/v1/stats`` expose queue depth, hit ratio and
    admission counters.  ``--max-queue`` bounds the queue (HTTP 429 +
    Retry-After beyond it); SIGTERM/SIGINT shut down cleanly with exit
    code 0.  Defaults honour ``$REPRO_SERVE_PORT`` and
    ``$REPRO_SERVE_MAX_QUEUE``.
``report``
    Generate a paper-artifact report preset (``table1``, ``catalog``) as
    deterministic Markdown or CSV.
``trace``
    Inspect recorded span traces: ``summary`` renders the aggregated
    timing tree (self/cumulative time, slowest spans), ``export`` converts
    to Chrome Trace Event JSON for ``chrome://tracing`` / Perfetto.

All pipeline-running subcommands share the stage-cache flags:
``--cache-dir`` points the content-addressed store somewhere explicit
(default: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), ``--no-cache``
bypasses it.  Campaign state lives in ``--store`` (default:
``$REPRO_STORE_PATH`` or ``<cache dir>/campaigns.sqlite``).  They also
accept ``--trace PATH`` (or honour ``$REPRO_TRACE``) to record a JSONL
span trace of the run; worker shards are merged into one file on exit.
All output flows through a logging emitter honouring ``$REPRO_LOG_LEVEL``
(default ``INFO`` keeps stdout byte-identical to the historical ``print``
output; ``DEBUG`` adds trace/cache diagnostics on stderr).  See
``docs/cli.md`` and ``docs/observability.md`` for a full walkthrough.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence

from . import telemetry
from .errors import ReproError
from .runner.batch import run_batch
from .runner.cache import StageCache, default_cache_dir
from .runner.solvers import available_solvers
from .runner.stages import PIPELINE_STAGES, run_scenario
from .runner.store import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STALE_AFTER_S,
    METRIC_KIND_STAGE_TIME,
    ResultStore,
    default_store_path,
    resolve_store,
)
from .runner.worker import DEFAULT_POLL_S, run_worker
from .scenario.catalog import builtin_scenarios
from .scenario.spec import ScenarioSpec
from .serve.app import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_SERVE_CAMPAIGN,
    SERVE_MAX_QUEUE_ENV,
    SERVE_PORT_ENV,
    ServeApp,
    create_server,
    open_serve_store,
)
from .serve.queue import DEFAULT_MAX_QUEUE
from .sweep import SweepAxis, SweepPlan, run_sweep
from .sweep.report import available_presets, generate_report, sweep_report
from .telemetry import emit_diagnostic, emit_err, emit_error, emit_out


def _cache_from_args(args: argparse.Namespace) -> StageCache:
    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return StageCache(root=root, enabled=not args.no_cache)


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="stage-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the stage cache (recompute everything)",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record a JSONL span trace of this run here "
            "(default: $REPRO_TRACE when set)"
        ),
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help=(
            "campaign result-store database: a path, a backend URL such as "
            "sqlite:///path/to/store.sqlite, or 'none' for the in-memory path "
            "(default: $REPRO_STORE_PATH or <cache dir>/campaigns.sqlite)"
        ),
    )


def _add_robustness_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-point wall-clock budget; overrunning points are killed by "
            "the watchdog and recorded as timed_out (default: unbounded)"
        ),
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "base delay between retry attempts of one point, doubling per "
            "attempt with jitter (default: 0 = retry immediately)"
        ),
    )


def _store_from_args(args: argparse.Namespace) -> "str | Path | None":
    """Resolve ``--store`` to a path, a backend URL string, or ``None``."""
    if args.store is None:
        return default_store_path()
    if args.store.lower() == "none":
        return None
    if "://" in args.store:
        # A backend URL (e.g. sqlite:///path); resolve_store dispatches it
        # through the scheme registry in repro.runner.backend.
        return args.store
    return Path(args.store)


def _print_campaign_summary(summary) -> None:
    emit_out(summary.report())
    recomputes = summary.stage_recomputes
    note = (
        ", ".join(f"{stage}={count}" for stage, count in sorted(recomputes.items()))
        if recomputes
        else "none"
    )
    emit_out(f"stage recomputations (this run): {note}")
    recompute_s = sum(summary.stage_recompute_time_s.values())
    hit_s = sum(summary.stage_hit_time_s.values())
    if recompute_s or hit_s:
        emit_out(
            f"stage wall time (this run): {recompute_s:.2f}s recomputing, "
            f"{hit_s:.2f}s serving cache hits"
        )


def _load_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve a scenario argument: catalog name first, then JSON file path."""
    catalog = builtin_scenarios()
    if name_or_path in catalog:
        return catalog[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        return ScenarioSpec.load(path)
    known = ", ".join(catalog)
    raise ReproError(
        f"{name_or_path!r} is neither a built-in scenario nor a scenario file; "
        f"built-ins: {known}"
    )


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    catalog = builtin_scenarios()
    if args.json:
        records = [
            {
                "name": spec.name,
                "solver": spec.solver.name,
                "n_modules": spec.n_modules,
                "tags": list(spec.tags),
                "description": spec.description,
            }
            for spec in catalog.values()
        ]
        emit_out(json.dumps(records, indent=2))
        return 0
    width = max(len(name) for name in catalog)
    emit_out(f"{len(catalog)} built-in scenarios (solvers: {', '.join(available_solvers())})")
    for spec in catalog.values():
        tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
        emit_out(
            f"  {spec.name:<{width}}  solver={spec.solver.name:<11} "
            f"N={spec.n_modules:<3} {spec.description}{tags}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_scenario(args.scenario)
    if args.solver:
        spec = spec.with_solver(args.solver)
    cache = _cache_from_args(args)
    result = run_scenario(spec, cache=cache)
    emit_out(result.report())
    emit_diagnostic(
        "stage wall times: "
        + ", ".join(
            f"{stage}={seconds:.3f}s"
            for stage, seconds in sorted(result.stage_times_s.items())
        )
    )
    if args.output:
        Path(args.output).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        emit_out(f"result written to {args.output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.scenarios:
        specs = [_load_scenario(name) for name in args.scenarios]
    else:
        specs = list(builtin_scenarios().values())
    cache = _cache_from_args(args)
    store = None if args.store is None else _store_from_args(args)
    if store is None and (args.campaign is not None or args.retries):
        raise ReproError(
            "--campaign/--retries only apply to store-backed batches; add "
            "--store PATH (or use `repro campaign run`)"
        )
    batch = run_batch(
        specs,
        cache=cache,
        jobs=args.jobs,
        results_path=args.results,
        use_cache=not args.no_cache,
        parallel=not args.serial,
        store=store,
        campaign=args.campaign,
        retries=args.retries,
        timeout_s=args.timeout,
        retry_backoff_s=args.retry_backoff,
    )
    for result in batch.results:
        emit_out(result.report())
    if batch.campaign is not None:
        _print_campaign_summary(batch.campaign)
    summary = batch.summary()
    hits = summary["cache_hits_by_stage"]
    hit_note = (
        ", ".join(f"{stage}={count}" for stage, count in sorted(hits.items()))
        if hits
        else "none"
    )
    emit_out(
        f"batch: {batch.n_scenarios} scenarios with {batch.jobs} worker(s) "
        f"in {batch.runtime_s:.2f}s; cache hits: {hit_note}"
    )
    if batch.results_path is not None:
        emit_out(f"results store: {batch.results_path}")
    incomplete = batch.campaign is not None and (
        batch.campaign.failed or batch.campaign.timed_out
    )
    return 1 if incomplete else 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    if args.scenarios:
        specs = [_load_scenario(name) for name in args.scenarios]
    else:
        specs = list(builtin_scenarios().values())
    store = _store_from_args(args)
    if store is None:
        raise ReproError("campaign run needs a result store (--store cannot be 'none')")
    cache = _cache_from_args(args)
    batch = run_batch(
        specs,
        cache=cache,
        jobs=args.jobs,
        results_path=args.results,
        use_cache=not args.no_cache,
        parallel=not args.serial,
        store=store,
        campaign=args.name,
        retries=args.retries,
        timeout_s=args.timeout,
        retry_backoff_s=args.retry_backoff,
    )
    for result in batch.results:
        emit_out(result.report())
    _print_campaign_summary(batch.campaign)
    emit_out(f"store: {store}")
    if batch.results_path is not None:
        emit_out(f"results store: {batch.results_path}")
    return 1 if batch.campaign.failed or batch.campaign.timed_out else 0


def _cmd_campaign_enroll(args: argparse.Namespace) -> int:
    if args.scenarios:
        specs = [_load_scenario(name) for name in args.scenarios]
    else:
        specs = list(builtin_scenarios().values())
    store = _store_from_args(args)
    if store is None:
        raise ReproError("campaign enroll needs a result store (--store cannot be 'none')")
    with resolve_store(store) as result_store:
        records = result_store.enroll(args.name, specs)
        counts = result_store.status_counts(args.name)
    emit_out(
        f"campaign {args.name!r}: {len(records)} point(s) enrolled, "
        f"{counts['pending']} pending, {counts['done']} already done"
    )
    emit_out(f"store: {store}")
    emit_out(f"start workers with: repro campaign worker {args.name} --store {store}")
    return 0


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    store = _store_from_args(args)
    if store is None:
        raise ReproError("campaign worker needs a result store (--store cannot be 'none')")
    summary = run_worker(
        args.name,
        store=store,
        worker_id=args.id,
        cache=_cache_from_args(args),
        use_cache=not args.no_cache,
        serial=args.serial,
        retries=args.retries,
        timeout_s=args.timeout,
        retry_backoff_s=args.retry_backoff,
        heartbeat_s=args.heartbeat,
        stale_after_s=args.stale_after,
        poll_s=args.poll,
        max_points=args.max_points,
        wait_for_stragglers=not args.no_wait,
        warm_start=not args.no_warm_start,
    )
    emit_out(summary.report())
    if summary.stopped_by_signal is not None:
        return 130
    return 1 if summary.failed or summary.timed_out else 0


class _ServeStop(Exception):
    """Raised by the serve signal handlers to unwind ``serve_forever``.

    ``server.shutdown()`` must not be called from a signal handler running
    inside the ``serve_forever`` thread (it blocks until the loop exits --
    a deadlock); raising through the loop instead unwinds cleanly.
    """


def _cmd_serve(args: argparse.Namespace) -> int:
    store_arg = _store_from_args(args)
    if store_arg is None:
        raise ReproError(
            "repro serve needs a durable result store (--store cannot be 'none')"
        )
    port = (
        args.port
        if args.port is not None
        else int(os.environ.get(SERVE_PORT_ENV, DEFAULT_PORT))
    )
    max_queue = (
        args.max_queue
        if args.max_queue is not None
        else int(os.environ.get(SERVE_MAX_QUEUE_ENV, DEFAULT_MAX_QUEUE))
    )
    store = open_serve_store(store_arg)
    app = ServeApp(store, campaign=args.campaign, max_queue=max_queue)
    server = create_server(app, host=args.host, port=port)
    bound_host, bound_port = server.server_address[:2]
    emit_out(f"repro serve listening on http://{bound_host}:{bound_port}")
    emit_out(
        f"store: {store.path} (campaign {args.campaign!r}, max queue {max_queue})"
    )
    emit_out(
        f"drain the queue with: repro campaign worker {args.campaign} "
        f"--store {store.path}"
    )

    def _stop(signum: int, frame: object) -> None:
        raise _ServeStop(signum)

    previous_term = signal.signal(signal.SIGTERM, _stop)
    previous_int = signal.signal(signal.SIGINT, _stop)
    try:
        server.serve_forever(poll_interval=0.2)
    except _ServeStop as stop:
        # SIGTERM/SIGINT is the *intended* way to stop a daemon: exit 0.
        emit_out(f"received signal {stop.args[0]}, shutting down")
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
        server.server_close()
        store.close()
    return 0


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    store_path = _store_from_args(args)
    if store_path is None:
        raise ReproError("campaign resume needs a result store (--store cannot be 'none')")
    cache = _cache_from_args(args)
    with resolve_store(store_path) as store:
        records = store.points(args.name)
        if not records:
            known = ", ".join(name for name, _ in store.campaigns()) or "none"
            raise ReproError(f"store has no campaign {args.name!r}; campaigns: {known}")
        specs = [record.spec() for record in records]
        batch = run_batch(
            specs,
            cache=cache,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            parallel=not args.serial,
            store=store,
            campaign=args.name,
            retries=args.retries,
            timeout_s=args.timeout,
            retry_backoff_s=args.retry_backoff,
        )
    _print_campaign_summary(batch.campaign)
    return 1 if batch.campaign.failed or batch.campaign.timed_out else 0


def _print_stage_latencies(store: ResultStore, campaign: str) -> None:
    """The per-stage latency table of the campaign's latest metrics run."""
    rows = store.metrics(campaign)
    stage_rows = {
        row["name"]: row for row in rows if row["kind"] == METRIC_KIND_STAGE_TIME
    }
    if not stage_rows:
        return
    ordered = [stage for stage in PIPELINE_STAGES if stage in stage_rows]
    ordered += [stage for stage in sorted(stage_rows) if stage not in PIPELINE_STAGES]
    emit_out(f"stage latency (metrics run {rows[0]['run_id']}):")
    emit_out(
        f"  {'stage':<12} {'count':>6} {'p50 s':>9} {'p90 s':>9} "
        f"{'p99 s':>9} {'total s':>9}"
    )
    for stage in ordered:
        row = stage_rows[stage]
        emit_out(
            f"  {stage:<12} {row['count']:>6} {row['p50']:>9.3f} "
            f"{row['p90']:>9.3f} {row['p99']:>9.3f} {row['total']:>9.3f}"
        )


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    store_path = _store_from_args(args)
    if store_path is None:
        raise ReproError("campaign status needs a result store (--store cannot be 'none')")
    with resolve_store(store_path) as store:
        if not args.name:
            campaigns = store.campaigns()
            if args.json:
                emit_out(json.dumps(dict(campaigns), indent=2, sort_keys=True))
                return 0
            if not campaigns:
                emit_out(f"store {store.path} has no campaigns")
                return 0
            emit_out(f"{len(campaigns)} campaign(s) in {store.path}")
            for name, counts in campaigns:
                total = sum(counts.values())
                line = (
                    f"  {name}: {counts['done']}/{total} done, "
                    f"{counts['failed']} failed, {counts['pending']} pending"
                )
                if counts.get("timed_out"):
                    line += f", {counts['timed_out']} timed out"
                emit_out(line)
            return 0
        records = store.points(args.name)
        if not records:
            known = ", ".join(name for name, _ in store.campaigns()) or "none"
            raise ReproError(f"store has no campaign {args.name!r}; campaigns: {known}")
        if args.json:
            payload = [
                {
                    "name": record.name,
                    "digest": record.digest,
                    "status": record.status,
                    "attempts": record.attempts,
                    "wall_time_s": record.wall_time_s,
                    "error": record.error,
                    "degraded": record.degraded,
                    "fallback_solver": record.fallback_solver,
                    "lease_owner": record.lease_owner,
                    "heartbeat_ts": record.heartbeat_ts,
                }
                for record in records
            ]
            emit_out(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        counts = {
            status: 0
            for status in ("pending", "running", "done", "failed", "timed_out")
        }
        for record in records:
            counts[record.status] += 1
        degraded = sum(1 for record in records if record.degraded)
        line = (
            f"campaign {args.name!r}: {counts['done']}/{len(records)} done, "
            f"{counts['failed']} failed, {counts['pending']} pending, "
            f"{counts['running']} running"
        )
        if counts["timed_out"]:
            line += f", {counts['timed_out']} timed out"
        if degraded:
            line += f", {degraded} degraded"
        emit_out(line)
        fleet = store.fleet(args.name)
        if fleet:
            emit_out(
                f"running leases by owner (stale after {args.stale_after:g}s):"
            )
            for row in fleet:
                oldest = row["oldest_heartbeat_age_s"]
                stale = " STALE" if oldest > args.stale_after else ""
                emit_out(
                    f"  {row['owner']}: {row['points']} point(s), "
                    f"last heartbeat {row['newest_heartbeat_age_s']:.1f}s ago "
                    f"(oldest {oldest:.1f}s){stale}"
                )
        width = max(len(record.name) for record in records)
        for record in records:
            wall = "" if record.wall_time_s is None else f" {record.wall_time_s:.2f}s"
            flags = ""
            if record.degraded:
                flags += f" degraded->{record.fallback_solver or '?'}"
            if record.status == "running" and record.lease_owner:
                flags += f" lease={record.lease_owner}"
            emit_out(
                f"  {record.name:<{width}}  {record.status:<9} "
                f"attempts={record.attempts}{wall}{flags}"
            )
            if record.status in ("failed", "timed_out") and record.error:
                emit_out(f"    {record.error.splitlines()[0]}")
        _print_stage_latencies(store, args.name)
    return 0


def _cmd_campaign_doctor(args: argparse.Namespace) -> int:
    store_path = _store_from_args(args)
    if store_path is None:
        raise ReproError("campaign doctor needs a result store (--store cannot be 'none')")
    with resolve_store(store_path) as store:
        report = store.integrity_report(args.name, stale_after_s=args.stale_after)
        emit_out(f"store: {report['path']} (schema v{report['schema_version']})")
        emit_out(f"sqlite integrity: {'ok' if report['sqlite_ok'] else 'FAILED'}")
        if not report["issues"]:
            emit_out("no issues found")
            return 0
        for issue in report["issues"]:
            emit_out(f"issue: {issue}")
        for kind, rows in (
            ("corrupt spec", report["corrupt_specs"]),
            ("corrupt result", report["corrupt_results"]),
            ("stale running", report["stale_running"]),
        ):
            for campaign, digest in rows:
                emit_out(f"  {kind}: {campaign} {digest[:12]}")
        if not args.repair:
            emit_out("run again with --repair to fix the issues above")
            return 1
        counts = store.repair(args.name, stale_after_s=args.stale_after)
        emit_out(
            f"repaired: {counts['results_discarded']} corrupt result(s) discarded, "
            f"{counts['stale_reclaimed']} stale lease(s) reclaimed, "
            f"{counts['specs_deleted']} unrecoverable row(s) deleted"
        )
        emit_out("resume the affected campaign(s) to recompute the demoted points")
    return 0


def _cmd_campaign_export(args: argparse.Namespace) -> int:
    store_path = _store_from_args(args)
    if store_path is None:
        raise ReproError("campaign export needs a result store (--store cannot be 'none')")
    with resolve_store(store_path) as store:
        counts = store.status_counts(args.name)
        if not sum(counts.values()):
            known = ", ".join(name for name, _ in store.campaigns()) or "none"
            raise ReproError(f"store has no campaign {args.name!r}; campaigns: {known}")
        written = store.export(args.name, args.results)
    remaining = sum(counts.values()) - counts["done"]
    emit_out(f"{written} result(s) exported to {args.results}")
    if remaining:
        emit_err(
            f"warning: {remaining} point(s) not done yet (resume the campaign "
            "to complete them)"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = _load_scenario(args.scenario)
    solvers = [name.strip() for name in args.solvers.split(",") if name.strip()]
    if not solvers:
        raise ReproError("--solvers needs at least one solver name")
    cache = _cache_from_args(args)
    rows = []
    for solver in solvers:
        result = run_scenario(spec.with_solver(solver), cache=cache)
        rows.append(result)
    best = max(row.annual_energy_mwh for row in rows)
    emit_out(f"{spec.name}: N={spec.n_modules} ({len(rows)} solvers)")
    emit_out(f"  {'solver':<12} {'energy MWh/y':>13} {'vs best':>9} {'wiring m':>9} {'time s':>7}")
    for row in rows:
        delta = (
            0.0 if best <= 0 else 100.0 * (row.annual_energy_mwh - best) / best
        )
        emit_out(
            f"  {row.solver:<12} {row.annual_energy_mwh:>13.3f} {delta:>8.2f}% "
            f"{row.wiring_extra_length_m:>9.1f} {row.runtime_s:>7.2f}"
        )
    return 0


def _parse_axis_argument(text: str) -> SweepAxis:
    """Parse one ``--axis path=v1,v2,...`` flag into a :class:`SweepAxis`.

    Each comma-separated token is parsed as JSON when possible (numbers,
    booleans, ``null``) and kept as a plain string otherwise, so
    ``--axis weather.seed=1,2,3`` yields integers while
    ``--axis solver.name=greedy,traditional`` yields strings.
    """
    path, sep, values_text = text.partition("=")
    if not sep or not path or not values_text:
        raise ReproError(f"malformed --axis {text!r}; expected path=v1,v2,...")
    values: List[Any] = []
    for token in values_text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(json.loads(token))
        except json.JSONDecodeError:
            values.append(token)
    if not values:
        raise ReproError(f"--axis {text!r} has no values")
    return SweepAxis(path, tuple(values))


def _load_sweep_plan(args: argparse.Namespace) -> SweepPlan:
    """Build the sweep plan from a plan file or from --base/--axis flags."""
    if args.plan:
        if args.base or args.axis:
            raise ReproError("pass either a plan file or --base/--axis, not both")
        if args.zip or args.name:
            raise ReproError(
                "--zip/--name only apply to ad-hoc --base/--axis sweeps; "
                "set the mode and name inside the plan file instead"
            )
        path = Path(args.plan)
        if not path.exists():
            raise ReproError(f"sweep plan file {args.plan!r} does not exist")
        return SweepPlan.load(path)
    if not args.base or not args.axis:
        raise ReproError("a sweep needs a plan file, or --base plus at least one --axis")
    base = _load_scenario(args.base)
    axes = tuple(_parse_axis_argument(text) for text in args.axis)
    return SweepPlan(
        name=args.name if args.name else f"sweep-{base.name}",
        base=base,
        axes=axes,
        mode="zip" if args.zip else "grid",
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    plan = _load_sweep_plan(args)
    if args.save_plan:
        plan.save(args.save_plan)
        emit_out(f"sweep plan written to {args.save_plan}")
    cache = _cache_from_args(args)
    sweep = run_sweep(
        plan,
        cache=cache,
        jobs=args.jobs,
        results_path=args.results,
        use_cache=not args.no_cache,
        parallel=not args.serial,
        store=_store_from_args(args),
        retries=args.retries,
        timeout_s=args.timeout,
        retry_backoff_s=args.retry_backoff,
        warm_start=True if args.warm_start else None,
    )
    artifact = sweep_report(sweep)
    emit_out(artifact.text("csv" if args.format == "csv" else "markdown"), end="")
    summary = sweep.summary()
    recomputes = summary["cache_recomputes_by_stage"]
    note = (
        ", ".join(f"{stage}={count}" for stage, count in sorted(recomputes.items()))
        if recomputes
        else "none"
    )
    emit_err(
        f"\nsweep {plan.name!r}: {sweep.n_points} points with {sweep.jobs} "
        f"worker(s) in {sweep.runtime_s:.2f}s; stage recomputations: {note}"
    )
    if sweep.campaign is not None:
        emit_err(
            f"campaign {sweep.campaign.campaign!r}: computed "
            f"{sweep.campaign.computed}, skipped {sweep.campaign.skipped}, "
            f"retried {sweep.campaign.retried}"
        )
    if args.output:
        sweep.save(args.output)
        emit_err(f"sweep result written to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    kwargs: dict = {}
    if args.preset == "table1":
        from .experiments import CaseStudyConfig, Table1Config

        module_counts = tuple(
            int(token) for token in args.modules.split(",") if token.strip()
        )
        if not module_counts:
            raise ReproError("--modules needs at least one module count")
        config = Table1Config(
            module_counts=module_counts,
            series_length=args.series_length,
            case_study=CaseStudyConfig(
                scale=args.scale,
                time_step_minutes=args.step_minutes,
                day_stride=args.day_stride,
            ),
            solver=args.solver,
        )
        kwargs = {
            "config": config,
            "roofs": (
                tuple(token for token in args.roofs.split(",") if token.strip())
                if args.roofs
                else None
            ),
            "cache": _cache_from_args(args),
            "jobs": args.jobs,
            "use_cache": not args.no_cache,
            "parallel": not args.serial,
        }
    artifact = generate_report(args.preset, **kwargs)
    text = artifact.text(args.format)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        emit_out(f"{args.preset} report written to {args.output}")
    else:
        emit_out(text, end="")
    return 0


def _load_trace_events(path_text: str) -> List[dict]:
    path = Path(path_text)
    if not path.exists():
        raise ReproError(f"trace file {path_text!r} does not exist")
    events = telemetry.read_trace(path)
    if not events:
        raise ReproError(f"trace file {path_text!r} contains no events")
    return events


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    events = _load_trace_events(args.trace_file)
    emit_out(telemetry.render_summary(events, slowest=args.slowest))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    events = _load_trace_events(args.trace_file)
    payload = telemetry.chrome_trace(events)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        emit_out(
            f"chrome trace with {len(payload['traceEvents'])} event(s) "
            f"written to {args.output}"
        )
    else:
        emit_out(text, end="")
    return 0


# ---------------------------------------------------------------------------
# Parser assembly
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GIS-based PV floorplanning: scenario runner and batch executor.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-scenarios", help="show the built-in scenario catalog"
    )
    list_parser.add_argument("--json", action="store_true", help="emit JSON")
    list_parser.set_defaults(func=_cmd_list_scenarios)

    run_parser = subparsers.add_parser(
        "run", help="run one scenario (built-in name or JSON file)"
    )
    run_parser.add_argument("scenario", help="built-in scenario name or path to a JSON spec")
    run_parser.add_argument(
        "--solver",
        default=None,
        choices=available_solvers(),
        help="override the scenario's solver",
    )
    run_parser.add_argument("--output", default=None, help="write the result JSON here")
    _add_cache_arguments(run_parser)
    _add_trace_argument(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    batch_parser = subparsers.add_parser(
        "batch", help="run a scenario fleet in parallel and store JSONL results"
    )
    batch_parser.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names / JSON files (default: the whole built-in catalog)",
    )
    batch_parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: cpu count)"
    )
    batch_parser.add_argument(
        "--serial", action="store_true", help="run in-process without worker processes"
    )
    batch_parser.add_argument(
        "--results", default="repro-results.jsonl", help="JSONL results store path"
    )
    batch_parser.add_argument(
        "--campaign",
        default=None,
        help="campaign name when running against a result store (default: 'batch')",
    )
    batch_parser.add_argument(
        "--retries", type=int, default=0, help="per-point retry budget (store-backed only)"
    )
    _add_robustness_arguments(batch_parser)
    _add_store_argument(batch_parser)
    _add_cache_arguments(batch_parser)
    _add_trace_argument(batch_parser)
    batch_parser.set_defaults(func=_cmd_batch)

    compare_parser = subparsers.add_parser(
        "compare", help="run several solvers on one scenario and compare"
    )
    compare_parser.add_argument("scenario", help="built-in scenario name or JSON file")
    compare_parser.add_argument(
        "--solvers",
        default="greedy,traditional",
        help="comma-separated solver names (default: greedy,traditional)",
    )
    _add_cache_arguments(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    sweep_parser = subparsers.add_parser(
        "sweep", help="expand and run a declarative sweep through the cached runner"
    )
    sweep_parser.add_argument(
        "plan", nargs="?", default=None, help="sweep plan JSON file (see docs/cli.md)"
    )
    sweep_parser.add_argument(
        "--base", default=None, help="base scenario (built-in name or JSON file)"
    )
    sweep_parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="PATH=V1,V2,...",
        help="sweep axis as dotted override path plus values (repeatable)",
    )
    sweep_parser.add_argument(
        "--zip", action="store_true", help="pair axes element-wise instead of the grid"
    )
    sweep_parser.add_argument("--name", default=None, help="name of the ad-hoc sweep")
    sweep_parser.add_argument(
        "--save-plan", default=None, help="write the expanded plan JSON here"
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: cpu count)"
    )
    sweep_parser.add_argument(
        "--serial", action="store_true", help="run in-process without worker processes"
    )
    sweep_parser.add_argument(
        "--warm-start",
        action="store_true",
        help="solve points in axis-ascending order, warm-starting each from its "
        "nearest solved neighbour (results identical to cold, only faster)",
    )
    sweep_parser.add_argument(
        "--results", default=None, help="write per-point JSONL records here"
    )
    sweep_parser.add_argument(
        "--output", default=None, help="write the aggregated sweep result JSON here"
    )
    sweep_parser.add_argument(
        "--format",
        default="markdown",
        choices=("markdown", "csv"),
        help="stdout table format",
    )
    sweep_parser.add_argument(
        "--retries", type=int, default=0, help="per-point retry budget (store-backed only)"
    )
    _add_robustness_arguments(sweep_parser)
    _add_store_argument(sweep_parser)
    _add_cache_arguments(sweep_parser)
    _add_trace_argument(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="durable, resumable fleet execution backed by the SQLite result store",
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="enroll scenarios in a campaign and execute the missing points"
    )
    campaign_run.add_argument("name", help="campaign name (keys the store rows)")
    campaign_run.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names / JSON files (default: the whole built-in catalog)",
    )
    campaign_run.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: cpu count)"
    )
    campaign_run.add_argument(
        "--serial", action="store_true", help="run in-process without worker processes"
    )
    campaign_run.add_argument(
        "--retries", type=int, default=0, help="per-point retry budget within this run"
    )
    campaign_run.add_argument(
        "--results", default=None, help="also write completed results as JSONL here"
    )
    _add_robustness_arguments(campaign_run)
    _add_store_argument(campaign_run)
    _add_cache_arguments(campaign_run)
    _add_trace_argument(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_enroll = campaign_sub.add_parser(
        "enroll",
        help="enroll scenarios as campaign points without executing them "
        "(feed a worker fleet)",
    )
    campaign_enroll.add_argument("name", help="campaign name (keys the store rows)")
    campaign_enroll.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names / JSON files (default: the whole built-in catalog)",
    )
    _add_store_argument(campaign_enroll)
    campaign_enroll.set_defaults(func=_cmd_campaign_enroll)

    campaign_worker = campaign_sub.add_parser(
        "worker",
        help="join a campaign as one worker of a cooperative fleet "
        "(claim -> run -> heartbeat -> mark until the queue drains)",
    )
    campaign_worker.add_argument("name", help="campaign name to pull points from")
    campaign_worker.add_argument(
        "--id",
        default=None,
        metavar="WORKER_ID",
        help="lease identity written into claimed rows (default: host:pid)",
    )
    campaign_worker.add_argument(
        "--serial",
        action="store_true",
        help="run points in-process instead of a single-process pool "
        "(no mid-point heartbeats, post-hoc timeouts)",
    )
    campaign_worker.add_argument(
        "--retries", type=int, default=0, help="per-point retry budget"
    )
    campaign_worker.add_argument(
        "--no-warm-start",
        action="store_true",
        help="ignore warm-start wiring recorded at enrollment; every claimed "
        "point solves cold",
    )
    campaign_worker.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_HEARTBEAT_S,
        metavar="SECONDS",
        help=f"mid-point heartbeat cadence (default: {DEFAULT_HEARTBEAT_S:g})",
    )
    campaign_worker.add_argument(
        "--stale-after",
        type=float,
        default=DEFAULT_STALE_AFTER_S,
        metavar="SECONDS",
        help="heartbeat age beyond which a sibling's running row is adopted "
        f"(default: {DEFAULT_STALE_AFTER_S:g})",
    )
    campaign_worker.add_argument(
        "--poll",
        type=float,
        default=DEFAULT_POLL_S,
        metavar="SECONDS",
        help="sleep between claim attempts while waiting on siblings "
        f"(default: {DEFAULT_POLL_S:g})",
    )
    campaign_worker.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="stop after claiming N points (default: run until drained)",
    )
    campaign_worker.add_argument(
        "--no-wait",
        action="store_true",
        help="exit as soon as no row is claimable instead of waiting to "
        "adopt siblings' stale leases",
    )
    _add_robustness_arguments(campaign_worker)
    _add_store_argument(campaign_worker)
    _add_cache_arguments(campaign_worker)
    _add_trace_argument(campaign_worker)
    campaign_worker.set_defaults(func=_cmd_campaign_worker)

    campaign_status = campaign_sub.add_parser(
        "status", help="inspect campaign state (per-point when a name is given)"
    )
    campaign_status.add_argument(
        "name", nargs="?", default=None, help="campaign name (omit to list campaigns)"
    )
    campaign_status.add_argument("--json", action="store_true", help="emit JSON")
    campaign_status.add_argument(
        "--stale-after",
        type=float,
        default=DEFAULT_STALE_AFTER_S,
        metavar="SECONDS",
        help="heartbeat age beyond which a running lease is flagged STALE "
        f"in the fleet view (default: {DEFAULT_STALE_AFTER_S:g})",
    )
    _add_store_argument(campaign_status)
    campaign_status.set_defaults(func=_cmd_campaign_status)

    campaign_resume = campaign_sub.add_parser(
        "resume",
        help="re-run a campaign's missing points from the store alone "
        "(no plan or scenario arguments needed)",
    )
    campaign_resume.add_argument("name", help="campaign name")
    campaign_resume.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: cpu count)"
    )
    campaign_resume.add_argument(
        "--serial", action="store_true", help="run in-process without worker processes"
    )
    campaign_resume.add_argument(
        "--retries", type=int, default=0, help="per-point retry budget within this run"
    )
    _add_robustness_arguments(campaign_resume)
    _add_store_argument(campaign_resume)
    _add_cache_arguments(campaign_resume)
    _add_trace_argument(campaign_resume)
    campaign_resume.set_defaults(func=_cmd_campaign_resume)

    campaign_doctor = campaign_sub.add_parser(
        "doctor",
        help="audit the result store for corruption and dead-driver leases "
        "(--repair to fix)",
    )
    campaign_doctor.add_argument(
        "name", nargs="?", default=None, help="campaign name (omit to audit every campaign)"
    )
    campaign_doctor.add_argument(
        "--repair",
        action="store_true",
        help="fix the issues found: demote corrupt/stale rows so a resume "
        "recomputes them, delete unrecoverable rows",
    )
    campaign_doctor.add_argument(
        "--stale-after",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="heartbeat age beyond which a running row counts as abandoned "
        "(default: 300)",
    )
    _add_store_argument(campaign_doctor)
    campaign_doctor.set_defaults(func=_cmd_campaign_doctor)

    campaign_export = campaign_sub.add_parser(
        "export",
        help="write the campaign's completed results as a JSONL store "
        "(byte-compatible with `repro batch --results`)",
    )
    campaign_export.add_argument("name", help="campaign name")
    campaign_export.add_argument(
        "--results", required=True, help="JSONL output path"
    )
    _add_store_argument(campaign_export)
    campaign_export.set_defaults(func=_cmd_campaign_export)

    serve_parser = subparsers.add_parser(
        "serve",
        help="HTTP planning service: memo hits answered from the store, "
        "misses enqueued for a worker fleet",
    )
    serve_parser.add_argument(
        "--host",
        default=DEFAULT_HOST,
        help=f"bind address (default: {DEFAULT_HOST})",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=(
            "bind port; 0 picks a free port "
            f"(default: $REPRO_SERVE_PORT or {DEFAULT_PORT})"
        ),
    )
    serve_parser.add_argument(
        "--campaign",
        default=DEFAULT_SERVE_CAMPAIGN,
        help=(
            "campaign cache misses are enrolled into "
            f"(default: {DEFAULT_SERVE_CAMPAIGN!r})"
        ),
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help=(
            "refuse new work (HTTP 429) beyond this many pending+running "
            f"points (default: $REPRO_SERVE_MAX_QUEUE or {DEFAULT_MAX_QUEUE})"
        ),
    )
    _add_store_argument(serve_parser)
    _add_trace_argument(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    report_parser = subparsers.add_parser(
        "report", help="generate a paper-artifact report preset"
    )
    report_parser.add_argument(
        "--preset",
        required=True,
        choices=available_presets(),
        help="which artifact to generate",
    )
    report_parser.add_argument(
        "--format",
        default="markdown",
        choices=("markdown", "csv"),
        help="artifact format",
    )
    report_parser.add_argument("--output", default=None, help="write the artifact here")
    report_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="[table1] case-study scale (1.0 = paper-sized roofs)",
    )
    report_parser.add_argument(
        "--modules",
        default="16,32",
        help="[table1] comma-separated module counts (default: 16,32)",
    )
    report_parser.add_argument(
        "--series-length",
        type=int,
        default=8,
        help="[table1] modules per series string (default: 8)",
    )
    report_parser.add_argument(
        "--roofs", default=None, help="[table1] comma-separated subset of roof names"
    )
    report_parser.add_argument(
        "--step-minutes",
        type=float,
        default=60.0,
        help="[table1] simulation time step (default: 60)",
    )
    report_parser.add_argument(
        "--day-stride",
        type=int,
        default=7,
        help="[table1] simulate every k-th day (default: 7)",
    )
    report_parser.add_argument(
        "--solver",
        default="greedy",
        choices=available_solvers(),
        help="[table1] proposed-placement solver (default: greedy)",
    )
    report_parser.add_argument(
        "--jobs", type=int, default=None, help="[table1] worker processes"
    )
    report_parser.add_argument(
        "--serial", action="store_true", help="[table1] run without worker processes"
    )
    _add_cache_arguments(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect and convert recorded JSONL span traces"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    trace_summary = trace_sub.add_parser(
        "summary", help="aggregated timing tree of a merged trace"
    )
    trace_summary.add_argument("trace_file", help="merged trace JSONL path")
    trace_summary.add_argument(
        "--slowest",
        type=int,
        default=5,
        help="how many slowest individual spans to list (default: 5)",
    )
    trace_summary.set_defaults(func=_cmd_trace_summary)

    trace_export = trace_sub.add_parser(
        "export", help="convert a trace for external viewers"
    )
    trace_export.add_argument("trace_file", help="merged trace JSONL path")
    trace_export.add_argument(
        "--format",
        default="chrome",
        choices=("chrome",),
        help="output format (Chrome Trace Event JSON for chrome://tracing)",
    )
    trace_export.add_argument(
        "--output", default=None, help="write the converted trace here (default: stdout)"
    )
    trace_export.set_defaults(func=_cmd_trace_export)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    telemetry.configure_cli_logging()
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    explicit_trace = bool(getattr(args, "trace", None))
    if explicit_trace:
        telemetry.configure(args.trace)
    else:
        # Honour $REPRO_TRACE changes between in-process invocations.
        telemetry.configure_from_env()
    try:
        return args.func(args)
    except ReproError as exc:
        emit_error(f"error: {exc}")
        return 2
    except KeyboardInterrupt as exc:
        # SIGINT/SIGTERM during a batch/campaign: in-flight points were
        # already marked failed ("interrupted") by the runner's handlers.
        emit_error(f"interrupted: {exc or 'stopped by signal'}")
        return 130
    except BrokenPipeError:
        # Downstream consumer (e.g. `repro list-scenarios | head`) closed
        # the pipe; exit quietly with the conventional SIGPIPE status.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141
    finally:
        merged = telemetry.merge_active_trace()
        if merged is not None:
            emit_diagnostic(f"trace merged into {merged}")
        if explicit_trace:
            # Keep in-process invocations hermetic: an explicit --trace
            # applies to this command only, not to later main() calls.
            telemetry.configure(None)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
