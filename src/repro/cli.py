"""Command-line front-end: ``python -m repro`` / the ``repro`` console script.

Subcommands
-----------
``list-scenarios``
    Show the built-in scenario catalog (name, solver, size, description).
``run``
    Execute one scenario -- built-in by name or loaded from a JSON file --
    through the cached staged pipeline and print its report.
``batch``
    Execute a scenario fleet in parallel worker processes and write a JSONL
    results store.
``compare``
    Run several solvers on the same scenario (sharing every cached stage)
    and print a side-by-side table.
``sweep``
    Expand a declarative sweep -- a plan file, or a base scenario plus
    ``--axis path=v1,v2,...`` flags -- through the cached batch runner and
    print/store the aggregated table.
``report``
    Generate a paper-artifact report preset (``table1``, ``catalog``) as
    deterministic Markdown or CSV.

All pipeline-running subcommands share the stage-cache flags:
``--cache-dir`` points the content-addressed store somewhere explicit
(default: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), ``--no-cache``
bypasses it.  See ``docs/cli.md`` for a full walkthrough.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence

from .errors import ReproError
from .runner.batch import run_batch
from .runner.cache import StageCache, default_cache_dir
from .runner.solvers import available_solvers
from .runner.stages import run_scenario
from .scenario.catalog import builtin_scenarios, get_scenario
from .scenario.spec import ScenarioSpec, SolverSpec
from .sweep import SweepAxis, SweepPlan, run_sweep
from .sweep.report import available_presets, generate_report, sweep_report


def _cache_from_args(args: argparse.Namespace) -> StageCache:
    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return StageCache(root=root, enabled=not args.no_cache)


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="stage-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the stage cache (recompute everything)",
    )


def _load_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve a scenario argument: catalog name first, then JSON file path."""
    catalog = builtin_scenarios()
    if name_or_path in catalog:
        return catalog[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        return ScenarioSpec.load(path)
    known = ", ".join(catalog)
    raise ReproError(
        f"{name_or_path!r} is neither a built-in scenario nor a scenario file; "
        f"built-ins: {known}"
    )


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    catalog = builtin_scenarios()
    if args.json:
        records = [
            {
                "name": spec.name,
                "solver": spec.solver.name,
                "n_modules": spec.n_modules,
                "tags": list(spec.tags),
                "description": spec.description,
            }
            for spec in catalog.values()
        ]
        print(json.dumps(records, indent=2))
        return 0
    width = max(len(name) for name in catalog)
    print(f"{len(catalog)} built-in scenarios (solvers: {', '.join(available_solvers())})")
    for spec in catalog.values():
        tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
        print(
            f"  {spec.name:<{width}}  solver={spec.solver.name:<11} "
            f"N={spec.n_modules:<3} {spec.description}{tags}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_scenario(args.scenario)
    if args.solver:
        spec = spec.with_solver(args.solver)
    cache = _cache_from_args(args)
    result = run_scenario(spec, cache=cache)
    print(result.report())
    if args.output:
        Path(args.output).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"result written to {args.output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.scenarios:
        specs = [_load_scenario(name) for name in args.scenarios]
    else:
        specs = list(builtin_scenarios().values())
    cache = _cache_from_args(args)
    batch = run_batch(
        specs,
        cache=cache,
        jobs=args.jobs,
        results_path=args.results,
        use_cache=not args.no_cache,
        parallel=not args.serial,
    )
    for result in batch.results:
        print(result.report())
    summary = batch.summary()
    hits = summary["cache_hits_by_stage"]
    hit_note = (
        ", ".join(f"{stage}={count}" for stage, count in sorted(hits.items()))
        if hits
        else "none"
    )
    print(
        f"batch: {batch.n_scenarios} scenarios with {batch.jobs} worker(s) "
        f"in {batch.runtime_s:.2f}s; cache hits: {hit_note}"
    )
    if batch.results_path is not None:
        print(f"results store: {batch.results_path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = _load_scenario(args.scenario)
    solvers = [name.strip() for name in args.solvers.split(",") if name.strip()]
    if not solvers:
        raise ReproError("--solvers needs at least one solver name")
    cache = _cache_from_args(args)
    rows = []
    for solver in solvers:
        result = run_scenario(spec.with_solver(solver), cache=cache)
        rows.append(result)
    best = max(row.annual_energy_mwh for row in rows)
    print(f"{spec.name}: N={spec.n_modules} ({len(rows)} solvers)")
    print(f"  {'solver':<12} {'energy MWh/y':>13} {'vs best':>9} {'wiring m':>9} {'time s':>7}")
    for row in rows:
        delta = (
            0.0 if best <= 0 else 100.0 * (row.annual_energy_mwh - best) / best
        )
        print(
            f"  {row.solver:<12} {row.annual_energy_mwh:>13.3f} {delta:>8.2f}% "
            f"{row.wiring_extra_length_m:>9.1f} {row.runtime_s:>7.2f}"
        )
    return 0


def _parse_axis_argument(text: str) -> SweepAxis:
    """Parse one ``--axis path=v1,v2,...`` flag into a :class:`SweepAxis`.

    Each comma-separated token is parsed as JSON when possible (numbers,
    booleans, ``null``) and kept as a plain string otherwise, so
    ``--axis weather.seed=1,2,3`` yields integers while
    ``--axis solver.name=greedy,traditional`` yields strings.
    """
    path, sep, values_text = text.partition("=")
    if not sep or not path or not values_text:
        raise ReproError(f"malformed --axis {text!r}; expected path=v1,v2,...")
    values: List[Any] = []
    for token in values_text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(json.loads(token))
        except json.JSONDecodeError:
            values.append(token)
    if not values:
        raise ReproError(f"--axis {text!r} has no values")
    return SweepAxis(path, tuple(values))


def _load_sweep_plan(args: argparse.Namespace) -> SweepPlan:
    """Build the sweep plan from a plan file or from --base/--axis flags."""
    if args.plan:
        if args.base or args.axis:
            raise ReproError("pass either a plan file or --base/--axis, not both")
        if args.zip or args.name:
            raise ReproError(
                "--zip/--name only apply to ad-hoc --base/--axis sweeps; "
                "set the mode and name inside the plan file instead"
            )
        path = Path(args.plan)
        if not path.exists():
            raise ReproError(f"sweep plan file {args.plan!r} does not exist")
        return SweepPlan.load(path)
    if not args.base or not args.axis:
        raise ReproError("a sweep needs a plan file, or --base plus at least one --axis")
    base = _load_scenario(args.base)
    axes = tuple(_parse_axis_argument(text) for text in args.axis)
    return SweepPlan(
        name=args.name if args.name else f"sweep-{base.name}",
        base=base,
        axes=axes,
        mode="zip" if args.zip else "grid",
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    plan = _load_sweep_plan(args)
    if args.save_plan:
        plan.save(args.save_plan)
        print(f"sweep plan written to {args.save_plan}")
    cache = _cache_from_args(args)
    sweep = run_sweep(
        plan,
        cache=cache,
        jobs=args.jobs,
        results_path=args.results,
        use_cache=not args.no_cache,
        parallel=not args.serial,
    )
    artifact = sweep_report(sweep)
    print(artifact.text("csv" if args.format == "csv" else "markdown"), end="")
    summary = sweep.summary()
    recomputes = summary["cache_recomputes_by_stage"]
    note = (
        ", ".join(f"{stage}={count}" for stage, count in sorted(recomputes.items()))
        if recomputes
        else "none"
    )
    print(
        f"\nsweep {plan.name!r}: {sweep.n_points} points with {sweep.jobs} "
        f"worker(s) in {sweep.runtime_s:.2f}s; stage recomputations: {note}",
        file=sys.stderr,
    )
    if args.output:
        sweep.save(args.output)
        print(f"sweep result written to {args.output}", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    kwargs: dict = {}
    if args.preset == "table1":
        from .experiments import CaseStudyConfig, Table1Config

        module_counts = tuple(
            int(token) for token in args.modules.split(",") if token.strip()
        )
        if not module_counts:
            raise ReproError("--modules needs at least one module count")
        config = Table1Config(
            module_counts=module_counts,
            series_length=args.series_length,
            case_study=CaseStudyConfig(
                scale=args.scale,
                time_step_minutes=args.step_minutes,
                day_stride=args.day_stride,
            ),
            solver=args.solver,
        )
        kwargs = {
            "config": config,
            "roofs": (
                tuple(token for token in args.roofs.split(",") if token.strip())
                if args.roofs
                else None
            ),
            "cache": _cache_from_args(args),
            "jobs": args.jobs,
            "use_cache": not args.no_cache,
            "parallel": not args.serial,
        }
    artifact = generate_report(args.preset, **kwargs)
    text = artifact.text(args.format)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"{args.preset} report written to {args.output}")
    else:
        print(text, end="")
    return 0


# ---------------------------------------------------------------------------
# Parser assembly
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GIS-based PV floorplanning: scenario runner and batch executor.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-scenarios", help="show the built-in scenario catalog"
    )
    list_parser.add_argument("--json", action="store_true", help="emit JSON")
    list_parser.set_defaults(func=_cmd_list_scenarios)

    run_parser = subparsers.add_parser(
        "run", help="run one scenario (built-in name or JSON file)"
    )
    run_parser.add_argument("scenario", help="built-in scenario name or path to a JSON spec")
    run_parser.add_argument(
        "--solver",
        default=None,
        choices=available_solvers(),
        help="override the scenario's solver",
    )
    run_parser.add_argument("--output", default=None, help="write the result JSON here")
    _add_cache_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    batch_parser = subparsers.add_parser(
        "batch", help="run a scenario fleet in parallel and store JSONL results"
    )
    batch_parser.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names / JSON files (default: the whole built-in catalog)",
    )
    batch_parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: cpu count)"
    )
    batch_parser.add_argument(
        "--serial", action="store_true", help="run in-process without worker processes"
    )
    batch_parser.add_argument(
        "--results", default="repro-results.jsonl", help="JSONL results store path"
    )
    _add_cache_arguments(batch_parser)
    batch_parser.set_defaults(func=_cmd_batch)

    compare_parser = subparsers.add_parser(
        "compare", help="run several solvers on one scenario and compare"
    )
    compare_parser.add_argument("scenario", help="built-in scenario name or JSON file")
    compare_parser.add_argument(
        "--solvers",
        default="greedy,traditional",
        help="comma-separated solver names (default: greedy,traditional)",
    )
    _add_cache_arguments(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    sweep_parser = subparsers.add_parser(
        "sweep", help="expand and run a declarative sweep through the cached runner"
    )
    sweep_parser.add_argument(
        "plan", nargs="?", default=None, help="sweep plan JSON file (see docs/cli.md)"
    )
    sweep_parser.add_argument(
        "--base", default=None, help="base scenario (built-in name or JSON file)"
    )
    sweep_parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="PATH=V1,V2,...",
        help="sweep axis as dotted override path plus values (repeatable)",
    )
    sweep_parser.add_argument(
        "--zip", action="store_true", help="pair axes element-wise instead of the grid"
    )
    sweep_parser.add_argument("--name", default=None, help="name of the ad-hoc sweep")
    sweep_parser.add_argument(
        "--save-plan", default=None, help="write the expanded plan JSON here"
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: cpu count)"
    )
    sweep_parser.add_argument(
        "--serial", action="store_true", help="run in-process without worker processes"
    )
    sweep_parser.add_argument(
        "--results", default=None, help="write per-point JSONL records here"
    )
    sweep_parser.add_argument(
        "--output", default=None, help="write the aggregated sweep result JSON here"
    )
    sweep_parser.add_argument(
        "--format",
        default="markdown",
        choices=("markdown", "csv"),
        help="stdout table format",
    )
    _add_cache_arguments(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    report_parser = subparsers.add_parser(
        "report", help="generate a paper-artifact report preset"
    )
    report_parser.add_argument(
        "--preset",
        required=True,
        choices=available_presets(),
        help="which artifact to generate",
    )
    report_parser.add_argument(
        "--format",
        default="markdown",
        choices=("markdown", "csv"),
        help="artifact format",
    )
    report_parser.add_argument("--output", default=None, help="write the artifact here")
    report_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="[table1] case-study scale (1.0 = paper-sized roofs)",
    )
    report_parser.add_argument(
        "--modules",
        default="16,32",
        help="[table1] comma-separated module counts (default: 16,32)",
    )
    report_parser.add_argument(
        "--series-length",
        type=int,
        default=8,
        help="[table1] modules per series string (default: 8)",
    )
    report_parser.add_argument(
        "--roofs", default=None, help="[table1] comma-separated subset of roof names"
    )
    report_parser.add_argument(
        "--step-minutes",
        type=float,
        default=60.0,
        help="[table1] simulation time step (default: 60)",
    )
    report_parser.add_argument(
        "--day-stride",
        type=int,
        default=7,
        help="[table1] simulate every k-th day (default: 7)",
    )
    report_parser.add_argument(
        "--solver",
        default="greedy",
        choices=available_solvers(),
        help="[table1] proposed-placement solver (default: greedy)",
    )
    report_parser.add_argument(
        "--jobs", type=int, default=None, help="[table1] worker processes"
    )
    report_parser.add_argument(
        "--serial", action="store_true", help="[table1] run without worker processes"
    )
    _add_cache_arguments(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `repro list-scenarios | head`) closed
        # the pipe; exit quietly with the conventional SIGPIPE status.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
