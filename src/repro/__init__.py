"""repro: GIS-based optimal PV panel floorplanning (DATE 2018 reproduction).

The package reproduces the system described in

    S. Vinco, L. Bottaccioli, E. Patti, A. Acquaviva, E. Macii, M. Poncino,
    "GIS-Based Optimal Photovoltaic Panel Floorplanning for Residential
    Installations", DATE 2018.

High-level usage (see also ``examples/quickstart.py``)::

    from repro import plan_roof
    from repro.gis import simple_residential_roof

    result = plan_roof(simple_residential_roof(), n_modules=8)
    print(result.report())

Scenario fleets run through the batch runner (or ``python -m repro batch``)::

    from repro.runner import run_batch
    from repro.scenario import builtin_scenarios

    batch = run_batch(list(builtin_scenarios().values()), jobs=4)

Sub-packages
------------
``repro.geometry``    points, polygons, rasters, roof-plane frames
``repro.gis``         DSM handling, synthetic scenes, suitable-area extraction
``repro.solar``       sun position, clear-sky / decomposition / transposition
                      models, DSM shading, roof irradiance fields
``repro.weather``     synthetic weather (clearness, temperature) generation
``repro.pv``          cell/module/array electrical models, MPPT, wiring
``repro.core``        the floorplanning algorithms (greedy, traditional, ILP,
                      exhaustive) and the energy evaluator
``repro.analysis``    reports, maps, structural placement metrics
``repro.io``          DSM (.asc), weather CSV, placement JSON
``repro.scenario``    declarative, JSON-round-trippable scenario specs and
                      the built-in scenario catalog
``repro.runner``      content-hash stage cache, solver registry, cached
                      staged pipeline, parallel batch runner (JSONL store)
``repro.sweep``       declarative sweep engine (axis grids over scenarios),
                      aggregation and deterministic report presets
``repro.experiments`` the paper's case studies and per-table/figure drivers
``repro.cli``         the ``repro`` / ``python -m repro`` command line
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from .constants import DEFAULT_GRID_PITCH
from .core import (
    FloorplanProblem,
    GreedyResult,
    PlacementComparison,
    TraditionalResult,
    compare_placements,
    default_topology,
    greedy_floorplan,
    traditional_floorplan,
)
from .errors import ReproError
from .gis import RoofSpec, build_roof_scene, make_roof_grid, suitable_grid_for_scene
from .pv.datasheet import PV_MF165EB3, ModuleDatasheet
from .runner.cache import StageCache
from .runner.solvers import SolverOutcome, available_solvers, solve
from .runner.stages import prepare_problem
from .solar import SolarSimulationConfig, TimeGrid, compute_roof_solar_field
from .weather import SyntheticWeatherConfig, WeatherSeries, generate_weather

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "RoofPlanResult",
    "plan_roof",
    "available_solvers",
    "FloorplanProblem",
    "default_topology",
    "greedy_floorplan",
    "traditional_floorplan",
    "compare_placements",
]


@dataclass
class RoofPlanResult:
    """Outcome of the end-to-end :func:`plan_roof` pipeline."""

    problem: FloorplanProblem
    proposed: SolverOutcome
    baseline: SolverOutcome
    comparison: PlacementComparison
    solver_name: str = "greedy"
    stage_cached: Dict[str, bool] = field(default_factory=dict)

    @property
    def greedy(self) -> SolverOutcome:
        """The proposed-solver outcome (kept for backward compatibility)."""
        return self.proposed

    @property
    def traditional(self) -> SolverOutcome:
        """The compact-baseline outcome (kept for backward compatibility)."""
        return self.baseline

    @property
    def improvement_percent(self) -> float:
        """Energy gain of the proposed placement over the compact baseline."""
        return self.comparison.improvement_percent

    def report(self) -> str:
        """Short human-readable summary of the run."""
        baseline = self.comparison.baseline
        candidate = self.comparison.candidate
        return (
            f"{self.problem.label}: N={self.problem.n_modules} "
            f"({self.problem.topology.n_series}s x {self.problem.topology.n_parallel}p)\n"
            f"  traditional : {baseline.annual_energy_mwh:8.3f} MWh/year\n"
            f"  proposed    : {candidate.annual_energy_mwh:8.3f} MWh/year "
            f"({self.improvement_percent:+.2f} %, solver={self.solver_name})\n"
            f"  extra cable : {candidate.wiring_extra_length_m:6.1f} m "
            f"({candidate.wiring_loss_fraction * 100:.3f} % energy loss)"
        )


def plan_roof(
    spec: RoofSpec,
    n_modules: int,
    n_series: int | None = None,
    datasheet: ModuleDatasheet = PV_MF165EB3,
    grid_pitch: float = DEFAULT_GRID_PITCH,
    time_grid: Optional[TimeGrid] = None,
    weather: Optional[WeatherSeries] = None,
    weather_seed: int = 0,
    solar_config: Optional[SolarSimulationConfig] = None,
    solver: str = "greedy",
    solver_options: Optional[Mapping[str, Any]] = None,
    cache: Optional[StageCache] = None,
) -> RoofPlanResult:
    """End-to-end pipeline: roof description -> optimal placement and report.

    Builds the synthetic scene, extracts the suitable area, simulates the
    spatio-temporal irradiance (optionally through the stage cache), runs
    the compact baseline and the selected solver, and returns their
    comparison.

    Parameters
    ----------
    spec:
        The roof (size, tilt, azimuth, obstacles, neighbours).
    n_modules:
        Number of identical modules to place.
    n_series:
        Modules per series string; defaults to 8 (or to ``n_modules`` when
        fewer than 8 modules are requested).
    datasheet:
        Module to install (the paper's PV-MF165EB3 by default).
    grid_pitch:
        Virtual-grid pitch ``s`` in metres.
    time_grid:
        Temporal sampling; defaults to an hourly simulation of every 7th
        day (fast, unbiased yearly estimate).
    weather:
        A weather series to reuse; synthesised from ``weather_seed`` when
        omitted.
    solar_config:
        Options of the irradiance simulation.
    solver:
        Name of the placement solver in the :mod:`repro.runner.solvers`
        registry (``greedy``, ``traditional``, ``ilp``, ``exhaustive``).
    solver_options:
        Options forwarded to the solver's config dataclass.
    cache:
        Optional :class:`~repro.runner.StageCache`; when given, the scene,
        grid and solar-field stages are memoised on disk and reused across
        calls that share a roof/weather/time base.

    Example
    -------
    A coarse two-module plan of a small bare roof (coarser sampling keeps
    the example fast; drop the overrides for production resolution):

    >>> from repro import TimeGrid, plan_roof
    >>> from repro.gis import RoofSpec
    >>> roof = RoofSpec(name="doc-roof", width_m=6.0, depth_m=4.0,
    ...                 tilt_deg=30.0, azimuth_deg=0.0)
    >>> result = plan_roof(roof, n_modules=2, grid_pitch=0.4,
    ...                    time_grid=TimeGrid(step_minutes=240.0, day_stride=45))
    >>> result.problem.n_modules
    2
    >>> result.comparison.candidate.annual_energy_mwh > 0
    True
    >>> result.solver_name
    'greedy'
    """
    problem, stage_cached, _ = prepare_problem(
        spec,
        n_modules,
        n_series=n_series if n_series is not None else min(8, n_modules),
        datasheet=datasheet,
        grid_pitch=grid_pitch,
        time_grid=time_grid,
        weather=weather,
        weather_seed=weather_seed,
        solar_config=solar_config,
        cache=cache,
        label=spec.name,
    )
    baseline = solve(problem, "traditional")
    proposed = solve(problem, solver, solver_options, suitability=baseline.suitability)
    comparison = compare_placements(problem, baseline.placement, proposed.placement)
    return RoofPlanResult(
        problem=problem,
        proposed=proposed,
        baseline=baseline,
        comparison=comparison,
        solver_name=solver,
        stage_cached=stage_cached,
    )
