"""repro: GIS-based optimal PV panel floorplanning (DATE 2018 reproduction).

The package reproduces the system described in

    S. Vinco, L. Bottaccioli, E. Patti, A. Acquaviva, E. Macii, M. Poncino,
    "GIS-Based Optimal Photovoltaic Panel Floorplanning for Residential
    Installations", DATE 2018.

High-level usage (see also ``examples/quickstart.py``)::

    from repro import plan_roof
    from repro.gis import simple_residential_roof

    result = plan_roof(simple_residential_roof(), n_modules=8)
    print(result.report())

Sub-packages
------------
``repro.geometry``    points, polygons, rasters, roof-plane frames
``repro.gis``         DSM handling, synthetic scenes, suitable-area extraction
``repro.solar``       sun position, clear-sky / decomposition / transposition
                      models, DSM shading, roof irradiance fields
``repro.weather``     synthetic weather (clearness, temperature) generation
``repro.pv``          cell/module/array electrical models, MPPT, wiring
``repro.core``        the floorplanning algorithms (greedy, traditional, ILP,
                      exhaustive) and the energy evaluator
``repro.analysis``    reports, maps, structural placement metrics
``repro.io``          DSM (.asc), weather CSV, placement JSON
``repro.experiments`` the paper's case studies and per-table/figure drivers
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .constants import DEFAULT_GRID_PITCH
from .core import (
    FloorplanProblem,
    GreedyResult,
    PlacementComparison,
    TraditionalResult,
    compare_placements,
    default_topology,
    greedy_floorplan,
    traditional_floorplan,
)
from .errors import ReproError
from .gis import RoofSpec, build_roof_scene, make_roof_grid, suitable_grid_for_scene
from .pv.datasheet import PV_MF165EB3, ModuleDatasheet
from .solar import SolarSimulationConfig, TimeGrid, compute_roof_solar_field
from .weather import SyntheticWeatherConfig, WeatherSeries, generate_weather

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "RoofPlanResult",
    "plan_roof",
    "FloorplanProblem",
    "default_topology",
    "greedy_floorplan",
    "traditional_floorplan",
    "compare_placements",
]


@dataclass
class RoofPlanResult:
    """Outcome of the end-to-end :func:`plan_roof` pipeline."""

    problem: FloorplanProblem
    greedy: GreedyResult
    traditional: TraditionalResult
    comparison: PlacementComparison

    @property
    def improvement_percent(self) -> float:
        """Energy gain of the proposed placement over the compact baseline."""
        return self.comparison.improvement_percent

    def report(self) -> str:
        """Short human-readable summary of the run."""
        baseline = self.comparison.baseline
        candidate = self.comparison.candidate
        return (
            f"{self.problem.label}: N={self.problem.n_modules} "
            f"({self.problem.topology.n_series}s x {self.problem.topology.n_parallel}p)\n"
            f"  traditional : {baseline.annual_energy_mwh:8.3f} MWh/year\n"
            f"  proposed    : {candidate.annual_energy_mwh:8.3f} MWh/year "
            f"({self.improvement_percent:+.2f} %)\n"
            f"  extra cable : {candidate.wiring_extra_length_m:6.1f} m "
            f"({candidate.wiring_loss_fraction * 100:.3f} % energy loss)"
        )


def plan_roof(
    spec: RoofSpec,
    n_modules: int,
    n_series: int | None = None,
    datasheet: ModuleDatasheet = PV_MF165EB3,
    grid_pitch: float = DEFAULT_GRID_PITCH,
    time_grid: Optional[TimeGrid] = None,
    weather: Optional[WeatherSeries] = None,
    weather_seed: int = 0,
    solar_config: Optional[SolarSimulationConfig] = None,
) -> RoofPlanResult:
    """End-to-end pipeline: roof description -> optimal placement and report.

    Builds the synthetic scene, extracts the suitable area, simulates the
    spatio-temporal irradiance, and runs both the traditional baseline and
    the paper's greedy floorplanner, returning their comparison.

    Parameters
    ----------
    spec:
        The roof (size, tilt, azimuth, obstacles, neighbours).
    n_modules:
        Number of identical modules to place.
    n_series:
        Modules per series string; defaults to 8 (or to ``n_modules`` when
        fewer than 8 modules are requested).
    datasheet:
        Module to install (the paper's PV-MF165EB3 by default).
    grid_pitch:
        Virtual-grid pitch ``s`` in metres.
    time_grid:
        Temporal sampling; defaults to an hourly simulation of every 7th
        day (fast, unbiased yearly estimate).
    weather:
        A weather series to reuse; synthesised from ``weather_seed`` when
        omitted.
    solar_config:
        Options of the irradiance simulation.
    """
    grid_time = time_grid if time_grid is not None else TimeGrid(step_minutes=60.0, day_stride=7)
    series = (
        generate_weather(grid_time, SyntheticWeatherConfig(seed=weather_seed))
        if weather is None
        else weather
    )

    scene = build_roof_scene(spec)
    grid = make_roof_grid(scene, pitch=grid_pitch)
    grid = suitable_grid_for_scene(scene, grid)
    solar = compute_roof_solar_field(scene, grid, series, solar_config)

    topology = default_topology(n_modules, n_series if n_series is not None else 8)
    problem = FloorplanProblem(
        grid=grid,
        solar=solar,
        n_modules=n_modules,
        topology=topology,
        datasheet=datasheet,
        label=spec.name,
    )
    traditional = traditional_floorplan(problem)
    greedy = greedy_floorplan(problem, suitability=traditional.suitability)
    comparison = compare_placements(problem, traditional.placement, greedy.placement)
    return RoofPlanResult(
        problem=problem, greedy=greedy, traditional=traditional, comparison=comparison
    )
