"""Transposition of irradiance components onto the tilted roof plane.

Given the direct-normal and diffuse-horizontal irradiance, the plane-of-array
(POA) irradiance on a surface of given tilt and azimuth is the sum of three
terms: beam projected through the incidence angle, sky diffuse (isotropic or
anisotropic), and ground-reflected diffuse.  The reproduction supports the
isotropic sky model and the Hay-Davies anisotropic model; the latter better
captures the circumsolar brightening that makes the spatial variance of
irradiance over a partly shaded roof larger -- the effect the paper's
floorplanner exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import DEG2RAD, DEFAULT_ALBEDO
from ..errors import SolarModelError


@dataclass(frozen=True)
class PlaneOfArrayIrradiance:
    """Per-sample POA irradiance split into its three components [W/m^2]."""

    beam: np.ndarray
    sky_diffuse: np.ndarray
    ground_reflected: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """Total plane-of-array irradiance."""
        return self.beam + self.sky_diffuse + self.ground_reflected


def incidence_cosine(
    surface_tilt_deg: float,
    surface_azimuth_deg: float,
    solar_elevation_deg: np.ndarray,
    solar_azimuth_deg: np.ndarray,
) -> np.ndarray:
    """Cosine of the angle between the sun direction and the surface normal.

    Azimuths follow the library convention (0 = South, positive towards
    West).  Negative cosines (sun behind the surface) are clamped to zero.
    """
    if not 0.0 <= surface_tilt_deg <= 90.0:
        raise SolarModelError("surface tilt must be within [0, 90] degrees")
    tilt = surface_tilt_deg * DEG2RAD
    saz = surface_azimuth_deg * DEG2RAD
    elev = np.asarray(solar_elevation_deg, dtype=float) * DEG2RAD
    az = np.asarray(solar_azimuth_deg, dtype=float) * DEG2RAD
    cos_inc = np.sin(elev) * np.cos(tilt) + np.cos(elev) * np.sin(tilt) * np.cos(az - saz)
    return np.maximum(cos_inc, 0.0)


def beam_on_plane(
    dni: np.ndarray,
    surface_tilt_deg: float,
    surface_azimuth_deg: float,
    solar_elevation_deg: np.ndarray,
    solar_azimuth_deg: np.ndarray,
) -> np.ndarray:
    """Beam component on the tilted plane [W/m^2]."""
    cos_inc = incidence_cosine(
        surface_tilt_deg, surface_azimuth_deg, solar_elevation_deg, solar_azimuth_deg
    )
    return np.asarray(dni, dtype=float) * cos_inc


def isotropic_sky_diffuse(dhi: np.ndarray, surface_tilt_deg: float) -> np.ndarray:
    """Isotropic-sky diffuse irradiance on the tilted plane [W/m^2]."""
    tilt = surface_tilt_deg * DEG2RAD
    view_factor = (1.0 + np.cos(tilt)) / 2.0
    return np.asarray(dhi, dtype=float) * view_factor


def hay_davies_sky_diffuse(
    dhi: np.ndarray,
    dni: np.ndarray,
    extraterrestrial_normal: np.ndarray,
    surface_tilt_deg: float,
    surface_azimuth_deg: float,
    solar_elevation_deg: np.ndarray,
    solar_azimuth_deg: np.ndarray,
) -> np.ndarray:
    """Hay-Davies anisotropic sky diffuse irradiance on the tilted plane.

    Splits the diffuse radiation into a circumsolar part (treated like beam)
    and an isotropic background, weighted by the anisotropy index
    ``A = DNI / I0``.
    """
    dhi_arr = np.asarray(dhi, dtype=float)
    dni_arr = np.asarray(dni, dtype=float)
    i0 = np.asarray(extraterrestrial_normal, dtype=float)
    elevation = np.asarray(solar_elevation_deg, dtype=float)

    with np.errstate(divide="ignore", invalid="ignore"):
        anisotropy = np.where(i0 > 1.0, dni_arr / np.maximum(i0, 1.0), 0.0)
    anisotropy = np.clip(anisotropy, 0.0, 1.0)

    cos_inc = incidence_cosine(
        surface_tilt_deg, surface_azimuth_deg, elevation, solar_azimuth_deg
    )
    sin_elev = np.sin(np.maximum(elevation, 0.0) * DEG2RAD)
    with np.errstate(divide="ignore", invalid="ignore"):
        rb = np.where(sin_elev > 1e-2, cos_inc / np.maximum(sin_elev, 1e-2), 0.0)
    rb = np.clip(rb, 0.0, 10.0)

    tilt = surface_tilt_deg * DEG2RAD
    isotropic_vf = (1.0 + np.cos(tilt)) / 2.0
    circumsolar = dhi_arr * anisotropy * rb
    background = dhi_arr * (1.0 - anisotropy) * isotropic_vf
    return circumsolar + background


def ground_reflected(
    ghi: np.ndarray, surface_tilt_deg: float, albedo: float = DEFAULT_ALBEDO
) -> np.ndarray:
    """Ground-reflected irradiance on the tilted plane [W/m^2]."""
    if not 0.0 <= albedo <= 1.0:
        raise SolarModelError("albedo must be within [0, 1]")
    tilt = surface_tilt_deg * DEG2RAD
    view_factor = (1.0 - np.cos(tilt)) / 2.0
    return np.asarray(ghi, dtype=float) * albedo * view_factor


def plane_of_array(
    dni: np.ndarray,
    dhi: np.ndarray,
    ghi: np.ndarray,
    extraterrestrial_normal: np.ndarray,
    surface_tilt_deg: float,
    surface_azimuth_deg: float,
    solar_elevation_deg: np.ndarray,
    solar_azimuth_deg: np.ndarray,
    albedo: float = DEFAULT_ALBEDO,
    sky_model: str = "haydavies",
) -> PlaneOfArrayIrradiance:
    """Full plane-of-array transposition.

    Parameters
    ----------
    sky_model:
        ``"isotropic"`` or ``"haydavies"``.
    """
    beam = beam_on_plane(
        dni, surface_tilt_deg, surface_azimuth_deg, solar_elevation_deg, solar_azimuth_deg
    )
    if sky_model == "isotropic":
        sky = isotropic_sky_diffuse(dhi, surface_tilt_deg)
    elif sky_model == "haydavies":
        sky = hay_davies_sky_diffuse(
            dhi,
            dni,
            extraterrestrial_normal,
            surface_tilt_deg,
            surface_azimuth_deg,
            solar_elevation_deg,
            solar_azimuth_deg,
        )
    else:
        raise SolarModelError(f"unknown sky diffuse model: {sky_model!r}")
    ground = ground_reflected(ghi, surface_tilt_deg, albedo)
    return PlaneOfArrayIrradiance(beam=beam, sky_diffuse=sky, ground_reflected=ground)
