"""ESRA clear-sky irradiance model.

Implements the European Solar Radiation Atlas (ESRA) clear-sky model used by
``r.sun`` and PVGIS -- the radiation engine behind the GIS flow the paper
builds on ([11], [17]).  Given the sun elevation and the Linke turbidity
factor it returns the clear-sky beam (direct normal) and diffuse horizontal
irradiance components.

References
----------
Rigollier, Bauer, Wald, "On the clear sky model of the ESRA", Solar Energy
68(1), 2000.  Šúri & Hofierka, "A new GIS-based solar radiation model and
its application to photovoltaic assessments", Transactions in GIS, 2004.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import DEG2RAD
from ..errors import SolarModelError


@dataclass(frozen=True)
class ClearSkyIrradiance:
    """Clear-sky irradiance components for a set of time samples [W/m^2]."""

    beam_normal: np.ndarray
    diffuse_horizontal: np.ndarray
    global_horizontal: np.ndarray


def relative_air_mass(elevation_deg: np.ndarray, altitude_m: float = 0.0) -> np.ndarray:
    """Relative optical air mass (Kasten & Young 1989), altitude corrected.

    Values for sun elevations at or below the horizon are returned as
    ``inf`` so that the associated beam transmittance is zero.
    """
    elevation = np.asarray(elevation_deg, dtype=float)
    pressure_correction = np.exp(-altitude_m / 8434.5)
    positive = elevation > 0.0
    elev_clipped = np.where(positive, elevation, 1e-3)
    air_mass = pressure_correction / (
        np.sin(elev_clipped * DEG2RAD) + 0.50572 * (elev_clipped + 6.07995) ** -1.6364
    )
    return np.where(positive, air_mass, np.inf)


def rayleigh_optical_thickness(air_mass: np.ndarray) -> np.ndarray:
    """Integral Rayleigh optical thickness delta_R(m) (ESRA formulation)."""
    m = np.asarray(air_mass, dtype=float)
    finite = np.isfinite(m)
    m_safe = np.where(finite, m, 1.0)
    low = 1.0 / (
        6.6296
        + 1.7513 * m_safe
        - 0.1202 * m_safe**2
        + 0.0065 * m_safe**3
        - 0.00013 * m_safe**4
    )
    high = 1.0 / (10.4 + 0.718 * m_safe)
    delta = np.where(m_safe <= 20.0, low, high)
    return np.where(finite, delta, 0.0)


def beam_normal_clearsky(
    extraterrestrial_normal: np.ndarray,
    elevation_deg: np.ndarray,
    linke_turbidity: np.ndarray,
    altitude_m: float = 0.0,
) -> np.ndarray:
    """Clear-sky direct normal irradiance [W/m^2] (ESRA beam component)."""
    i0 = np.asarray(extraterrestrial_normal, dtype=float)
    elevation = np.asarray(elevation_deg, dtype=float)
    tl = np.asarray(linke_turbidity, dtype=float)
    if np.any(tl <= 0):
        raise SolarModelError("Linke turbidity must be positive")
    air_mass = relative_air_mass(elevation, altitude_m)
    delta_r = rayleigh_optical_thickness(air_mass)
    with np.errstate(invalid="ignore"):
        finite_air_mass = np.where(np.isfinite(air_mass), air_mass, 0.0)
        attenuation = np.exp(-0.8662 * tl * finite_air_mass * delta_r)
    beam = i0 * attenuation
    return np.where(elevation > 0.0, beam, 0.0)


def diffuse_horizontal_clearsky(
    extraterrestrial_normal: np.ndarray,
    elevation_deg: np.ndarray,
    linke_turbidity: np.ndarray,
) -> np.ndarray:
    """Clear-sky diffuse horizontal irradiance [W/m^2] (ESRA diffuse component)."""
    i0 = np.asarray(extraterrestrial_normal, dtype=float)
    elevation = np.asarray(elevation_deg, dtype=float)
    tl = np.asarray(linke_turbidity, dtype=float)
    if np.any(tl <= 0):
        raise SolarModelError("Linke turbidity must be positive")

    # Diffuse transmission at zenith.
    trd = -1.5843e-2 + 3.0543e-2 * tl + 3.797e-4 * tl**2
    # Diffuse angular function.
    a0 = 2.6463e-1 - 6.1581e-2 * tl + 3.1408e-3 * tl**2
    a1 = 2.0402 + 1.8945e-2 * tl - 1.1161e-2 * tl**2
    a2 = -1.3025 + 3.9231e-2 * tl + 8.5079e-3 * tl**2
    # ESRA consistency correction for very low turbidity.
    with np.errstate(divide="ignore", invalid="ignore"):
        needs_fix = a0 * trd < 2e-3
        a0 = np.where(needs_fix, 2e-3 / np.where(trd != 0, trd, 1.0), a0)

    sin_h = np.sin(np.maximum(elevation, 0.0) * DEG2RAD)
    fd = a0 + a1 * sin_h + a2 * sin_h**2
    diffuse = i0 * trd * np.maximum(fd, 0.0)
    return np.where(elevation > 0.0, np.maximum(diffuse, 0.0), 0.0)


def clearsky_irradiance(
    extraterrestrial_normal: np.ndarray,
    elevation_deg: np.ndarray,
    linke_turbidity: np.ndarray,
    altitude_m: float = 0.0,
) -> ClearSkyIrradiance:
    """Full ESRA clear-sky decomposition (beam normal, diffuse, global)."""
    beam = beam_normal_clearsky(
        extraterrestrial_normal, elevation_deg, linke_turbidity, altitude_m
    )
    diffuse = diffuse_horizontal_clearsky(
        extraterrestrial_normal, elevation_deg, linke_turbidity
    )
    elevation = np.asarray(elevation_deg, dtype=float)
    ghi = beam * np.sin(np.maximum(elevation, 0.0) * DEG2RAD) + diffuse
    return ClearSkyIrradiance(
        beam_normal=beam,
        diffuse_horizontal=diffuse,
        global_horizontal=np.where(elevation > 0.0, ghi, 0.0),
    )
