"""Simulation time base.

The paper simulates one year at 15-minute resolution (Section IV).  The
:class:`TimeGrid` class represents such a sampling of the year without
depending on calendar/timezone machinery: every sample is identified by its
day of year (1..365) and its local solar hour (0..24).  A ``day_stride``
option allows the benchmarks to subsample the year (e.g. every 7th day)
while keeping energy totals comparable through :attr:`TimeGrid.annual_scale`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np

from ..constants import DAYS_PER_YEAR, DEFAULT_TIME_STEP_MINUTES
from ..errors import SolarModelError


@dataclass(frozen=True)
class TimeGrid:
    """A regular sampling of one reference year.

    Parameters
    ----------
    step_minutes:
        Interval between consecutive samples within a simulated day.
    day_stride:
        Simulate every ``day_stride``-th day of the year (1 = every day).
        Energy accumulated on the simulated days is multiplied by
        ``day_stride`` (see :attr:`annual_scale`) so that yearly totals stay
        an unbiased estimate of the full-resolution simulation.
    """

    step_minutes: float = DEFAULT_TIME_STEP_MINUTES
    day_stride: int = 1
    days_of_year: np.ndarray = field(init=False, repr=False, compare=False)
    hours: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.step_minutes <= 0 or self.step_minutes > 24 * 60:
            raise SolarModelError("step_minutes must be in (0, 1440]")
        if self.day_stride < 1 or self.day_stride > DAYS_PER_YEAR:
            raise SolarModelError("day_stride must be in [1, 365]")
        steps_per_day = int(round(24 * 60 / self.step_minutes))
        if abs(steps_per_day * self.step_minutes - 24 * 60) > 1e-9:
            raise SolarModelError("step_minutes must divide 24 hours exactly")
        days = np.arange(1, DAYS_PER_YEAR + 1, self.day_stride, dtype=float)
        hours_in_day = (np.arange(steps_per_day, dtype=float) + 0.5) * self.step_minutes / 60.0
        day_grid = np.repeat(days, steps_per_day)
        hour_grid = np.tile(hours_in_day, len(days))
        object.__setattr__(self, "days_of_year", day_grid)
        object.__setattr__(self, "hours", hour_grid)

    # -- size and scaling ----------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Total number of time samples."""
        return int(self.days_of_year.shape[0])

    @property
    def step_hours(self) -> float:
        """Sample interval expressed in hours."""
        return self.step_minutes / 60.0

    @property
    def steps_per_day(self) -> int:
        """Number of samples per simulated day."""
        return int(round(24 * 60 / self.step_minutes))

    @property
    def n_days(self) -> int:
        """Number of simulated days."""
        return self.n_samples // self.steps_per_day

    @property
    def annual_scale(self) -> float:
        """Factor converting simulated-day totals into full-year totals.

        It accounts for the day subsampling only; the intra-day integration
        already uses :attr:`step_hours` as quadrature weight.
        """
        return DAYS_PER_YEAR / float(self.n_days)

    # -- iteration helpers -----------------------------------------------------

    def __len__(self) -> int:
        return self.n_samples

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        for day, hour in zip(self.days_of_year, self.hours):
            yield float(day), float(hour)

    def sample(self, index: int) -> Tuple[float, float]:
        """Return ``(day_of_year, hour)`` of the sample at ``index``."""
        if not 0 <= index < self.n_samples:
            raise SolarModelError(f"sample index {index} out of range")
        return float(self.days_of_year[index]), float(self.hours[index])

    def day_fraction(self) -> np.ndarray:
        """Fraction of the year elapsed at each sample (0..1)."""
        return (self.days_of_year - 1 + self.hours / 24.0) / DAYS_PER_YEAR

    def integrate_energy_wh(self, power_w: np.ndarray) -> "float | np.ndarray":
        """Integrate power series [W] over the year along axis 0, returning Wh.

        Applies the step width and the annual day-stride scaling, so the
        result estimates the full-year energy even on a subsampled grid.
        A 1-D series yields a float; a ``(n_time, k)`` batch yields the ``k``
        per-column energies in one call.  Accumulation is always float64,
        so reduced-precision (float32) storage integrates without a full
        upcast copy.
        """
        series = np.asarray(power_w)
        if series.ndim == 0 or series.shape[0] != self.n_samples:
            raise SolarModelError(
                f"power series has {np.shape(power_w)[0] if np.ndim(power_w) else 0} "
                f"samples, expected {self.n_samples}"
            )
        totals = np.sum(series, axis=0, dtype=np.float64) * self.step_hours * self.annual_scale
        if series.ndim == 1:
            return float(totals)
        return totals


@dataclass(frozen=True, eq=False)
class CompressedTimeGrid:
    """A daylight-compressed view of a :class:`TimeGrid`.

    At the paper's 15-minute annual resolution roughly half of the ~35,000
    samples are night-time rows in which every irradiance value is exactly
    zero.  A :class:`CompressedTimeGrid` keeps only the *kept* (sun-up /
    non-zero) sample positions plus the mapping back to the full grid, so a
    field stored on the compressed axis can be expanded exactly -- the
    dropped rows are zero by construction -- while every reduction
    (integration, gathers, operating-point evaluation) runs on half the
    rows.

    Parameters
    ----------
    full:
        The underlying full-resolution time grid.
    indices:
        Strictly increasing positions (into the full grid) of the kept
        samples.  May be empty (polar night / all-dark series).
    """

    full: TimeGrid
    indices: np.ndarray

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.intp).reshape(-1)
        if indices.size:
            if indices[0] < 0 or indices[-1] >= self.full.n_samples:
                raise SolarModelError(
                    "compressed time indices must lie inside the full grid"
                )
            if np.any(np.diff(indices) <= 0):
                raise SolarModelError(
                    "compressed time indices must be strictly increasing"
                )
        object.__setattr__(self, "indices", indices)

    @classmethod
    def from_mask(cls, full: TimeGrid, keep: np.ndarray) -> "CompressedTimeGrid":
        """Build the compressed axis from a per-sample boolean keep mask."""
        mask = np.asarray(keep, dtype=bool)
        if mask.shape != (full.n_samples,):
            raise SolarModelError(
                f"keep mask has shape {mask.shape}, expected ({full.n_samples},)"
            )
        return cls(full=full, indices=np.nonzero(mask)[0])

    # -- sizes ---------------------------------------------------------------

    @property
    def n_daylight(self) -> int:
        """Number of kept (compressed-axis) samples."""
        return int(self.indices.shape[0])

    @property
    def n_full(self) -> int:
        """Number of samples of the underlying full grid."""
        return self.full.n_samples

    @property
    def compression_ratio(self) -> float:
        """Full over kept sample count (>= 1; ``inf`` for an all-dark axis)."""
        if self.n_daylight == 0:
            return float("inf")
        return self.n_full / float(self.n_daylight)

    def __len__(self) -> int:
        return self.n_daylight

    # -- axis conversion -----------------------------------------------------

    def compress(self, values: np.ndarray) -> np.ndarray:
        """Select the kept rows of a full-axis array (axis 0)."""
        series = np.asarray(values)
        if series.ndim == 0 or series.shape[0] != self.n_full:
            raise SolarModelError(
                f"full-axis series has shape {np.shape(values)}, expected "
                f"{self.n_full} leading samples"
            )
        return series[self.indices]

    def expand(self, values: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Scatter a compressed-axis array back to the full axis (axis 0).

        Dropped rows are filled with ``fill`` (0 for irradiance/power, the
        exact value of the rows the compression removed).
        """
        series = np.asarray(values)
        if series.ndim == 0 or series.shape[0] != self.n_daylight:
            raise SolarModelError(
                f"compressed series has shape {np.shape(values)}, expected "
                f"{self.n_daylight} leading samples"
            )
        out_shape = (self.n_full,) + series.shape[1:]
        if fill == 0.0:
            out = np.zeros(out_shape, dtype=series.dtype)
        else:
            out = np.full(out_shape, fill, dtype=series.dtype)
        out[self.indices] = series
        return out

    # -- quadrature ----------------------------------------------------------

    @property
    def step_hours(self) -> float:
        """Sample interval of the underlying grid, in hours."""
        return self.full.step_hours

    @property
    def annual_scale(self) -> float:
        """Day-stride scaling of the underlying grid."""
        return self.full.annual_scale

    def integrate_energy_wh(self, power_w: np.ndarray) -> "float | np.ndarray":
        """Integrate a compressed-axis power series [W] over the year, in Wh.

        Exact for series whose dropped rows are zero (irradiance, PV power):
        night steps contribute no energy, so summing the kept rows with the
        full grid's quadrature weights reproduces the dense integral.
        """
        series = np.asarray(power_w)
        if series.ndim == 0 or series.shape[0] != self.n_daylight:
            raise SolarModelError(
                f"power series has {np.shape(power_w)[0] if np.ndim(power_w) else 0} "
                f"samples, expected {self.n_daylight}"
            )
        totals = np.sum(series, axis=0, dtype=np.float64) * self.step_hours * self.annual_scale
        if series.ndim == 1:
            return float(totals)
        return totals


def paper_time_grid() -> TimeGrid:
    """The paper's time base: one full year at 15-minute resolution."""
    return TimeGrid(step_minutes=15.0, day_stride=1)


def fast_time_grid(step_minutes: float = 60.0, day_stride: int = 7) -> TimeGrid:
    """A subsampled time base used by tests and CI-friendly benchmarks."""
    return TimeGrid(step_minutes=step_minutes, day_stride=day_stride)
