"""Global-horizontal irradiance decomposition models.

Weather stations (paper ref. [16]) typically record only the global
horizontal irradiance (GHI).  The solar-data extraction flow (Section IV)
needs the direct (beam) and diffuse components separately to project them on
the tilted roof plane and to apply shading, so a *decomposition model*
estimating the diffuse fraction from the clearness index is required
(paper ref. [18], Engerer 2015).

This module provides:

* :func:`clearness_index` -- kt from GHI and extraterrestrial horizontal
  irradiance;
* :func:`erbs_diffuse_fraction` -- the classical Erbs et al. (1982)
  piecewise correlation;
* :func:`engerer_diffuse_fraction` -- a logistic-form correlation in the
  spirit of Engerer (2015), which additionally uses the solar elevation and
  the deviation from clear-sky conditions;
* :func:`decompose_ghi` -- convenience wrapper returning DNI and DHI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import DEG2RAD
from ..errors import SolarModelError


@dataclass(frozen=True)
class DecompositionResult:
    """Outcome of a GHI decomposition [W/m^2, except the dimensionless columns]."""

    dni: np.ndarray
    dhi: np.ndarray
    diffuse_fraction: np.ndarray
    clearness_index: np.ndarray


def extraterrestrial_horizontal(
    extraterrestrial_normal: np.ndarray, elevation_deg: np.ndarray
) -> np.ndarray:
    """Extraterrestrial irradiance on a horizontal plane [W/m^2]."""
    i0 = np.asarray(extraterrestrial_normal, dtype=float)
    elevation = np.asarray(elevation_deg, dtype=float)
    return i0 * np.maximum(np.sin(np.maximum(elevation, 0.0) * DEG2RAD), 0.0)


def clearness_index(
    ghi: np.ndarray, extraterrestrial_normal: np.ndarray, elevation_deg: np.ndarray
) -> np.ndarray:
    """Clearness index kt = GHI / extraterrestrial horizontal irradiance.

    Samples with the sun below the horizon return 0.
    """
    ghi_arr = np.asarray(ghi, dtype=float)
    ext_h = extraterrestrial_horizontal(extraterrestrial_normal, elevation_deg)
    with np.errstate(divide="ignore", invalid="ignore"):
        kt = np.where(ext_h > 1.0, ghi_arr / np.maximum(ext_h, 1.0), 0.0)
    return np.clip(kt, 0.0, 1.2)


def erbs_diffuse_fraction(kt: np.ndarray) -> np.ndarray:
    """Diffuse fraction kd from the Erbs et al. (1982) correlation."""
    kt_arr = np.clip(np.asarray(kt, dtype=float), 0.0, 1.2)
    low = 1.0 - 0.09 * kt_arr
    mid = (
        0.9511
        - 0.1604 * kt_arr
        + 4.388 * kt_arr**2
        - 16.638 * kt_arr**3
        + 12.336 * kt_arr**4
    )
    high = np.full_like(kt_arr, 0.165)
    kd = np.where(kt_arr <= 0.22, low, np.where(kt_arr <= 0.80, mid, high))
    return np.clip(kd, 0.0, 1.0)


def engerer_diffuse_fraction(
    kt: np.ndarray,
    elevation_deg: np.ndarray,
    clearsky_ghi: np.ndarray | None = None,
    ghi: np.ndarray | None = None,
) -> np.ndarray:
    """Logistic diffuse-fraction correlation in the spirit of Engerer (2015).

    The original Engerer2 model predicts the diffuse fraction with a
    logistic function of the clearness index, apparent solar time, zenith
    angle, and the deviation of the observed clearness index from the
    clear-sky clearness index, plus an additive cloud-enhancement term.
    This implementation keeps the logistic structure and the clear-sky
    deviation predictor (the two features that matter for sub-hourly data)
    with the published Engerer2 coefficient set.
    """
    kt_arr = np.clip(np.asarray(kt, dtype=float), 0.0, 1.2)
    elevation = np.asarray(elevation_deg, dtype=float)
    zenith = 90.0 - elevation
    if clearsky_ghi is not None and ghi is not None:
        cs = np.asarray(clearsky_ghi, dtype=float)
        obs = np.asarray(ghi, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            ktc = np.where(cs > 1.0, np.clip(obs / np.maximum(cs, 1.0), 0.0, 2.0), 1.0)
        delta_ktc = 1.0 - ktc
    else:
        delta_ktc = np.zeros_like(kt_arr)

    # Engerer2 coefficient set (C, beta0..beta5) from Engerer (2015), with the
    # apparent-solar-time term folded into the intercept (its contribution is
    # second-order for the mid-latitude sites considered here).
    c = 4.2336e-2
    beta0 = -3.7912
    beta1 = 7.5479
    beta2 = -1.0036e-2
    beta3 = 3.1480e-3
    beta4 = -5.3146
    beta5 = 1.7073

    logistic_arg = (
        beta0
        + beta1 * kt_arr
        + beta2 * 12.0  # apparent solar time folded to local noon
        + beta3 * zenith
        + beta4 * delta_ktc
    )
    kde = np.maximum(0.0, 1.0 - np.where(kt_arr > 0, 1.0 / np.maximum(kt_arr, 1e-6), 0.0))
    kd = c + (1.0 - c) / (1.0 + np.exp(logistic_arg)) + beta5 * kde
    kd = np.where(elevation <= 0.0, 1.0, kd)
    return np.clip(kd, 0.0, 1.0)


def decompose_ghi(
    ghi: np.ndarray,
    extraterrestrial_normal: np.ndarray,
    elevation_deg: np.ndarray,
    model: str = "erbs",
    clearsky_ghi: np.ndarray | None = None,
) -> DecompositionResult:
    """Split GHI into direct-normal (DNI) and diffuse-horizontal (DHI).

    Parameters
    ----------
    ghi:
        Measured global horizontal irradiance [W/m^2].
    extraterrestrial_normal:
        Extraterrestrial normal irradiance per sample [W/m^2].
    elevation_deg:
        Solar elevation per sample [deg].
    model:
        ``"erbs"`` or ``"engerer"``.
    clearsky_ghi:
        Optional clear-sky GHI used by the Engerer-style model.
    """
    ghi_arr = np.asarray(ghi, dtype=float)
    elevation = np.asarray(elevation_deg, dtype=float)
    if ghi_arr.shape != elevation.shape:
        raise SolarModelError("ghi and elevation arrays must have the same shape")
    kt = clearness_index(ghi_arr, extraterrestrial_normal, elevation)
    if model == "erbs":
        kd = erbs_diffuse_fraction(kt)
    elif model == "engerer":
        kd = engerer_diffuse_fraction(kt, elevation, clearsky_ghi, ghi_arr)
    else:
        raise SolarModelError(f"unknown decomposition model: {model!r}")

    dhi = kd * ghi_arr
    sin_h = np.sin(np.maximum(elevation, 0.0) * DEG2RAD)
    with np.errstate(divide="ignore", invalid="ignore"):
        dni = np.where(sin_h > 1e-3, (ghi_arr - dhi) / np.maximum(sin_h, 1e-3), 0.0)
    dni = np.clip(dni, 0.0, 1500.0)
    dhi = np.where(elevation > 0.0, dhi, 0.0)
    dni = np.where(elevation > 0.0, dni, 0.0)
    return DecompositionResult(dni=dni, dhi=dhi, diffuse_fraction=kd, clearness_index=kt)
