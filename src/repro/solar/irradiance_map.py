"""Per-cell spatio-temporal irradiance on the roof virtual grid.

This is the integration point of the solar-data extraction flow (paper
Section IV): it combines

* the sun-position series (:mod:`repro.solar.position`),
* the weather trace (measured or synthetic GHI + temperature),
* the decomposition model (GHI -> DNI/DHI, :mod:`repro.solar.decomposition`),
* the transposition model (POA irradiance, :mod:`repro.solar.transposition`),
* the DSM shading engine (:mod:`repro.solar.shading`)

into a :class:`RoofSolarField`: for every *valid* element of the roof's
virtual grid, the global irradiance time series G(i,j,t) incident on the
module plane, plus the ambient temperature series T(t).  These are exactly
the inputs the floorplanning algorithm of Section III consumes.

Daylight compression
--------------------
At the paper's 15-minute annual resolution roughly half of the ~35,000 time
steps are night rows in which every cell's irradiance is exactly zero.  The
native representation of :class:`RoofSolarField` is therefore *daylight
compressed*: :attr:`RoofSolarField.irradiance` holds only the kept rows
(``(n_daylight, Ng)`` in the storage dtype) and a
:class:`~repro.solar.time_series.CompressedTimeGrid` maps them back to the
full axis.  Expansion is exact -- the dropped rows are zero by construction
-- and every consumer that integrates, gathers or reduces over time runs on
half the rows.  :func:`compute_roof_solar_field_dense_reference` keeps the
original dense assembly as the ground truth for the equivalence tests and
the solar-field benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_ALBEDO
from ..errors import SolarModelError
from ..gis.gridding import RoofGrid
from ..gis.synthetic import RoofScene
from ..weather.records import WeatherSeries
from .clearsky import clearsky_irradiance
from .decomposition import decompose_ghi
from .linke import LinkeTurbidityProfile
from .position import compute_solar_position
from .shading import HorizonMap, compute_horizon_map
from .time_series import CompressedTimeGrid, TimeGrid
from .transposition import plane_of_array

#: Byte budget of one transient float64 block in the chunked consumers
#: (assembly, suitability, aggregate maps).  Small enough that even paper
#: resolution (~35k steps) keeps transients in the tens of megabytes.
_DENSE_BLOCK_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class SolarSimulationConfig:
    """Options of the roof irradiance simulation."""

    sky_model: str = "haydavies"
    decomposition_model: str = "erbs"
    albedo: float = DEFAULT_ALBEDO
    linke_turbidity: LinkeTurbidityProfile = field(
        default_factory=LinkeTurbidityProfile.turin_default
    )
    n_horizon_sectors: int = 36
    horizon_max_distance_m: float = 60.0
    store_dtype: str = "float32"


@dataclass
class RoofSolarField:
    """Spatio-temporal irradiance and temperature over a roof grid.

    Attributes
    ----------
    grid:
        The roof virtual grid the field is defined on.
    time_grid:
        Full-resolution temporal sampling.
    cells:
        Array ``(Ng, 2)`` of (row, col) indices of the valid grid elements,
        in the same order as the columns of :attr:`irradiance`.
    irradiance:
        Array ``(n_daylight, Ng)`` (daylight-compressed, the native form) or
        ``(n_time, Ng)`` (dense legacy form): plane-of-array global
        irradiance [W/m^2] per kept time step and valid cell.
    temperature:
        Array ``(n_time,)``: ambient temperature [degC], always on the full
        axis (night temperatures are real data, unlike night irradiance).
    sky_view:
        Array ``(Ng,)``: sky-view factor of each valid cell.
    daylight:
        The compressed time axis, or ``None`` for a dense field.  When set,
        the rows it drops are exactly zero in the dense equivalent, so
        :meth:`to_dense` is an exact expansion.
    """

    grid: RoofGrid
    time_grid: TimeGrid
    cells: np.ndarray
    irradiance: np.ndarray
    temperature: np.ndarray
    sky_view: np.ndarray
    daylight: Optional[CompressedTimeGrid] = None

    #: Large array fields the stage cache stores as raw ``.npy`` sidecars
    #: (memory-mapped zero-copy by batch workers; see repro.runner.cache).
    __cache_array_fields__ = ("irradiance",)

    def __post_init__(self) -> None:
        n_time = self.time_grid.n_samples
        n_cells = self.cells.shape[0]
        if self.daylight is not None and self.daylight.n_full != n_time:
            raise SolarModelError(
                f"compressed axis covers {self.daylight.n_full} samples but the "
                f"time grid has {n_time}"
            )
        expected_rows = n_time if self.daylight is None else self.daylight.n_daylight
        if self.irradiance.shape != (expected_rows, n_cells):
            raise SolarModelError(
                f"irradiance shape {self.irradiance.shape} does not match "
                f"(n_axis={expected_rows}, Ng={n_cells})"
            )
        if self.temperature.shape != (n_time,):
            raise SolarModelError("temperature must have one value per time sample")
        lookup = np.full(self.grid.shape, -1, dtype=int)
        lookup[self.cells[:, 0], self.cells[:, 1]] = np.arange(n_cells)
        self._cell_lookup = lookup

    # -- sizes --------------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Number of valid cells (the paper's Ng)."""
        return int(self.cells.shape[0])

    @property
    def n_time(self) -> int:
        """Number of full-axis time samples."""
        return self.time_grid.n_samples

    @property
    def n_daylight(self) -> int:
        """Number of stored (compressed-axis) time samples."""
        return int(self.irradiance.shape[0])

    @property
    def is_compressed(self) -> bool:
        """True when the field stores the daylight-compressed axis."""
        return self.daylight is not None

    # -- axis routing --------------------------------------------------------------

    @property
    def time_axis(self) -> "TimeGrid | CompressedTimeGrid":
        """The axis :attr:`irradiance` rows live on.

        Both :class:`TimeGrid` and :class:`CompressedTimeGrid` provide
        ``integrate_energy_wh`` with the same quadrature, so consumers can
        integrate storage-aligned series without caring about compression.
        """
        return self.time_grid if self.daylight is None else self.daylight

    @property
    def axis_temperature(self) -> np.ndarray:
        """Ambient temperature [degC] aligned with the rows of :attr:`irradiance`."""
        ambient = np.asarray(self.temperature, dtype=float)
        if self.daylight is None:
            return ambient
        return ambient[self.daylight.indices]

    def expand_axis(self, values: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Expand a storage-axis series (axis 0) back to the full time axis."""
        if self.daylight is None:
            return np.asarray(values)
        return self.daylight.expand(values, fill=fill)

    def to_dense(self) -> np.ndarray:
        """The exact dense ``(n_time, Ng)`` irradiance matrix (storage dtype).

        For a compressed field the dropped rows are zero by construction,
        so this reproduces the dense reference bit for bit.  It materialises
        the full matrix -- prefer :meth:`iter_dense_blocks` for reductions.
        """
        if self.daylight is None:
            return np.asarray(self.irradiance)
        out = np.zeros((self.n_time, self.n_cells), dtype=self.irradiance.dtype)
        out[self.daylight.indices, :] = self.irradiance
        return out

    def iter_dense_blocks(
        self, max_columns: Optional[int] = None
    ) -> Iterator[Tuple[slice, np.ndarray]]:
        """Iterate dense float64 column blocks ``(column_slice, (n_time, c))``.

        The chunked equivalent of ``irradiance.astype(float)``: consumers
        that need full-axis statistics (percentiles include the night zeros!)
        stream over bounded blocks instead of duplicating the whole field.
        Each block is freshly allocated and safe to modify.
        """
        n_time = max(self.n_time, 1)
        if max_columns is None:
            max_columns = max(1, _DENSE_BLOCK_BYTES // (8 * n_time))
        indices = None if self.daylight is None else self.daylight.indices
        for start in range(0, self.n_cells, max_columns):
            stop = min(start + max_columns, self.n_cells)
            sl = slice(start, stop)
            if indices is None:
                # np.array (not asarray): a float64-stored field would
                # otherwise yield an aliasing view of the matrix.
                yield sl, np.array(self.irradiance[:, sl], dtype=np.float64)
            else:
                block = np.zeros((self.n_time, stop - start), dtype=np.float64)
                block[indices, :] = self.irradiance[:, sl]
                yield sl, block

    # -- accessors -----------------------------------------------------------------

    @property
    def cell_column_lookup(self) -> np.ndarray:
        """Full-grid map of irradiance column indices (-1 on invalid cells).

        ``lookup[row, col]`` is the column of :attr:`irradiance` holding the
        series of grid element ``(row, col)``; the evaluation fast path uses
        it to gather whole placements with one fancy-indexing operation.
        """
        return self._cell_lookup

    def column_of(self, row: int, col: int) -> int:
        """Column index (into :attr:`irradiance`) of grid element (row, col).

        Raises
        ------
        SolarModelError
            If the element is not part of the valid set.
        """
        index = int(self._cell_lookup[row, col])
        if index < 0:
            raise SolarModelError(f"grid element ({row}, {col}) is not a valid cell")
        return index

    def irradiance_for_cell(self, row: int, col: int) -> np.ndarray:
        """Full-axis irradiance time series [W/m^2] of one grid element."""
        column = np.asarray(self.irradiance[:, self.column_of(row, col)], dtype=float)
        return self.expand_axis(column)

    def irradiance_for_cells(self, cells: np.ndarray) -> np.ndarray:
        """Full-axis irradiance of several grid elements, shape ``(n_time, k)``.

        Raises
        ------
        SolarModelError
            If any requested element is not part of the valid set.
        """
        cells_arr = np.asarray(cells, dtype=int).reshape(-1, 2)
        columns = self._cell_lookup[cells_arr[:, 0], cells_arr[:, 1]]
        invalid = columns < 0
        if np.any(invalid):
            row, col = cells_arr[int(np.argmax(invalid))]
            raise SolarModelError(f"grid element ({row}, {col}) is not a valid cell")
        return self.expand_axis(np.asarray(self.irradiance[:, columns], dtype=float))

    def restricted_to(self, grid: RoofGrid) -> "RoofSolarField":
        """The field restricted to the valid cells of ``grid``.

        The compressed axis and the temperature series are shared with this
        field; the irradiance columns of the cells valid in ``grid`` are
        *copied* (fancy indexing) into a new matrix, in
        ``grid.valid_cells()`` order, so each restriction owns its (smaller)
        block.  Every valid cell of ``grid`` must be valid here too.
        """
        cells = np.asarray(grid.valid_cells(), dtype=int)
        columns = self._cell_lookup[cells[:, 0], cells[:, 1]]
        if np.any(columns < 0):
            row, col = cells[int(np.argmax(columns < 0))]
            raise SolarModelError(
                f"grid element ({row}, {col}) is not covered by the solar field"
            )
        return RoofSolarField(
            grid=grid,
            time_grid=self.time_grid,
            cells=cells,
            irradiance=self.irradiance[:, columns],
            temperature=self.temperature,
            sky_view=np.asarray(self.sky_view)[columns],
            daylight=self.daylight,
        )

    # -- aggregate maps ---------------------------------------------------------------

    def percentile_map(self, q: float = 75.0) -> np.ndarray:
        """Per-cell q-th percentile of irradiance, as a full-grid map.

        Invalid cells are NaN.  This is the quantity Figure 6(b) of the
        paper visualises (brighter colours = larger 75th percentile).  The
        percentile is taken over the *full* axis -- the night zeros are part
        of the distribution -- computed per column block, so no full-size
        float64 copy of the field is ever materialised.
        """
        values = np.empty(self.n_cells)
        for sl, block in self.iter_dense_blocks():
            values[sl] = np.percentile(block, q, axis=0)
        return self._scatter(values)

    def mean_map(self) -> np.ndarray:
        """Per-cell mean irradiance map [W/m^2] (NaN outside the valid area).

        Accumulates in float64 directly on the stored rows (the dropped
        night rows contribute exactly zero to the sum), avoiding the
        full-matrix ``astype(float)`` copy of the straightforward form.
        """
        totals = np.sum(self.irradiance, axis=0, dtype=np.float64)
        return self._scatter(totals / float(max(self.n_time, 1)))

    def annual_insolation_map_kwh(self) -> np.ndarray:
        """Per-cell yearly insolation [kWh/m^2] (NaN outside the valid area)."""
        totals = self.time_axis.integrate_energy_wh(self.irradiance)
        return self._scatter(np.asarray(totals) / 1e3)

    def _scatter(self, values: np.ndarray) -> np.ndarray:
        grid_map = np.full(self.grid.shape, np.nan)
        grid_map[self.cells[:, 0], self.cells[:, 1]] = values
        return grid_map


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def _poa_and_shading_inputs(
    scene: RoofScene,
    grid: RoofGrid,
    weather: WeatherSeries,
    cfg: SolarSimulationConfig,
    horizon_map: Optional[HorizonMap],
):
    """Shared front half of the solar assembly (positions, POA, horizon)."""
    time_grid = weather.time_grid

    position = compute_solar_position(
        weather.station.latitude_deg, time_grid.days_of_year, time_grid.hours
    )

    # 1. Direct/diffuse components.
    if weather.has_decomposition:
        dni = np.asarray(weather.dni, dtype=float)
        dhi = np.asarray(weather.dhi, dtype=float)
    else:
        clearsky_ghi = None
        if cfg.decomposition_model == "engerer":
            turbidity = cfg.linke_turbidity.value_for_day(time_grid.days_of_year)
            clearsky_ghi = clearsky_irradiance(
                position.extraterrestrial_normal,
                position.elevation_deg,
                turbidity,
                altitude_m=weather.station.altitude_m,
            ).global_horizontal
        decomposition = decompose_ghi(
            weather.ghi,
            position.extraterrestrial_normal,
            position.elevation_deg,
            model=cfg.decomposition_model,
            clearsky_ghi=clearsky_ghi,
        )
        dni = decomposition.dni
        dhi = decomposition.dhi

    # 2. Plane-of-array components on the roof plane (identical for all cells).
    poa = plane_of_array(
        dni,
        dhi,
        weather.ghi,
        position.extraterrestrial_normal,
        scene.spec.tilt_deg,
        scene.spec.azimuth_deg,
        position.elevation_deg,
        position.azimuth_deg,
        albedo=cfg.albedo,
        sky_model=cfg.sky_model,
    )

    # 3. Shading geometry: horizon map + per-cell DSM indices.
    if horizon_map is None:
        horizon_map = compute_horizon_map(
            scene.dsm.raster,
            n_sectors=cfg.n_horizon_sectors,
            max_distance=cfg.horizon_max_distance_m,
        )
    dsm_rows, dsm_cols = grid.dsm_indices(scene.dsm)
    cells = grid.valid_cells()
    cell_dsm_rows = dsm_rows[cells[:, 0], cells[:, 1]]
    cell_dsm_cols = dsm_cols[cells[:, 0], cells[:, 1]]
    sky_view = horizon_map.sky_view_factor()[cell_dsm_rows, cell_dsm_cols]

    return time_grid, position, poa, horizon_map, cells, cell_dsm_rows, cell_dsm_cols, sky_view


def compute_roof_solar_field(
    scene: RoofScene,
    grid: RoofGrid,
    weather: WeatherSeries,
    config: SolarSimulationConfig | None = None,
    horizon_map: Optional[HorizonMap] = None,
) -> RoofSolarField:
    """Run the full solar-data extraction flow for a roof.

    Parameters
    ----------
    scene:
        Roof scene providing the DSM (shading) and the roof frame.
    grid:
        Virtual grid restricted to the suitable area.
    weather:
        Weather trace (synthetic or measured).  If it does not carry DNI/DHI
        the configured decomposition model is applied.
    config:
        Simulation options.
    horizon_map:
        Pre-computed horizon map of the scene DSM; computed on the fly when
        omitted (the dominant cost for large scenes, so callers running
        several experiments on the same roof should pass it in).

    Notes
    -----
    The returned field is daylight compressed: only the time steps with a
    non-zero plane-of-array component are stored, and the assembly is
    chunked over cells -- the transient boolean shadow mask and the float64
    products cover one column block at a time, never the full
    ``(n_time, Ng)`` matrix.  The values of the kept rows are bit-identical
    to :func:`compute_roof_solar_field_dense_reference`, whose dropped rows
    are exactly zero.
    """
    cfg = config if config is not None else SolarSimulationConfig()
    (
        time_grid,
        position,
        poa,
        horizon_map,
        cells,
        cell_dsm_rows,
        cell_dsm_cols,
        sky_view,
    ) = _poa_and_shading_inputs(scene, grid, weather, cfg, horizon_map)

    beam = np.asarray(poa.beam, dtype=float)
    sky_diffuse = np.asarray(poa.sky_diffuse, dtype=float)
    ground = np.asarray(poa.ground_reflected, dtype=float)

    # 4. Daylight compression: a dense row is all-zero exactly when every POA
    # component is zero (the per-cell shading/sky-view factors only scale
    # them).  Keeping any row with a non-zero component is always safe;
    # dropped rows expand back to exact zeros.
    keep = (beam != 0.0) | (sky_diffuse != 0.0) | (ground != 0.0)
    daylight = CompressedTimeGrid.from_mask(time_grid, keep)
    indices = daylight.indices

    elevation = position.elevation_deg[indices]
    azimuth = position.azimuth_deg[indices]
    beam_d = beam[indices]
    sky_d = sky_diffuse[indices]
    ground_d = ground[indices]

    # 5. Chunked per-cell assembly on the compressed axis.  The boolean
    # shadow mask and the float64 block cover one column chunk at a time;
    # the sector grouping of the time axis is precomputed once and shared
    # across chunks.
    dtype = np.dtype(cfg.store_dtype)
    n_axis = int(indices.shape[0])
    n_cells = cells.shape[0]
    irradiance = np.empty((n_axis, n_cells), dtype=dtype)
    chunk = max(1, _DENSE_BLOCK_BYTES // (8 * max(n_axis, 1)))
    sky_view_arr = np.asarray(sky_view, dtype=float)
    sector_groups = horizon_map.sector_time_groups(azimuth)
    for start in range(0, n_cells, chunk):
        sl = slice(start, min(start + chunk, n_cells))
        lit = horizon_map.lit_mask_for_cells(
            cell_dsm_rows[sl], cell_dsm_cols[sl], elevation, azimuth,
            sector_groups=sector_groups,
        )
        # Same association order as the dense reference, so the float32 cast
        # rounds identically.
        irradiance[:, sl] = (
            beam_d[:, None] * lit
            + sky_d[:, None] * sky_view_arr[None, sl]
            + ground_d[:, None]
        )

    return RoofSolarField(
        grid=grid,
        time_grid=time_grid,
        cells=cells,
        irradiance=irradiance,
        temperature=np.asarray(weather.temperature, dtype=float),
        sky_view=sky_view_arr,
        daylight=daylight,
    )


def compute_roof_solar_field_dense_reference(
    scene: RoofScene,
    grid: RoofGrid,
    weather: WeatherSeries,
    config: SolarSimulationConfig | None = None,
    horizon_map: Optional[HorizonMap] = None,
) -> RoofSolarField:
    """Original dense solar assembly, kept as the ground truth.

    Materialises the full float64 ``(n_time, Ng)`` shadow matrix and the
    dense broadcast products exactly like the seed implementation; the
    compressed :func:`compute_roof_solar_field` must expand to its
    ``irradiance`` bit for bit (the equivalence tests and the solar-field
    benchmark rely on this).
    """
    cfg = config if config is not None else SolarSimulationConfig()
    (
        time_grid,
        position,
        poa,
        horizon_map,
        cells,
        cell_dsm_rows,
        cell_dsm_cols,
        sky_view,
    ) = _poa_and_shading_inputs(scene, grid, weather, cfg, horizon_map)

    lit = horizon_map.lit_fraction_for_cells(
        cell_dsm_rows, cell_dsm_cols, position.elevation_deg, position.azimuth_deg
    )

    dtype = np.dtype(cfg.store_dtype)
    irradiance = (
        poa.beam[:, None] * lit
        + poa.sky_diffuse[:, None] * sky_view[None, :]
        + poa.ground_reflected[:, None]
    ).astype(dtype)

    return RoofSolarField(
        grid=grid,
        time_grid=time_grid,
        cells=cells,
        irradiance=irradiance,
        temperature=np.asarray(weather.temperature, dtype=float),
        sky_view=np.asarray(sky_view, dtype=float),
    )
