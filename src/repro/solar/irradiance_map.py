"""Per-cell spatio-temporal irradiance on the roof virtual grid.

This is the integration point of the solar-data extraction flow (paper
Section IV): it combines

* the sun-position series (:mod:`repro.solar.position`),
* the weather trace (measured or synthetic GHI + temperature),
* the decomposition model (GHI -> DNI/DHI, :mod:`repro.solar.decomposition`),
* the transposition model (POA irradiance, :mod:`repro.solar.transposition`),
* the DSM shading engine (:mod:`repro.solar.shading`)

into a :class:`RoofSolarField`: for every *valid* element of the roof's
virtual grid, the global irradiance time series G(i,j,t) incident on the
module plane, plus the ambient temperature series T(t).  These are exactly
the inputs the floorplanning algorithm of Section III consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..constants import DEFAULT_ALBEDO
from ..errors import SolarModelError
from ..gis.gridding import RoofGrid
from ..gis.synthetic import RoofScene
from ..weather.records import WeatherSeries
from .clearsky import clearsky_irradiance
from .decomposition import decompose_ghi
from .linke import LinkeTurbidityProfile
from .position import compute_solar_position
from .shading import HorizonMap, compute_horizon_map
from .time_series import TimeGrid
from .transposition import plane_of_array


@dataclass(frozen=True)
class SolarSimulationConfig:
    """Options of the roof irradiance simulation."""

    sky_model: str = "haydavies"
    decomposition_model: str = "erbs"
    albedo: float = DEFAULT_ALBEDO
    linke_turbidity: LinkeTurbidityProfile = field(
        default_factory=LinkeTurbidityProfile.turin_default
    )
    n_horizon_sectors: int = 36
    horizon_max_distance_m: float = 60.0
    store_dtype: str = "float32"


@dataclass
class RoofSolarField:
    """Spatio-temporal irradiance and temperature over a roof grid.

    Attributes
    ----------
    grid:
        The roof virtual grid the field is defined on.
    time_grid:
        Temporal sampling.
    cells:
        Array ``(Ng, 2)`` of (row, col) indices of the valid grid elements,
        in the same order as the columns of :attr:`irradiance`.
    irradiance:
        Array ``(n_time, Ng)``: plane-of-array global irradiance [W/m^2]
        per time step and valid cell.
    temperature:
        Array ``(n_time,)``: ambient temperature [degC].
    sky_view:
        Array ``(Ng,)``: sky-view factor of each valid cell.
    """

    grid: RoofGrid
    time_grid: TimeGrid
    cells: np.ndarray
    irradiance: np.ndarray
    temperature: np.ndarray
    sky_view: np.ndarray

    def __post_init__(self) -> None:
        n_time = self.time_grid.n_samples
        n_cells = self.cells.shape[0]
        if self.irradiance.shape != (n_time, n_cells):
            raise SolarModelError(
                f"irradiance shape {self.irradiance.shape} does not match "
                f"(n_time={n_time}, Ng={n_cells})"
            )
        if self.temperature.shape != (n_time,):
            raise SolarModelError("temperature must have one value per time sample")
        lookup = np.full(self.grid.shape, -1, dtype=int)
        lookup[self.cells[:, 0], self.cells[:, 1]] = np.arange(n_cells)
        self._cell_lookup = lookup

    # -- sizes --------------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Number of valid cells (the paper's Ng)."""
        return int(self.cells.shape[0])

    @property
    def n_time(self) -> int:
        """Number of time samples."""
        return self.time_grid.n_samples

    # -- accessors -----------------------------------------------------------------

    @property
    def cell_column_lookup(self) -> np.ndarray:
        """Full-grid map of irradiance column indices (-1 on invalid cells).

        ``lookup[row, col]`` is the column of :attr:`irradiance` holding the
        series of grid element ``(row, col)``; the evaluation fast path uses
        it to gather whole placements with one fancy-indexing operation.
        """
        return self._cell_lookup

    def column_of(self, row: int, col: int) -> int:
        """Column index (into :attr:`irradiance`) of grid element (row, col).

        Raises
        ------
        SolarModelError
            If the element is not part of the valid set.
        """
        index = int(self._cell_lookup[row, col])
        if index < 0:
            raise SolarModelError(f"grid element ({row}, {col}) is not a valid cell")
        return index

    def irradiance_for_cell(self, row: int, col: int) -> np.ndarray:
        """Irradiance time series [W/m^2] of one grid element."""
        return np.asarray(self.irradiance[:, self.column_of(row, col)], dtype=float)

    def irradiance_for_cells(self, cells: np.ndarray) -> np.ndarray:
        """Irradiance time series of several grid elements, shape ``(n_time, k)``.

        Raises
        ------
        SolarModelError
            If any requested element is not part of the valid set.
        """
        cells_arr = np.asarray(cells, dtype=int).reshape(-1, 2)
        columns = self._cell_lookup[cells_arr[:, 0], cells_arr[:, 1]]
        invalid = columns < 0
        if np.any(invalid):
            row, col = cells_arr[int(np.argmax(invalid))]
            raise SolarModelError(f"grid element ({row}, {col}) is not a valid cell")
        return np.asarray(self.irradiance[:, columns], dtype=float)

    # -- aggregate maps ---------------------------------------------------------------

    def percentile_map(self, q: float = 75.0) -> np.ndarray:
        """Per-cell q-th percentile of irradiance, as a full-grid map.

        Invalid cells are NaN.  This is the quantity Figure 6(b) of the
        paper visualises (brighter colours = larger 75th percentile).
        """
        values = np.percentile(self.irradiance.astype(float), q, axis=0)
        return self._scatter(values)

    def mean_map(self) -> np.ndarray:
        """Per-cell mean irradiance map [W/m^2] (NaN outside the valid area)."""
        return self._scatter(np.mean(self.irradiance.astype(float), axis=0))

    def annual_insolation_map_kwh(self) -> np.ndarray:
        """Per-cell yearly insolation [kWh/m^2] (NaN outside the valid area)."""
        totals = self.time_grid.integrate_energy_wh(self.irradiance)
        return self._scatter(np.asarray(totals) / 1e3)

    def _scatter(self, values: np.ndarray) -> np.ndarray:
        grid_map = np.full(self.grid.shape, np.nan)
        grid_map[self.cells[:, 0], self.cells[:, 1]] = values
        return grid_map


def compute_roof_solar_field(
    scene: RoofScene,
    grid: RoofGrid,
    weather: WeatherSeries,
    config: SolarSimulationConfig | None = None,
    horizon_map: Optional[HorizonMap] = None,
) -> RoofSolarField:
    """Run the full solar-data extraction flow for a roof.

    Parameters
    ----------
    scene:
        Roof scene providing the DSM (shading) and the roof frame.
    grid:
        Virtual grid restricted to the suitable area.
    weather:
        Weather trace (synthetic or measured).  If it does not carry DNI/DHI
        the configured decomposition model is applied.
    config:
        Simulation options.
    horizon_map:
        Pre-computed horizon map of the scene DSM; computed on the fly when
        omitted (the dominant cost for large scenes, so callers running
        several experiments on the same roof should pass it in).
    """
    cfg = config if config is not None else SolarSimulationConfig()
    time_grid = weather.time_grid

    position = compute_solar_position(
        weather.station.latitude_deg, time_grid.days_of_year, time_grid.hours
    )

    # 1. Direct/diffuse components.
    if weather.has_decomposition:
        dni = np.asarray(weather.dni, dtype=float)
        dhi = np.asarray(weather.dhi, dtype=float)
    else:
        clearsky_ghi = None
        if cfg.decomposition_model == "engerer":
            turbidity = cfg.linke_turbidity.value_for_day(time_grid.days_of_year)
            clearsky_ghi = clearsky_irradiance(
                position.extraterrestrial_normal,
                position.elevation_deg,
                turbidity,
                altitude_m=weather.station.altitude_m,
            ).global_horizontal
        decomposition = decompose_ghi(
            weather.ghi,
            position.extraterrestrial_normal,
            position.elevation_deg,
            model=cfg.decomposition_model,
            clearsky_ghi=clearsky_ghi,
        )
        dni = decomposition.dni
        dhi = decomposition.dhi

    # 2. Plane-of-array components on the roof plane (identical for all cells).
    poa = plane_of_array(
        dni,
        dhi,
        weather.ghi,
        position.extraterrestrial_normal,
        scene.spec.tilt_deg,
        scene.spec.azimuth_deg,
        position.elevation_deg,
        position.azimuth_deg,
        albedo=cfg.albedo,
        sky_model=cfg.sky_model,
    )

    # 3. Shading: per-cell beam visibility and sky-view factor from the DSM.
    if horizon_map is None:
        horizon_map = compute_horizon_map(
            scene.dsm.raster,
            n_sectors=cfg.n_horizon_sectors,
            max_distance=cfg.horizon_max_distance_m,
        )
    dsm_rows, dsm_cols = grid.dsm_indices(scene.dsm)
    cells = grid.valid_cells()
    cell_dsm_rows = dsm_rows[cells[:, 0], cells[:, 1]]
    cell_dsm_cols = dsm_cols[cells[:, 0], cells[:, 1]]

    lit = horizon_map.lit_fraction_for_cells(
        cell_dsm_rows, cell_dsm_cols, position.elevation_deg, position.azimuth_deg
    )
    sky_view = horizon_map.sky_view_factor()[cell_dsm_rows, cell_dsm_cols]

    # 4. Per-cell irradiance assembly.
    dtype = np.dtype(cfg.store_dtype)
    irradiance = (
        poa.beam[:, None] * lit
        + poa.sky_diffuse[:, None] * sky_view[None, :]
        + poa.ground_reflected[:, None]
    ).astype(dtype)

    return RoofSolarField(
        grid=grid,
        time_grid=time_grid,
        cells=cells,
        irradiance=irradiance,
        temperature=np.asarray(weather.temperature, dtype=float),
        sky_view=np.asarray(sky_view, dtype=float),
    )
