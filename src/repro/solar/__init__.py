"""Solar substrate: sun geometry, radiation models, shading, irradiance maps."""

from .clearsky import (
    ClearSkyIrradiance,
    beam_normal_clearsky,
    clearsky_irradiance,
    diffuse_horizontal_clearsky,
    rayleigh_optical_thickness,
    relative_air_mass,
)
from .decomposition import (
    DecompositionResult,
    clearness_index,
    decompose_ghi,
    engerer_diffuse_fraction,
    erbs_diffuse_fraction,
)
from .irradiance_map import (
    RoofSolarField,
    SolarSimulationConfig,
    compute_roof_solar_field,
    compute_roof_solar_field_dense_reference,
)
from .linke import LinkeTurbidityProfile
from .position import (
    SolarPosition,
    compute_solar_position,
    daylight_hours,
    equation_of_time_minutes,
    solar_declination,
    solar_elevation_azimuth,
    sunrise_sunset_hour,
)
from .shading import HorizonMap, compute_horizon_map, shadow_fraction_map
from .time_series import CompressedTimeGrid, TimeGrid, fast_time_grid, paper_time_grid
from .transposition import (
    PlaneOfArrayIrradiance,
    beam_on_plane,
    hay_davies_sky_diffuse,
    incidence_cosine,
    isotropic_sky_diffuse,
    ground_reflected,
    plane_of_array,
)

__all__ = [
    "ClearSkyIrradiance",
    "beam_normal_clearsky",
    "clearsky_irradiance",
    "diffuse_horizontal_clearsky",
    "rayleigh_optical_thickness",
    "relative_air_mass",
    "DecompositionResult",
    "clearness_index",
    "decompose_ghi",
    "engerer_diffuse_fraction",
    "erbs_diffuse_fraction",
    "RoofSolarField",
    "SolarSimulationConfig",
    "compute_roof_solar_field",
    "compute_roof_solar_field_dense_reference",
    "LinkeTurbidityProfile",
    "SolarPosition",
    "compute_solar_position",
    "daylight_hours",
    "equation_of_time_minutes",
    "solar_declination",
    "solar_elevation_azimuth",
    "sunrise_sunset_hour",
    "HorizonMap",
    "compute_horizon_map",
    "shadow_fraction_map",
    "CompressedTimeGrid",
    "TimeGrid",
    "fast_time_grid",
    "paper_time_grid",
    "PlaneOfArrayIrradiance",
    "beam_on_plane",
    "hay_davies_sky_diffuse",
    "incidence_cosine",
    "isotropic_sky_diffuse",
    "ground_reflected",
    "plane_of_array",
]
