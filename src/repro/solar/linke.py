"""Linke turbidity handling.

The Linke turbidity factor TL summarises the attenuation of the clear-sky
beam radiation due to water vapour and aerosols (air pollution), and is the
parameter the paper cites (via PVGIS [11]) to account for atmospheric
attenuation.  Monthly climatological values are commonly used; this module
provides a monthly profile type with smooth interpolation over the day of
year, plus a default profile representative of a mid-latitude urban site
such as Turin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..constants import DAYS_PER_YEAR, DEFAULT_LINKE_TURBIDITY
from ..errors import SolarModelError

#: Mid-month day-of-year anchors used for interpolation.
_MONTH_MID_DOY = np.array(
    [15.5, 45.0, 74.5, 105.0, 135.5, 166.0, 196.5, 227.5, 258.0, 288.5, 319.0, 349.5]
)


@dataclass(frozen=True)
class LinkeTurbidityProfile:
    """Monthly Linke turbidity climatology with periodic interpolation."""

    monthly_values: tuple

    def __post_init__(self) -> None:
        if len(self.monthly_values) != 12:
            raise SolarModelError("a Linke turbidity profile needs exactly 12 monthly values")
        if any(v <= 0 for v in self.monthly_values):
            raise SolarModelError("Linke turbidity values must be positive")

    @classmethod
    def constant(cls, value: float = DEFAULT_LINKE_TURBIDITY) -> "LinkeTurbidityProfile":
        """A profile with the same turbidity in every month."""
        return cls(tuple([float(value)] * 12))

    @classmethod
    def from_monthly(cls, values: Sequence[float]) -> "LinkeTurbidityProfile":
        """Build a profile from an arbitrary 12-value sequence."""
        return cls(tuple(float(v) for v in values))

    @classmethod
    def turin_default(cls) -> "LinkeTurbidityProfile":
        """Representative monthly climatology for the Po valley (hazier summers)."""
        return cls(
            (2.6, 2.9, 3.2, 3.4, 3.6, 3.8, 3.9, 3.8, 3.4, 3.0, 2.8, 2.6)
        )

    def value_for_day(self, day_of_year: np.ndarray) -> np.ndarray:
        """Interpolated turbidity for each day of year (periodic)."""
        day = np.asarray(day_of_year, dtype=float)
        values = np.asarray(self.monthly_values, dtype=float)
        # Periodic linear interpolation: extend the anchors by one month on
        # each side so days before mid-January / after mid-December wrap.
        anchors = np.concatenate(
            (
                [_MONTH_MID_DOY[-1] - DAYS_PER_YEAR],
                _MONTH_MID_DOY,
                [_MONTH_MID_DOY[0] + DAYS_PER_YEAR],
            )
        )
        extended = np.concatenate(([values[-1]], values, [values[0]]))
        return np.interp(day, anchors, extended)

    def annual_mean(self) -> float:
        """Mean of the monthly values."""
        return float(np.mean(self.monthly_values))
