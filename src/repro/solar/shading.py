"""DSM-based shading: horizon maps, shadow masks, sky-view factors.

The paper's GIS flow estimates "the evolution of shadows over the roof over
one year, with 15 minutes intervals" from a high-resolution Digital Surface
Model.  Re-computing a shadow map by ray casting at every one of the ~35,000
time steps would be prohibitively slow, so this module uses the classic
``r.sun`` / ``r.horizon`` strategy:

1. **Horizon map** -- for every DSM cell and for a discrete set of azimuth
   sectors, pre-compute the elevation angle of the local horizon (the
   highest obstruction seen from that cell in that direction).  This is a
   one-off O(cells x sectors x ray-length) computation, fully vectorised
   over the cells.
2. **Shadow test** -- at any time step, a cell is in shadow exactly when the
   sun elevation is below the cell's horizon angle in the sun's azimuth
   sector.  This reduces per-time-step shading to an array lookup and a
   comparison.
3. **Sky-view factor** -- the fraction of the sky dome visible from each
   cell, derived from the same horizon map, is used to attenuate the diffuse
   irradiance of obstructed cells.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..constants import DEG2RAD, RAD2DEG
from ..errors import GISError
from ..geometry import Raster


@dataclass(frozen=True)
class HorizonMap:
    """Per-cell horizon elevation angles over a set of azimuth sectors.

    Attributes
    ----------
    sector_azimuths_deg:
        Centre azimuth of each sector [deg, 0 = South, positive West],
        covering the full circle.
    horizon_deg:
        Array of shape ``(n_sectors, n_rows, n_cols)`` with the horizon
        elevation angle seen from each cell in each sector.
    pitch:
        DSM cell size [m], kept for reporting purposes.
    """

    sector_azimuths_deg: np.ndarray
    horizon_deg: np.ndarray
    pitch: float

    #: Large array fields the stage cache stores as raw ``.npy`` sidecars
    #: (memory-mapped zero-copy by batch workers; see repro.runner.cache).
    __cache_array_fields__ = ("horizon_deg",)

    @property
    def n_sectors(self) -> int:
        """Number of azimuth sectors."""
        return int(self.sector_azimuths_deg.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        """DSM grid shape ``(n_rows, n_cols)``."""
        return (int(self.horizon_deg.shape[1]), int(self.horizon_deg.shape[2]))

    # -- queries ---------------------------------------------------------------

    def sector_index(self, azimuth_deg: np.ndarray) -> np.ndarray:
        """Index of the sector containing each azimuth (nearest centre)."""
        az = np.mod(np.asarray(azimuth_deg, dtype=float) + 180.0, 360.0) - 180.0
        sector_width = 360.0 / self.n_sectors
        idx = np.round((az - self.sector_azimuths_deg[0]) / sector_width).astype(int)
        return np.mod(idx, self.n_sectors)

    def horizon_at(self, azimuth_deg: float) -> np.ndarray:
        """Horizon angle map [deg] for one sun azimuth."""
        idx = int(self.sector_index(np.asarray([azimuth_deg]))[0])
        return self.horizon_deg[idx]

    def shadow_mask(self, sun_elevation_deg: float, sun_azimuth_deg: float) -> np.ndarray:
        """Boolean map: True where the cell is shaded for the given sun position."""
        if sun_elevation_deg <= 0.0:
            return np.ones(self.shape, dtype=bool)
        return self.horizon_at(sun_azimuth_deg) > sun_elevation_deg

    def sector_time_groups(
        self, sun_azimuth_deg: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """Time-step indices grouped by azimuth sector.

        Precompute this once when calling :meth:`lit_mask_for_cells` for
        several cell chunks over the same sun-position series (the chunked
        solar assembly) -- the grouping scans the whole time axis, which
        would otherwise be repeated per chunk.
        """
        sectors = self.sector_index(np.asarray(sun_azimuth_deg, dtype=float))
        return [
            (int(sector), np.nonzero(sectors == sector)[0])
            for sector in np.unique(sectors)
        ]

    def lit_mask_for_cells(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        sun_elevation_deg: np.ndarray,
        sun_azimuth_deg: np.ndarray,
        sector_groups: "list[tuple[int, np.ndarray]] | None" = None,
    ) -> np.ndarray:
        """Boolean direct-beam visibility for a subset of cells over time.

        Parameters
        ----------
        rows, cols:
            Arrays of equal length selecting the cells of interest.
        sun_elevation_deg, sun_azimuth_deg:
            Per-time-step sun position.
        sector_groups:
            Optional precomputed :meth:`sector_time_groups` of the azimuth
            series, for callers looping over cell chunks.

        Returns
        -------
        numpy.ndarray
            Boolean array of shape ``(n_time, n_cells)``, True where the
            cell sees the solar disc, False where it is shaded (or the sun
            is down).

        Notes
        -----
        This is the memory-lean fast path: instead of gathering a float64
        ``(n_time, n_cells)`` horizon matrix, the time steps are grouped by
        azimuth sector and each group is compared against that sector's
        horizon row, so the only full-size transient is the boolean result
        itself (8x smaller).  :meth:`lit_fraction_for_cells` wraps it for
        callers that still need the float 0/1 matrix.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        elevation = np.asarray(sun_elevation_deg, dtype=float)
        azimuth = np.asarray(sun_azimuth_deg, dtype=float)
        if rows.shape != cols.shape:
            raise GISError("rows and cols must have the same shape")
        if elevation.shape != azimuth.shape:
            raise GISError("elevation and azimuth must have the same shape")

        if sector_groups is None:
            sector_groups = self.sector_time_groups(azimuth)
        horizon_cells = self.horizon_deg[:, rows, cols]  # (n_sectors, n_cells)
        lit = np.empty((elevation.shape[0], rows.shape[0]), dtype=bool)
        for sector, steps in sector_groups:
            lit[steps] = elevation[steps, None] > horizon_cells[sector][None, :]
        lit &= (elevation > 0.0)[:, None]
        return lit

    def lit_fraction_for_cells(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        sun_elevation_deg: np.ndarray,
        sun_azimuth_deg: np.ndarray,
    ) -> np.ndarray:
        """Direct-beam visibility (1.0 lit / 0.0 shaded) as float64.

        Float compatibility wrapper over :meth:`lit_mask_for_cells`; callers
        that only need the mask should use the boolean fast path directly
        (8x less transient memory).
        """
        return self.lit_mask_for_cells(
            rows, cols, sun_elevation_deg, sun_azimuth_deg
        ).astype(float)

    def sky_view_factor(self) -> np.ndarray:
        """Sky-view factor per cell (fraction of the visible sky dome, 0..1).

        Uses the standard isotropic approximation
        ``SVF = mean_over_sectors(cos^2(horizon))``.
        """
        horizon_rad = np.clip(self.horizon_deg, 0.0, 90.0) * DEG2RAD
        return np.mean(np.cos(horizon_rad) ** 2, axis=0)


def _sector_steps(
    azimuth_deg: float,
    distances: np.ndarray,
    pitch: float,
    shape: tuple[int, int],
) -> list[tuple[float, tuple, tuple, tuple]]:
    """Deduplicated ``(distance, src, dst, window)`` steps of one sector.

    Several consecutive radial distances round to the same integer cell
    offset; for a fixed offset the obstruction height difference ``dz`` is
    fixed and ``arctan2(dz, distance)`` is decreasing in ``distance`` when
    ``dz > 0`` (the only case that can contribute to the clamped-at-zero
    horizon), so keeping only the *smallest* marching distance per offset
    preserves the final horizon map exactly.  The slice tuples address the
    shifted source region, the destination region, and the matching scratch
    window, hoisting all slice arithmetic out of the hot loop.
    """
    az_rad = azimuth_deg * DEG2RAD
    # Unit vector pointing from the cell towards the obstruction
    # (x = east, y = north); azimuth 0 = South, positive towards West.
    ux = -np.sin(az_rad)
    uy = -np.cos(az_rad)
    n_rows, n_cols = shape
    steps: list[tuple[float, tuple, tuple, tuple]] = []
    seen: set[tuple[int, int]] = set()
    for distance in distances:
        d_col = int(np.round(distance * ux / pitch))
        d_row = int(np.round(distance * uy / pitch))
        if (d_col == 0 and d_row == 0) or (d_row, d_col) in seen:
            continue
        seen.add((d_row, d_col))
        src_row_lo = max(0, d_row)
        src_row_hi = min(n_rows, n_rows + d_row)
        src_col_lo = max(0, d_col)
        src_col_hi = min(n_cols, n_cols + d_col)
        if src_row_lo >= src_row_hi or src_col_lo >= src_col_hi:
            continue
        src = (slice(src_row_lo, src_row_hi), slice(src_col_lo, src_col_hi))
        dst = (
            slice(src_row_lo - d_row, src_row_hi - d_row),
            slice(src_col_lo - d_col, src_col_hi - d_col),
        )
        window = (
            slice(0, src_row_hi - src_row_lo),
            slice(0, src_col_hi - src_col_lo),
        )
        steps.append((float(distance), src, dst, window))
    return steps


class _SectorScratch:
    """Preallocated per-worker buffers of the horizon kernel.

    One set of full-grid buffers is reused across every radial step of every
    sector a worker processes, replacing the per-step ``np.full_like``
    allocation churn of the straightforward implementation.
    """

    def __init__(self, shape: tuple[int, int]):
        self.dz = np.empty(shape, dtype=float)
        self.ratio = np.empty(shape, dtype=float)
        self.mask = np.empty(shape, dtype=bool)
        self.tie_mask = np.empty(shape, dtype=bool)
        self.best_ratio = np.empty(shape, dtype=float)
        self.best_dz = np.empty(shape, dtype=float)
        self.best_distance = np.empty(shape, dtype=float)

    def reset(self) -> None:
        # The initial (dz=-1, distance=1) pair maps to a -45 deg angle, which
        # the final clamp turns into the same 0 deg the reference gives for
        # cells with no obstruction candidate at all.
        self.best_ratio.fill(-np.inf)
        self.best_dz.fill(-1.0)
        self.best_distance.fill(1.0)


def _sector_horizon(
    elevation: np.ndarray,
    steps: list[tuple[float, tuple, tuple, tuple]],
    out: np.ndarray,
    scratch: _SectorScratch,
) -> None:
    """Horizon angles of one sector, written into ``out`` (a full-grid view).

    The running maximum is tracked in tangent space (``dz / distance``) --
    cheap elementwise arithmetic -- and the single expensive ``arctan2`` pass
    runs once at the end on the winning ``(dz, distance)`` pair of each cell,
    reproducing the reference per-step ``arctan2`` result bit for bit.
    Exactly tied positive ratios (proportional ``(dz, d)`` pairs, common on
    the perfectly planar regions of synthetic DSMs) can carry ``arctan2``
    values differing in the last ulp; the reference keeps the larger one, so
    the rare tied cells are resolved by comparing the actual angles.
    """
    scratch.reset()
    best_ratio = scratch.best_ratio
    best_dz = scratch.best_dz
    best_distance = scratch.best_distance
    for distance, src, dst, window in steps:
        dz = scratch.dz[window]
        ratio = scratch.ratio[window]
        mask = scratch.mask[window]
        tie = scratch.tie_mask[window]
        stored_ratio = best_ratio[dst]
        np.subtract(elevation[src], elevation[dst], out=dz)
        np.divide(dz, distance, out=ratio)
        # Tie candidates: exactly equal ratio AND an actual obstruction
        # (dz > 0; zero/negative angles are clamped away identically).
        np.equal(ratio, stored_ratio, out=tie)
        np.greater(dz, 0.0, out=mask)
        tie &= mask
        # NaN ratios (out-of-tile obstructions on a DSM with NaN holes)
        # compare False and are skipped, like the reference's NaN -> -90 path.
        np.greater(ratio, stored_ratio, out=mask)
        if mask.any():
            np.copyto(stored_ratio, ratio, where=mask)
            np.copyto(best_dz[dst], dz, where=mask)
            np.copyto(best_distance[dst], distance, where=mask)
        if tie.any():
            tie_rows, tie_cols = np.nonzero(tie)
            dst_rows = tie_rows + dst[0].start
            dst_cols = tie_cols + dst[1].start
            tied_dz = dz[tie_rows, tie_cols]
            candidate_angle = np.arctan2(tied_dz, distance)
            stored_angle = np.arctan2(
                best_dz[dst_rows, dst_cols],
                best_distance[dst_rows, dst_cols],
            )
            wins = candidate_angle > stored_angle
            if np.any(wins):
                best_dz[dst_rows[wins], dst_cols[wins]] = tied_dz[wins]
                best_distance[dst_rows[wins], dst_cols[wins]] = distance
    with np.errstate(invalid="ignore"):
        np.arctan2(best_dz, best_distance, out=out)
    out *= RAD2DEG
    np.maximum(out, 0.0, out=out)


def compute_horizon_map(
    dsm: Raster,
    n_sectors: int = 36,
    max_distance: float = 60.0,
    min_step: float | None = None,
    n_workers: int | None = None,
) -> HorizonMap:
    """Compute the horizon map of a DSM.

    Parameters
    ----------
    dsm:
        Digital surface model (cell values are elevations in metres).
    n_sectors:
        Number of azimuth sectors; 36 gives a 10 degree resolution, which at
        15-minute time steps keeps the sector quantisation error below the
        solar disc motion between consecutive samples.
    max_distance:
        Maximum obstruction distance considered [m].  For rooftop-scale
        shading (chimneys, dormers, parapets, adjacent buildings within the
        DSM tile) a few tens of metres suffice.
    min_step:
        Radial marching step [m]; defaults to the DSM pitch.
    n_workers:
        Number of threads marching sectors concurrently (numpy releases the
        GIL inside the kernels).  ``None`` picks ``min(n_sectors, available
        CPUs)`` respecting CPU affinity, overridable via the
        ``REPRO_HORIZON_WORKERS`` environment variable (the process-parallel
        batch runner sets it to 1 in its workers to avoid oversubscription);
        1 forces the serial path.

    Notes
    -----
    The computation marches rays outwards from every cell simultaneously:
    for a fixed azimuth sector and a fixed radial distance the candidate
    obstruction heights for *all* cells are read through a single shifted
    view of the DSM array, so the inner loop is pure numpy.  Radial steps
    that round to the same cell offset are deduplicated, each worker reuses
    one set of preallocated scratch buffers, and the per-step transcendental
    is avoided by maximising in tangent space (see :func:`_sector_horizon`);
    the result is bit-for-bit identical to
    :func:`compute_horizon_map_reference`.
    """
    if n_sectors < 4:
        raise GISError("at least 4 azimuth sectors are required")
    if max_distance <= 0:
        raise GISError("max_distance must be positive")
    pitch = dsm.pitch
    step = pitch if min_step is None else max(float(min_step), 1e-6)
    n_rows, n_cols = dsm.shape
    elevation = dsm.data

    sector_azimuths = -180.0 + (np.arange(n_sectors) + 0.5) * (360.0 / n_sectors)
    horizon = np.zeros((n_sectors, n_rows, n_cols), dtype=float)

    n_steps = max(1, int(np.ceil(max_distance / step)))
    distances = (np.arange(1, n_steps + 1)) * step

    workers = n_workers if n_workers is not None else min(n_sectors, _default_workers())
    workers = max(1, int(workers))

    def run_sectors(sector_indices) -> None:
        scratch = _SectorScratch((n_rows, n_cols))
        for s in sector_indices:
            steps = _sector_steps(
                float(sector_azimuths[s]), distances, pitch, (n_rows, n_cols)
            )
            _sector_horizon(elevation, steps, horizon[s], scratch)

    if workers <= 1:
        run_sectors(range(n_sectors))
    else:
        chunks = [range(start, n_sectors, workers) for start in range(workers)]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # list() re-raises any worker exception.
            list(pool.map(run_sectors, chunks))

    return HorizonMap(
        sector_azimuths_deg=sector_azimuths, horizon_deg=horizon, pitch=pitch
    )


def compute_horizon_map_reference(
    dsm: Raster,
    n_sectors: int = 36,
    max_distance: float = 60.0,
    min_step: float | None = None,
) -> HorizonMap:
    """Straightforward horizon-map computation, kept as the ground truth.

    This is the original per-(sector, distance) shifted-copy implementation;
    the optimised :func:`compute_horizon_map` must reproduce its output bit
    for bit (the equivalence test and the kernel benchmark both rely on it).
    """
    if n_sectors < 4:
        raise GISError("at least 4 azimuth sectors are required")
    if max_distance <= 0:
        raise GISError("max_distance must be positive")
    pitch = dsm.pitch
    step = pitch if min_step is None else max(float(min_step), 1e-6)
    n_rows, n_cols = dsm.shape
    elevation = dsm.data

    sector_azimuths = -180.0 + (np.arange(n_sectors) + 0.5) * (360.0 / n_sectors)
    horizon = np.zeros((n_sectors, n_rows, n_cols), dtype=float)

    n_steps = max(1, int(np.ceil(max_distance / step)))
    distances = (np.arange(1, n_steps + 1)) * step

    for s, azimuth in enumerate(sector_azimuths):
        az_rad = azimuth * DEG2RAD
        ux = -np.sin(az_rad)
        uy = -np.cos(az_rad)
        best = np.full((n_rows, n_cols), -90.0)
        for distance in distances:
            d_col = int(np.round(distance * ux / pitch))
            d_row = int(np.round(distance * uy / pitch))
            if d_col == 0 and d_row == 0:
                continue
            shifted = _shifted_elevation(elevation, d_row, d_col)
            with np.errstate(invalid="ignore"):
                angle = np.arctan2(shifted - elevation, distance) * RAD2DEG
            best = np.maximum(best, np.where(np.isnan(angle), -90.0, angle))
        horizon[s] = np.maximum(best, 0.0)

    return HorizonMap(
        sector_azimuths_deg=sector_azimuths, horizon_deg=horizon, pitch=pitch
    )


def _default_workers() -> int:
    """Default horizon-kernel thread count.

    Honours the ``REPRO_HORIZON_WORKERS`` override and CPU affinity (cgroup
    limits in containers), so process-parallel callers can pin the kernel to
    one thread instead of oversubscribing the machine.
    """
    override = os.environ.get("REPRO_HORIZON_WORKERS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


def _shifted_elevation(elevation: np.ndarray, d_row: int, d_col: int) -> np.ndarray:
    """Elevation array shifted so cell (r, c) reads the value at (r+d_row, c+d_col).

    Cells whose source falls outside the DSM read NaN (treated as "no
    obstruction" by the caller).
    """
    n_rows, n_cols = elevation.shape
    out = np.full_like(elevation, np.nan)

    src_row_lo = max(0, d_row)
    src_row_hi = min(n_rows, n_rows + d_row)
    src_col_lo = max(0, d_col)
    src_col_hi = min(n_cols, n_cols + d_col)
    if src_row_lo >= src_row_hi or src_col_lo >= src_col_hi:
        return out

    dst_row_lo = src_row_lo - d_row
    dst_row_hi = src_row_hi - d_row
    dst_col_lo = src_col_lo - d_col
    dst_col_hi = src_col_hi - d_col
    out[dst_row_lo:dst_row_hi, dst_col_lo:dst_col_hi] = elevation[
        src_row_lo:src_row_hi, src_col_lo:src_col_hi
    ]
    return out


def shadow_fraction_map(
    horizon_map: HorizonMap,
    sun_elevation_deg: np.ndarray,
    sun_azimuth_deg: np.ndarray,
) -> np.ndarray:
    """Fraction of the given time samples during which each cell is shaded.

    Only samples with the sun above the horizon contribute to the fraction;
    if the sun never rises in the provided series the result is 1 everywhere.

    A cell is shaded at a sample exactly when the sun elevation falls below
    the cell's horizon angle in the sun's azimuth sector, so the per-sample
    loop reduces to one sorted-search per *sector*: sort the sun elevations
    that land in the sector and count, for every cell, how many of them lie
    strictly below the cell's horizon angle.
    """
    elevation = np.asarray(sun_elevation_deg, dtype=float)
    azimuth = np.asarray(sun_azimuth_deg, dtype=float)
    up = elevation > 0.0
    if not np.any(up):
        return np.ones(horizon_map.shape, dtype=float)
    up_elevation = elevation[up]
    sectors = horizon_map.sector_index(azimuth[up])
    shaded_count = np.zeros(horizon_map.shape, dtype=float)
    for sector in np.unique(sectors):
        sector_elevations = np.sort(up_elevation[sectors == sector])
        horizon = horizon_map.horizon_deg[sector]
        counts = np.searchsorted(sector_elevations, horizon.ravel(), side="left")
        shaded_count += counts.reshape(horizon_map.shape)
    return shaded_count / float(np.count_nonzero(up))
