"""Solar geometry: declination, hour angle, elevation, azimuth.

Implements a standard NOAA/Spencer-style solar position algorithm, accurate
to a fraction of a degree, which is sufficient for irradiance and shading
simulation at 15-minute resolution.  All functions are vectorised over numpy
arrays of day-of-year and local solar hour, matching the
:class:`repro.solar.time_series.TimeGrid` representation.

Angle conventions
-----------------
* ``declination``, ``elevation`` in degrees.
* ``azimuth`` in degrees measured from South, positive towards West
  (the same convention used for roof azimuths throughout the library).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import DEG2RAD, RAD2DEG, SOLAR_CONSTANT
from ..errors import SolarModelError


@dataclass(frozen=True)
class SolarPosition:
    """Sun position samples for a time grid at a fixed site."""

    elevation_deg: np.ndarray
    azimuth_deg: np.ndarray
    declination_deg: np.ndarray
    hour_angle_deg: np.ndarray
    extraterrestrial_normal: np.ndarray

    @property
    def zenith_deg(self) -> np.ndarray:
        """Solar zenith angle (90 - elevation)."""
        return 90.0 - self.elevation_deg

    @property
    def is_up(self) -> np.ndarray:
        """Boolean mask of the samples where the sun is above the horizon."""
        return self.elevation_deg > 0.0


def solar_declination(day_of_year: np.ndarray) -> np.ndarray:
    """Solar declination [deg] using Spencer's Fourier expansion."""
    day = np.asarray(day_of_year, dtype=float)
    gamma = 2.0 * np.pi * (day - 1.0) / 365.0
    decl_rad = (
        0.006918
        - 0.399912 * np.cos(gamma)
        + 0.070257 * np.sin(gamma)
        - 0.006758 * np.cos(2 * gamma)
        + 0.000907 * np.sin(2 * gamma)
        - 0.002697 * np.cos(3 * gamma)
        + 0.00148 * np.sin(3 * gamma)
    )
    return decl_rad * RAD2DEG


def equation_of_time_minutes(day_of_year: np.ndarray) -> np.ndarray:
    """Equation of time [minutes] (Spencer's expansion)."""
    day = np.asarray(day_of_year, dtype=float)
    gamma = 2.0 * np.pi * (day - 1.0) / 365.0
    eot = 229.18 * (
        0.000075
        + 0.001868 * np.cos(gamma)
        - 0.032077 * np.sin(gamma)
        - 0.014615 * np.cos(2 * gamma)
        - 0.04089 * np.sin(2 * gamma)
    )
    return eot


def eccentricity_correction(day_of_year: np.ndarray) -> np.ndarray:
    """Earth-sun distance correction factor (dimensionless, ~1 +- 0.033)."""
    day = np.asarray(day_of_year, dtype=float)
    gamma = 2.0 * np.pi * (day - 1.0) / 365.0
    return (
        1.00011
        + 0.034221 * np.cos(gamma)
        + 0.00128 * np.sin(gamma)
        + 0.000719 * np.cos(2 * gamma)
        + 0.000077 * np.sin(2 * gamma)
    )


def hour_angle(solar_hour: np.ndarray) -> np.ndarray:
    """Hour angle [deg]: 0 at solar noon, negative in the morning."""
    hour = np.asarray(solar_hour, dtype=float)
    return 15.0 * (hour - 12.0)


def solar_elevation_azimuth(
    latitude_deg: float,
    day_of_year: np.ndarray,
    solar_hour: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Solar elevation and azimuth for a site at ``latitude_deg``.

    Parameters
    ----------
    latitude_deg:
        Site latitude in degrees (positive north).
    day_of_year, solar_hour:
        Arrays of equal length describing the samples (local *solar* time).

    Returns
    -------
    (elevation_deg, azimuth_deg, declination_deg, hour_angle_deg)
        Azimuth is measured from South, positive towards West.
    """
    if not -90.0 <= latitude_deg <= 90.0:
        raise SolarModelError("latitude must be within [-90, 90] degrees")
    day = np.asarray(day_of_year, dtype=float)
    hour = np.asarray(solar_hour, dtype=float)
    if day.shape != hour.shape:
        raise SolarModelError("day_of_year and solar_hour must have the same shape")

    decl_deg = solar_declination(day)
    ha_deg = hour_angle(hour)

    lat = latitude_deg * DEG2RAD
    decl = decl_deg * DEG2RAD
    ha = ha_deg * DEG2RAD

    sin_elev = np.sin(lat) * np.sin(decl) + np.cos(lat) * np.cos(decl) * np.cos(ha)
    sin_elev = np.clip(sin_elev, -1.0, 1.0)
    elevation = np.arcsin(sin_elev)

    # Azimuth from South, positive towards West.
    cos_elev = np.cos(elevation)
    # Guard against division by zero at the zenith.
    safe_cos_elev = np.where(np.abs(cos_elev) < 1e-9, 1e-9, cos_elev)
    sin_az = np.cos(decl) * np.sin(ha) / safe_cos_elev
    # The textbook numerator sin(elev)*sin(lat) - sin(decl) carries a
    # cos(lat) factor that cancels against the cos(lat) of the denominator;
    # expanding the product analytically removes the division by cos(lat)
    # altogether, so the expression stays finite and well-conditioned at the
    # poles.  (A scalar 1e-9 clamp of the denominator used to drop the
    # safe_cos_elev factor entirely within ~1e-7 degrees of |lat| = 90,
    # corrupting the azimuth there.)
    cos_az = (
        np.cos(decl) * np.sin(lat) * np.cos(ha) - np.sin(decl) * np.cos(lat)
    ) / safe_cos_elev
    sin_az = np.clip(sin_az, -1.0, 1.0)
    cos_az = np.clip(cos_az, -1.0, 1.0)
    azimuth = np.arctan2(sin_az, cos_az)

    return (
        elevation * RAD2DEG,
        azimuth * RAD2DEG,
        decl_deg,
        ha_deg,
    )


def compute_solar_position(
    latitude_deg: float,
    day_of_year: np.ndarray,
    solar_hour: np.ndarray,
) -> SolarPosition:
    """Compute the full :class:`SolarPosition` record for a set of samples."""
    elevation, azimuth, declination, ha = solar_elevation_azimuth(
        latitude_deg, day_of_year, solar_hour
    )
    extraterrestrial = SOLAR_CONSTANT * eccentricity_correction(day_of_year)
    return SolarPosition(
        elevation_deg=elevation,
        azimuth_deg=azimuth,
        declination_deg=declination,
        hour_angle_deg=ha,
        extraterrestrial_normal=extraterrestrial,
    )


def sunrise_sunset_hour(latitude_deg: float, day_of_year: float) -> tuple[float, float]:
    """Sunrise and sunset in local solar hours for one day.

    Returns ``(sunrise, sunset)``; for polar day/night the pair degenerates
    to ``(0, 24)`` or ``(12, 12)`` respectively.
    """
    decl = solar_declination(np.asarray([day_of_year]))[0] * DEG2RAD
    lat = latitude_deg * DEG2RAD
    cos_ha0 = -np.tan(lat) * np.tan(decl)
    if cos_ha0 <= -1.0:
        return 0.0, 24.0
    if cos_ha0 >= 1.0:
        return 12.0, 12.0
    ha0_deg = float(np.arccos(cos_ha0)) * RAD2DEG
    half_day_hours = ha0_deg / 15.0
    return 12.0 - half_day_hours, 12.0 + half_day_hours


def daylight_hours(latitude_deg: float, day_of_year: float) -> float:
    """Length of the day in hours."""
    sunrise, sunset = sunrise_sunset_hour(latitude_deg, day_of_year)
    return sunset - sunrise
