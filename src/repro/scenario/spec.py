"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures *everything* one end-to-end run of the
pipeline needs -- the roof, the module datasheet, the weather and time
configuration, the irradiance-model options and the solver choice -- as a
plain, JSON-round-trippable document.  The declarative form serves three
purposes:

* scenarios can be stored, versioned and shared as small JSON files (the
  pvlib-style "site spec" idiom);
* the batch runner can ship scenarios to worker processes without pickling
  heavyweight simulation objects;
* every pipeline stage derives a *content key* from the relevant slice of
  the specification, which is what makes the disk cache of
  :mod:`repro.runner` correct: two scenarios sharing a roof, weather and
  time base hash to the same solar-field key and reuse each other's
  expensive intermediate results.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..constants import DEFAULT_GRID_PITCH, TURIN_LATITUDE, TURIN_LONGITUDE
from ..errors import ConfigurationError
from ..geometry import Point2D, Polygon
from ..gis.dsm import ObstacleFootprint
from ..gis.synthetic import AdjacentStructure, RoofSpec
from ..pv.datasheet import DATASHEETS, ModuleDatasheet, get_datasheet
from ..solar.irradiance_map import SolarSimulationConfig
from ..solar.linke import LinkeTurbidityProfile
from ..solar.time_series import TimeGrid
from ..weather.records import StationMetadata, WeatherSeries
from ..weather.synthetic import (
    SyntheticWeatherConfig,
    generate_clearsky_weather,
    generate_weather,
    scale_weather,
)

PathLike = Union[str, Path]

#: Version stamp embedded in serialised scenarios (bump on breaking changes).
SCENARIO_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Roof (de)serialisation
# ---------------------------------------------------------------------------


def _polygon_to_list(polygon: Polygon) -> list:
    return [[float(v.x), float(v.y)] for v in polygon.vertices]


def _polygon_from_list(vertices: list) -> Polygon:
    return Polygon([Point2D(float(u), float(v)) for u, v in vertices])


def roof_spec_to_dict(spec: RoofSpec) -> dict:
    """Convert a :class:`~repro.gis.RoofSpec` into a JSON-serialisable dict."""
    return {
        "name": spec.name,
        "width_m": spec.width_m,
        "depth_m": spec.depth_m,
        "tilt_deg": spec.tilt_deg,
        "azimuth_deg": spec.azimuth_deg,
        "eave_height_m": spec.eave_height_m,
        "edge_setback_m": spec.edge_setback_m,
        "obstacles": [
            {
                "name": obstacle.name,
                "vertices": _polygon_to_list(obstacle.polygon),
                "height_m": obstacle.height_m,
                "clearance_m": obstacle.clearance_m,
            }
            for obstacle in spec.obstacles
        ],
        "adjacent_structures": [
            {
                "name": structure.name,
                "vertices": _polygon_to_list(structure.polygon),
                "height_m": structure.height_m,
            }
            for structure in spec.adjacent_structures
        ],
        "surface_roughness_m": spec.surface_roughness_m,
        "roughness_correlation_m": spec.roughness_correlation_m,
        "roughness_seed": spec.roughness_seed,
    }


def roof_spec_from_dict(data: Mapping[str, Any]) -> RoofSpec:
    """Rebuild a :class:`~repro.gis.RoofSpec` from its dictionary form."""
    try:
        return RoofSpec(
            name=str(data["name"]),
            width_m=float(data["width_m"]),
            depth_m=float(data["depth_m"]),
            tilt_deg=float(data["tilt_deg"]),
            azimuth_deg=float(data["azimuth_deg"]),
            eave_height_m=float(data.get("eave_height_m", 6.0)),
            edge_setback_m=float(data.get("edge_setback_m", 0.4)),
            obstacles=tuple(
                ObstacleFootprint(
                    name=str(entry["name"]),
                    polygon=_polygon_from_list(entry["vertices"]),
                    height_m=float(entry["height_m"]),
                    clearance_m=float(entry.get("clearance_m", 0.2)),
                )
                for entry in data.get("obstacles", [])
            ),
            adjacent_structures=tuple(
                AdjacentStructure(
                    name=str(entry["name"]),
                    polygon=_polygon_from_list(entry["vertices"]),
                    height_m=float(entry["height_m"]),
                )
                for entry in data.get("adjacent_structures", [])
            ),
            surface_roughness_m=float(data.get("surface_roughness_m", 0.0)),
            roughness_correlation_m=float(data.get("roughness_correlation_m", 2.0)),
            roughness_seed=int(data.get("roughness_seed", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed roof specification: {exc}") from exc


# ---------------------------------------------------------------------------
# Canonical content payloads for the stage cache
#
# These are the single source of truth for the expensive-stage cache keys:
# both the declarative scenario path (ScenarioSpec methods below) and the
# object-level path (repro.runner.stages, used by plan_roof and the
# case-study drivers) build their keys through these functions, so the two
# entry points share cache entries for identical inputs by construction.
# ---------------------------------------------------------------------------


def scene_content_payload(roof: RoofSpec, dsm_pitch: float) -> dict:
    """Content key of the rasterised scene (roof geometry + DSM pitch)."""
    return {"stage": "scene", "roof": roof_spec_to_dict(roof), "dsm_pitch": dsm_pitch}


def grid_content_payload(roof: RoofSpec, dsm_pitch: float, grid_pitch: float) -> dict:
    """Content key of the suitable-area virtual grid."""
    return {
        "stage": "grid",
        "scene": scene_content_payload(roof, dsm_pitch),
        "grid_pitch": grid_pitch,
    }


# ---------------------------------------------------------------------------
# Component specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimeSpec:
    """Declarative temporal sampling (see :class:`repro.solar.TimeGrid`)."""

    step_minutes: float = 60.0
    day_stride: int = 7

    def build(self) -> TimeGrid:
        """Materialise the :class:`TimeGrid`."""
        return TimeGrid(step_minutes=self.step_minutes, day_stride=self.day_stride)

    def to_dict(self) -> dict:
        return {"step_minutes": self.step_minutes, "day_stride": self.day_stride}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimeSpec":
        return cls(
            step_minutes=float(data.get("step_minutes", 60.0)),
            day_stride=int(data.get("day_stride", 7)),
        )


@dataclass(frozen=True)
class WeatherSpec:
    """Declarative weather-station configuration.

    ``kind`` selects the generator: ``"synthetic"`` (stochastic clear-sky
    index, the default) or ``"clearsky"`` (idealised cloud-free year).
    ``ghi_factor`` rescales the irradiance, emulating sunnier or cloudier
    climates while keeping the temporal structure fixed.
    """

    kind: str = "synthetic"
    seed: int = 0
    ghi_factor: float = 1.0
    station_name: str = "turin-synthetic"
    latitude_deg: float = TURIN_LATITUDE
    longitude_deg: float = TURIN_LONGITUDE
    altitude_m: float = 240.0

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "clearsky"):
            raise ConfigurationError(f"unknown weather kind {self.kind!r}")
        if self.ghi_factor < 0:
            raise ConfigurationError("ghi_factor must be non-negative")

    def station(self) -> StationMetadata:
        """The station metadata implied by the specification."""
        return StationMetadata(
            name=self.station_name,
            latitude_deg=self.latitude_deg,
            longitude_deg=self.longitude_deg,
            altitude_m=self.altitude_m,
        )

    def build(self, time_grid: TimeGrid) -> WeatherSeries:
        """Generate the weather series on the given time grid."""
        config = SyntheticWeatherConfig(station=self.station(), seed=self.seed)
        if self.kind == "clearsky":
            series = generate_clearsky_weather(time_grid, config)
        else:
            series = generate_weather(time_grid, config)
        if self.ghi_factor != 1.0:
            series = scale_weather(series, self.ghi_factor)
        return series

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "ghi_factor": self.ghi_factor,
            "station_name": self.station_name,
            "latitude_deg": self.latitude_deg,
            "longitude_deg": self.longitude_deg,
            "altitude_m": self.altitude_m,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WeatherSpec":
        return cls(
            kind=str(data.get("kind", "synthetic")),
            seed=int(data.get("seed", 0)),
            ghi_factor=float(data.get("ghi_factor", 1.0)),
            station_name=str(data.get("station_name", "turin-synthetic")),
            latitude_deg=float(data.get("latitude_deg", TURIN_LATITUDE)),
            longitude_deg=float(data.get("longitude_deg", TURIN_LONGITUDE)),
            altitude_m=float(data.get("altitude_m", 240.0)),
        )


@dataclass(frozen=True)
class SolarSpec:
    """Declarative irradiance-simulation options.

    Mirrors :class:`repro.solar.SolarSimulationConfig` with plain values so
    the configuration participates in JSON round-trips and content hashing.
    ``linke_turbidity`` is either ``None`` (the Turin monthly climatology) or
    a 12-value monthly tuple.
    """

    sky_model: str = "haydavies"
    decomposition_model: str = "erbs"
    albedo: float = 0.2
    n_horizon_sectors: int = 36
    horizon_max_distance_m: float = 60.0
    linke_turbidity: Optional[Tuple[float, ...]] = None

    def build(self) -> SolarSimulationConfig:
        """Materialise the :class:`SolarSimulationConfig`."""
        turbidity = (
            LinkeTurbidityProfile.turin_default()
            if self.linke_turbidity is None
            else LinkeTurbidityProfile.from_monthly(self.linke_turbidity)
        )
        return SolarSimulationConfig(
            sky_model=self.sky_model,
            decomposition_model=self.decomposition_model,
            albedo=self.albedo,
            linke_turbidity=turbidity,
            n_horizon_sectors=self.n_horizon_sectors,
            horizon_max_distance_m=self.horizon_max_distance_m,
        )

    def to_dict(self) -> dict:
        return {
            "sky_model": self.sky_model,
            "decomposition_model": self.decomposition_model,
            "albedo": self.albedo,
            "n_horizon_sectors": self.n_horizon_sectors,
            "horizon_max_distance_m": self.horizon_max_distance_m,
            "linke_turbidity": (
                None if self.linke_turbidity is None else list(self.linke_turbidity)
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolarSpec":
        turbidity = data.get("linke_turbidity")
        return cls(
            sky_model=str(data.get("sky_model", "haydavies")),
            decomposition_model=str(data.get("decomposition_model", "erbs")),
            albedo=float(data.get("albedo", 0.2)),
            n_horizon_sectors=int(data.get("n_horizon_sectors", 36)),
            horizon_max_distance_m=float(data.get("horizon_max_distance_m", 60.0)),
            linke_turbidity=None if turbidity is None else tuple(float(v) for v in turbidity),
        )


@dataclass(frozen=True)
class SolverSpec:
    """Solver choice plus its free-form option mapping.

    ``name`` must resolve in the :mod:`repro.runner.solvers` registry
    (``greedy``, ``traditional``, ``ilp``, ``exhaustive`` out of the box);
    ``options`` is forwarded to the solver's config dataclass.

    ``fallback`` names cheaper solvers tried in order when the configured
    one raises or the chain's wall-clock ``budget_s`` runs out (see
    :func:`repro.runner.solvers.solve_with_fallback`); results produced by
    a fallback entry are flagged ``degraded``.  ``warm_start=False`` opts
    the scenario out of warm-start hints offered by sweeps or campaign
    workers -- its points always solve cold.  All three fields serialise
    only when set (non-default), so plain scenarios keep their dictionary
    form -- and therefore their content digests -- unchanged.
    """

    name: str = "greedy"
    options: Mapping[str, Any] = field(default_factory=dict)
    fallback: Tuple[str, ...] = ()
    budget_s: Optional[float] = None
    warm_start: bool = True

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {"name": self.name, "options": dict(self.options)}
        if self.fallback:
            data["fallback"] = list(self.fallback)
        if self.budget_s is not None:
            data["budget_s"] = self.budget_s
        if not self.warm_start:
            data["warm_start"] = False
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolverSpec":
        budget = data.get("budget_s")
        return cls(
            name=str(data.get("name", "greedy")),
            options=dict(data.get("options", {})),
            fallback=tuple(str(name) for name in data.get("fallback", [])),
            budget_s=None if budget is None else float(budget),
            warm_start=bool(data.get("warm_start", True)),
        )


# ---------------------------------------------------------------------------
# Axis overrides
#
# The sweep engine (:mod:`repro.sweep`) varies scenarios along declarative
# *axes*: dotted paths into the scenario's dictionary form ("n_modules",
# "weather.seed", "solver.name", "module.gamma_p_per_k", "roof", ...).
# Applying an override is a pure dictionary transformation, so every sweep
# point remains JSON-round-trippable by construction and derives its cache
# keys exactly like a hand-written scenario would.
# ---------------------------------------------------------------------------


def apply_scenario_overrides(
    data: Mapping[str, Any], overrides: Mapping[str, Any]
) -> dict:
    """Apply dotted-path overrides to a scenario dictionary.

    Returns a new dictionary; ``data`` is not modified.  Paths must address
    existing keys (guarding against typos such as ``weather.sed``) with two
    deliberate exceptions:

    * ``solver.options.<key>`` may introduce new keys -- solver options are
      a free-form mapping forwarded to the solver's config dataclass;
    * a plain-string ``solver`` value is shorthand for
      ``{"name": value, "options": {}}``.

    Overriding ``module.<field>`` when the scenario references a datasheet
    by registry name first expands the name into its full field dictionary,
    so single-field datasheet axes (e.g. a temperature-coefficient sweep)
    work against named modules too.
    """
    result = json.loads(json.dumps(dict(data)))  # deep, JSON-faithful copy
    for path, value in overrides.items():
        _assign_override(result, str(path), value)
    return result


def _assign_override(data: dict, path: str, value: Any) -> None:
    parts = path.split(".")
    if not all(parts):
        raise ConfigurationError(f"malformed override path {path!r}")

    if parts[0] == "solver" and len(parts) == 1 and isinstance(value, str):
        value = {"name": value, "options": {}}
    if parts[0] == "module" and len(parts) > 1 and isinstance(data.get("module"), str):
        data["module"] = dataclasses.asdict(get_datasheet(data["module"]))

    node = data
    for key in parts[:-1]:
        if key not in node:
            known = ", ".join(sorted(node))
            raise ConfigurationError(
                f"override path {path!r} addresses unknown key {key!r}; known: {known}"
            )
        child = node[key]
        if not isinstance(child, dict):
            raise ConfigurationError(
                f"override path {path!r} does not address a mapping at {key!r}"
            )
        node = child
    leaf = parts[-1]
    # New keys are only allowed where the schema is free-form by design --
    # plus the optional solver-chain fields, which serialise only when set
    # and are therefore usually absent from the dictionary being overridden.
    free_form = len(parts) >= 2 and (
        parts[-2] == "options"
        or (parts[-2] == "solver" and leaf in ("fallback", "budget_s"))
    )
    if leaf not in node and not free_form:
        known = ", ".join(sorted(node))
        raise ConfigurationError(
            f"override path {path!r} addresses unknown key {leaf!r}; known: {known}"
        )
    node[leaf] = json.loads(json.dumps(value))  # detach from the caller


# ---------------------------------------------------------------------------
# The scenario itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully declarative end-to-end pipeline run.

    Attributes
    ----------
    name:
        Unique scenario identifier (catalog key, JSONL record key).
    roof:
        The roof to plan (size, tilt, azimuth, obstacles, neighbours).
    n_modules:
        Number of modules to place.
    n_series:
        Modules per series string (defaults to ``min(8, n_modules)``).
    module:
        Either a key into the bundled datasheet registry
        (:data:`repro.pv.datasheet.DATASHEETS`) or an inline datasheet dict.
    grid_pitch, dsm_pitch:
        Virtual-grid and DSM raster resolutions [m].
    time, weather, solar:
        Temporal sampling, weather generator and irradiance-model options.
    solver:
        Placement solver choice plus options.
    allow_rotation:
        Whether modules may be rotated by 90 degrees during placement.
    description, tags:
        Free-form catalog metadata (not part of any content key).

    Example
    -------
    Scenarios are JSON-round-trippable documents; the dictionary/JSON form
    is the storage, transport *and* cache-key format:

    >>> from repro.scenario import ScenarioSpec, get_scenario
    >>> spec = get_scenario("residential-south")
    >>> ScenarioSpec.from_json(spec.to_json()).to_dict() == spec.to_dict()
    True
    >>> sorted(spec.solar_payload())   # the solar-stage cache key inputs
    ['grid', 'solar', 'stage', 'time', 'weather']
    >>> spec.with_solver("ilp", time_limit_s=5.0).solver.name
    'ilp'
    """

    name: str
    roof: RoofSpec
    n_modules: int
    n_series: Optional[int] = None
    module: Union[str, Mapping[str, Any]] = "pv-mf165eb3"
    grid_pitch: float = DEFAULT_GRID_PITCH
    dsm_pitch: float = 0.4
    time: TimeSpec = field(default_factory=TimeSpec)
    weather: WeatherSpec = field(default_factory=WeatherSpec)
    solar: SolarSpec = field(default_factory=SolarSpec)
    solver: SolverSpec = field(default_factory=SolverSpec)
    allow_rotation: bool = False
    description: str = ""
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if self.n_modules < 1:
            raise ConfigurationError("n_modules must be positive")
        if self.n_series is not None and self.n_series < 1:
            raise ConfigurationError("n_series must be positive")
        if self.grid_pitch <= 0 or self.dsm_pitch <= 0:
            raise ConfigurationError("grid and DSM pitches must be positive")
        if isinstance(self.module, str) and self.module.lower() not in DATASHEETS:
            known = ", ".join(sorted(DATASHEETS))
            raise ConfigurationError(
                f"unknown module datasheet {self.module!r}; known: {known}"
            )

    # -- derived objects ---------------------------------------------------------

    def datasheet(self) -> ModuleDatasheet:
        """Resolve the module reference into a :class:`ModuleDatasheet`."""
        if isinstance(self.module, str):
            return get_datasheet(self.module)
        return ModuleDatasheet(**dict(self.module))

    def series_length(self) -> int:
        """Modules per series string."""
        return self.n_series if self.n_series is not None else min(8, self.n_modules)

    def with_solver(self, name: str, **options: Any) -> "ScenarioSpec":
        """A copy of the scenario with a different solver choice."""
        return replace(self, solver=SolverSpec(name=name, options=options))

    def with_overrides(
        self, overrides: Mapping[str, Any], name: Optional[str] = None
    ) -> "ScenarioSpec":
        """A copy of the scenario with dotted-path axis overrides applied.

        The overrides are applied to the scenario's dictionary form (see
        :func:`apply_scenario_overrides`), so the result is exactly what a
        hand-edited JSON scenario would parse to -- including validation and
        cache-key derivation.  ``name`` renames the resulting scenario
        (sweep points need unique names).

        Example
        -------
        >>> from repro.scenario import get_scenario
        >>> base = get_scenario("residential-south")
        >>> point = base.with_overrides(
        ...     {"n_modules": 8, "weather.latitude_deg": 52.5, "solver": "traditional"},
        ...     name="residential-south@n8-berlin",
        ... )
        >>> (point.n_modules, point.weather.latitude_deg, point.solver.name)
        (8, 52.5, 'traditional')
        >>> base.n_modules  # the base scenario is untouched
        6
        """
        data = apply_scenario_overrides(self.to_dict(), overrides)
        if name is not None:
            data["name"] = name
        return ScenarioSpec.from_dict(data)

    # -- content keys for the stage cache ----------------------------------------

    def scene_payload(self) -> dict:
        """Content key of the rasterised scene (roof geometry + DSM pitch)."""
        return scene_content_payload(self.roof, self.dsm_pitch)

    def grid_payload(self) -> dict:
        """Content key of the suitable-area virtual grid."""
        return grid_content_payload(self.roof, self.dsm_pitch, self.grid_pitch)

    def solar_payload(self) -> dict:
        """Content key of the spatio-temporal solar field (dominant cost)."""
        return {
            "stage": "solar",
            "grid": self.grid_payload(),
            "time": self.time.to_dict(),
            "weather": self.weather.to_dict(),
            "solar": self.solar.to_dict(),
        }

    # -- (de)serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Full JSON-serialisable dictionary form of the scenario."""
        module = self.module if isinstance(self.module, str) else dict(self.module)
        return {
            "format_version": SCENARIO_FORMAT_VERSION,
            "name": self.name,
            "roof": roof_spec_to_dict(self.roof),
            "n_modules": self.n_modules,
            "n_series": self.n_series,
            "module": module,
            "grid_pitch": self.grid_pitch,
            "dsm_pitch": self.dsm_pitch,
            "time": self.time.to_dict(),
            "weather": self.weather.to_dict(),
            "solar": self.solar.to_dict(),
            "solver": self.solver.to_dict(),
            "allow_rotation": self.allow_rotation,
            "description": self.description,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a scenario from its dictionary form."""
        version = data.get("format_version", SCENARIO_FORMAT_VERSION)
        if version != SCENARIO_FORMAT_VERSION:
            raise ConfigurationError(f"unsupported scenario format version {version}")
        try:
            module = data.get("module", "pv-mf165eb3")
            n_series = data.get("n_series")
            return cls(
                name=str(data["name"]),
                roof=roof_spec_from_dict(data["roof"]),
                n_modules=int(data["n_modules"]),
                n_series=None if n_series is None else int(n_series),
                module=module if isinstance(module, str) else dict(module),
                grid_pitch=float(data.get("grid_pitch", DEFAULT_GRID_PITCH)),
                dsm_pitch=float(data.get("dsm_pitch", 0.4)),
                time=TimeSpec.from_dict(data.get("time", {})),
                weather=WeatherSpec.from_dict(data.get("weather", {})),
                solar=SolarSpec.from_dict(data.get("solar", {})),
                solver=SolverSpec.from_dict(data.get("solver", {})),
                allow_rotation=bool(data.get("allow_rotation", False)),
                description=str(data.get("description", "")),
                tags=tuple(str(tag) for tag in data.get("tags", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed scenario specification: {exc}") from exc

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise the scenario to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a scenario from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: PathLike) -> None:
        """Write the scenario to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "ScenarioSpec":
        """Read a scenario from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
