"""Declarative scenario catalog: JSON-round-trippable pipeline specifications."""

from .catalog import builtin_scenarios, get_scenario, scenario_names
from .spec import (
    SCENARIO_FORMAT_VERSION,
    ScenarioSpec,
    SolarSpec,
    SolverSpec,
    TimeSpec,
    WeatherSpec,
    apply_scenario_overrides,
    roof_spec_from_dict,
    roof_spec_to_dict,
)

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "ScenarioSpec",
    "apply_scenario_overrides",
    "SolarSpec",
    "SolverSpec",
    "TimeSpec",
    "WeatherSpec",
    "roof_spec_from_dict",
    "roof_spec_to_dict",
    "builtin_scenarios",
    "get_scenario",
    "scenario_names",
]
