"""Built-in scenario catalog.

A dozen named, ready-to-run scenarios spanning the workload space the
ROADMAP asks the system to serve: residential and industrial roofs, an
east/west orientation split, a shared-roof fleet (three scenarios that hash
to the same scene/solar content keys, so the batch runner computes the
expensive stages once), a high-latitude site, a heavily shaded courtyard
roof, a sparse-obstacle warehouse, and an ILP-solved exact instance.

All catalog entries are deliberately sized so the *entire* catalog runs in
well under a minute on a laptop (coarse DSM raster, two-hourly sampling of
every 30th day): they exercise every code path end to end and serve as the
fleet for the batch-runner benchmark, while custom JSON scenarios scale the
same machinery up to paper-sized instances.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError
from ..gis.synthetic import (
    AdjacentStructure,
    RoofSpec,
    antenna,
    chimney,
    dormer,
    hvac_unit,
    pipe_rack,
    scattered_vents,
    skylight_row,
)
from ..geometry import Polygon
from .spec import ScenarioSpec, SolarSpec, SolverSpec, TimeSpec, WeatherSpec

#: Temporal sampling shared by the catalog: two-hourly samples of every 30th
#: day (156 samples) -- fast, yet an unbiased yearly estimate.
_CATALOG_TIME = TimeSpec(step_minutes=120.0, day_stride=30)

#: Coarser irradiance options used by the catalog (the defaults resolve the
#: paper-scale roofs; the catalog roofs are small enough for 24 sectors).
_CATALOG_SOLAR = SolarSpec(n_horizon_sectors=24, horizon_max_distance_m=40.0)

#: Virtual-grid pitch of the catalog scenarios: 0.4 m puts the paper module
#: on a 4 x 2 cell footprint and keeps the grids small.
_CATALOG_PITCH = 0.4


def _residential_roof(
    name: str, azimuth_deg: float = 0.0, tilt_deg: float = 30.0
) -> RoofSpec:
    """A 12 m x 6 m gable facet with a chimney, a dormer and an antenna."""
    return RoofSpec(
        name=name,
        width_m=12.0,
        depth_m=6.0,
        tilt_deg=tilt_deg,
        azimuth_deg=azimuth_deg,
        eave_height_m=5.0,
        edge_setback_m=0.3,
        obstacles=(
            chimney(2.5, 4.5, side_m=0.8, height_m=1.6),
            dormer(8.0, 2.0, width_m=1.8, depth_m=1.4, height_m=1.6),
            antenna(10.8, 5.0, side_m=0.3, height_m=2.5),
        ),
        surface_roughness_m=0.05,
        roughness_correlation_m=1.0,
        roughness_seed=17,
    )


def _industrial_roof(name: str, with_pipes: bool) -> RoofSpec:
    """A 18 m x 8 m lean-to industrial facet, optionally crossed by pipe racks."""
    obstacles = (
        chimney(4.0, 6.5, side_m=0.8, height_m=1.7),
        hvac_unit(14.5, 3.0, side_m=2.2, height_m=1.5),
        skylight_row(8.0, 5.5, length_m=3.0, width_m=1.2, height_m=0.5),
    )
    if with_pipes:
        obstacles = obstacles + (
            pipe_rack(2.0, 3.2, length_m=8.0, width_m=1.6, height_m=1.2),
        )
    return RoofSpec(
        name=name,
        width_m=18.0,
        depth_m=8.0,
        tilt_deg=26.0,
        azimuth_deg=10.0,
        eave_height_m=7.0,
        edge_setback_m=0.4,
        obstacles=obstacles + scattered_vents(18.0, 8.0, n_vents=6, seed=9),
        surface_roughness_m=0.10,
        roughness_correlation_m=1.2,
        roughness_seed=42,
    )


def _fleet_roof() -> RoofSpec:
    """The shared roof of the ``fleet-*`` scenarios (identical content key)."""
    return RoofSpec(
        name="fleet-roof",
        width_m=14.0,
        depth_m=7.0,
        tilt_deg=28.0,
        azimuth_deg=-5.0,
        eave_height_m=6.0,
        edge_setback_m=0.3,
        obstacles=(
            chimney(3.5, 5.5, side_m=0.8, height_m=1.5),
            hvac_unit(10.5, 2.5, side_m=2.0, height_m=1.4),
        ),
        surface_roughness_m=0.06,
        roughness_correlation_m=1.0,
        roughness_seed=7,
    )


def _heavy_shading_roof() -> RoofSpec:
    """A courtyard facet hemmed in by taller building sections on three sides."""
    width, depth = 13.0, 6.5
    return RoofSpec(
        name="courtyard",
        width_m=width,
        depth_m=depth,
        tilt_deg=22.0,
        azimuth_deg=0.0,
        eave_height_m=5.0,
        edge_setback_m=0.3,
        obstacles=(
            chimney(4.0, 4.8, side_m=0.9, height_m=1.8),
            chimney(9.0, 5.2, side_m=0.8, height_m=1.6),
        ),
        adjacent_structures=(
            AdjacentStructure(
                name="east-wing",
                polygon=Polygon.rectangle(width, -2.0, width + 6.0, depth + 2.0),
                height_m=6.0,
            ),
            AdjacentStructure(
                name="ridge-wing",
                polygon=Polygon.rectangle(-2.0, depth, width + 2.0, depth + 5.0),
                height_m=4.0,
            ),
            AdjacentStructure(
                name="south-neighbour",
                polygon=Polygon.rectangle(1.0, -9.0, 9.0, -4.0),
                height_m=5.0,
            ),
        ),
        surface_roughness_m=0.08,
        roughness_correlation_m=1.0,
        roughness_seed=23,
    )


def _sparse_roof() -> RoofSpec:
    """A clean warehouse facet: nothing on the roof but the edge setback."""
    return RoofSpec(
        name="warehouse",
        width_m=16.0,
        depth_m=8.0,
        tilt_deg=15.0,
        azimuth_deg=0.0,
        eave_height_m=8.0,
        edge_setback_m=0.4,
    )


def _high_latitude_roof() -> RoofSpec:
    """A steep facet at a subarctic site (low sun, long shadows)."""
    return RoofSpec(
        name="nordic",
        width_m=11.0,
        depth_m=6.0,
        tilt_deg=45.0,
        azimuth_deg=0.0,
        eave_height_m=5.0,
        edge_setback_m=0.3,
        obstacles=(chimney(3.0, 4.5, side_m=0.8, height_m=1.8),),
        surface_roughness_m=0.05,
        roughness_correlation_m=1.0,
        roughness_seed=31,
    )


def _ilp_roof() -> RoofSpec:
    """A tiny facet sized for the exact solvers."""
    return RoofSpec(
        name="ilp-mini",
        width_m=7.0,
        depth_m=4.0,
        tilt_deg=30.0,
        azimuth_deg=0.0,
        eave_height_m=4.0,
        edge_setback_m=0.2,
        obstacles=(chimney(2.0, 3.0, side_m=0.6, height_m=1.4),),
    )


def _scenario(name: str, roof: RoofSpec, n_modules: int, **kwargs) -> ScenarioSpec:
    """Catalog entry with the shared catalog-wide defaults applied."""
    kwargs.setdefault("time", _CATALOG_TIME)
    kwargs.setdefault("solar", _CATALOG_SOLAR)
    kwargs.setdefault("grid_pitch", _CATALOG_PITCH)
    kwargs.setdefault("dsm_pitch", 0.5)
    return ScenarioSpec(name=name, roof=roof, n_modules=n_modules, **kwargs)


def builtin_scenarios() -> Dict[str, ScenarioSpec]:
    """The built-in catalog, keyed by scenario name (insertion-ordered)."""
    fleet_roof = _fleet_roof()
    fleet_weather = WeatherSpec(seed=11)
    scenarios = [
        _scenario(
            "residential-south",
            _residential_roof("residential-south"),
            n_modules=6,
            n_series=3,
            description="12 m gable facet facing south; the quickstart workload.",
            tags=("residential",),
        ),
        _scenario(
            "residential-compact",
            _residential_roof("residential-compact", tilt_deg=35.0),
            n_modules=4,
            n_series=2,
            solver=SolverSpec(name="traditional"),
            description="Small residential roof planned with the compact baseline.",
            tags=("residential", "baseline"),
        ),
        _scenario(
            "ew-split-east",
            _residential_roof("ew-east", azimuth_deg=-90.0),
            n_modules=6,
            n_series=3,
            description="East-facing half of an east/west split installation.",
            tags=("residential", "east-west"),
        ),
        _scenario(
            "ew-split-west",
            _residential_roof("ew-west", azimuth_deg=90.0),
            n_modules=6,
            n_series=3,
            description="West-facing half of an east/west split installation.",
            tags=("residential", "east-west"),
        ),
        _scenario(
            "industrial-pipes",
            _industrial_roof("industrial-pipes", with_pipes=True),
            n_modules=8,
            n_series=4,
            description="Industrial facet crossed by pipe racks (paper Roof 1 style).",
            tags=("industrial",),
        ),
        _scenario(
            "industrial-clean",
            _industrial_roof("industrial-clean", with_pipes=False),
            n_modules=10,
            n_series=5,
            description="Industrial facet with scattered equipment only (Roof 2 style).",
            tags=("industrial",),
        ),
        _scenario(
            "fleet-a-n6",
            fleet_roof,
            n_modules=6,
            n_series=3,
            weather=fleet_weather,
            description="Fleet roof, 6 modules; shares scene/solar cache with fleet-*.",
            tags=("fleet",),
        ),
        _scenario(
            "fleet-b-n8",
            fleet_roof,
            n_modules=8,
            n_series=4,
            weather=fleet_weather,
            description="Fleet roof, 8 modules; solar field reused from the cache.",
            tags=("fleet",),
        ),
        _scenario(
            "fleet-c-baseline",
            fleet_roof,
            n_modules=6,
            n_series=3,
            weather=fleet_weather,
            solver=SolverSpec(name="traditional"),
            description="Fleet roof planned with the compact baseline for comparison.",
            tags=("fleet", "baseline"),
        ),
        _scenario(
            "high-latitude",
            _high_latitude_roof(),
            n_modules=5,
            n_series=5,
            weather=WeatherSpec(
                station_name="subarctic",
                latitude_deg=65.0,
                longitude_deg=25.5,
                altitude_m=90.0,
                seed=3,
            ),
            description="Steep roof at 65 degrees north; low sun, long shadows.",
            tags=("high-latitude",),
        ),
        _scenario(
            "heavy-shading",
            _heavy_shading_roof(),
            n_modules=5,
            n_series=5,
            description="Courtyard facet shaded by taller wings on three sides.",
            tags=("shading",),
        ),
        _scenario(
            "sparse-warehouse",
            _sparse_roof(),
            n_modules=12,
            n_series=6,
            description="Obstacle-free warehouse roof; placement is wiring-bound.",
            tags=("industrial", "sparse"),
        ),
        _scenario(
            "ilp-exact-mini",
            _ilp_roof(),
            n_modules=3,
            n_series=3,
            solver=SolverSpec(name="ilp", options={"time_limit_s": 20.0}),
            description="Tiny instance solved to ILP optimality (HiGHS).",
            tags=("exact",),
        ),
    ]
    catalog = {}
    for scenario in scenarios:
        if scenario.name in catalog:
            raise ConfigurationError(f"duplicate catalog scenario {scenario.name!r}")
        catalog[scenario.name] = scenario
    return catalog


def scenario_names() -> List[str]:
    """Names of the built-in scenarios, in catalog order."""
    return list(builtin_scenarios())


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario by name."""
    catalog = builtin_scenarios()
    try:
        return catalog[name]
    except KeyError as exc:
        known = ", ".join(catalog)
        raise ConfigurationError(f"unknown scenario {name!r}; known: {known}") from exc
