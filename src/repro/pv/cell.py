"""Single-diode PV cell model.

The paper's background section (II-B, Figure 2a) describes the cell as "an
ideal current source, proportional to solar irradiance, and a diode
connected in anti-parallel", whose I-V curve shifts with irradiance
(Isc proportional to G, Voc logarithmic in G) and temperature (Isc slightly
up, Voc down).  This module implements the standard five-parameter
single-diode model so the repository can regenerate those characteristic
curves and validate the empirical module model against a physics-based one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import KELVIN_OFFSET, STC_IRRADIANCE, STC_TEMPERATURE
from ..errors import PVModelError

#: Boltzmann constant [J/K].
_BOLTZMANN = 1.380649e-23
#: Elementary charge [C].
_ELEMENTARY_CHARGE = 1.602176634e-19
#: Silicon band-gap energy [eV].
_BAND_GAP_EV = 1.12


@dataclass(frozen=True)
class SingleDiodeCell:
    """Five-parameter single-diode cell model.

    Attributes
    ----------
    photocurrent_ref:
        Photo-generated current at STC [A] (approximately the cell Isc).
    saturation_current_ref:
        Diode reverse-saturation current at STC [A].
    ideality_factor:
        Diode ideality factor (1..2 for silicon).
    series_resistance:
        Lumped series resistance [ohm].
    shunt_resistance:
        Lumped shunt resistance [ohm].
    alpha_isc_per_k:
        Relative temperature coefficient of the photocurrent [1/K].
    """

    photocurrent_ref: float = 7.36
    saturation_current_ref: float = 1e-9
    ideality_factor: float = 1.3
    series_resistance: float = 0.005
    shunt_resistance: float = 15.0
    alpha_isc_per_k: float = 0.0005

    def __post_init__(self) -> None:
        if self.photocurrent_ref <= 0:
            raise PVModelError("the reference photocurrent must be positive")
        if self.saturation_current_ref <= 0:
            raise PVModelError("the saturation current must be positive")
        if not 1.0 <= self.ideality_factor <= 2.5:
            raise PVModelError("the diode ideality factor must be in [1, 2.5]")
        if self.series_resistance < 0 or self.shunt_resistance <= 0:
            raise PVModelError("resistances must be non-negative (shunt strictly positive)")

    # -- temperature- and irradiance-dependent parameters ---------------------------

    def thermal_voltage(self, cell_temperature_c: float) -> float:
        """Diode thermal voltage n*k*T/q [V]."""
        t_kelvin = cell_temperature_c + KELVIN_OFFSET
        return self.ideality_factor * _BOLTZMANN * t_kelvin / _ELEMENTARY_CHARGE

    def photocurrent(self, irradiance: float, cell_temperature_c: float) -> float:
        """Photo-generated current [A]: proportional to G, weakly increasing with T."""
        if irradiance < 0:
            raise PVModelError("irradiance must be non-negative")
        temperature_factor = 1.0 + self.alpha_isc_per_k * (cell_temperature_c - STC_TEMPERATURE)
        return self.photocurrent_ref * temperature_factor * irradiance / STC_IRRADIANCE

    def saturation_current(self, cell_temperature_c: float) -> float:
        """Diode saturation current [A] with the usual T^3 exp(-Eg/kT) scaling."""
        t_ref = STC_TEMPERATURE + KELVIN_OFFSET
        t = cell_temperature_c + KELVIN_OFFSET
        exponent = (
            _BAND_GAP_EV
            * _ELEMENTARY_CHARGE
            / (self.ideality_factor * _BOLTZMANN)
            * (1.0 / t_ref - 1.0 / t)
        )
        return self.saturation_current_ref * (t / t_ref) ** 3 * np.exp(exponent)

    # -- I-V characteristics ----------------------------------------------------------

    def current_at_voltage(
        self, voltage: np.ndarray, irradiance: float, cell_temperature_c: float = STC_TEMPERATURE
    ) -> np.ndarray:
        """Cell current [A] at the given terminal voltage(s).

        Solves the implicit single-diode equation
        ``I = Iph - I0*(exp((V + I*Rs)/Vt) - 1) - (V + I*Rs)/Rsh``
        by fixed-point iteration (converges quickly for realistic Rs).
        """
        v = np.asarray(voltage, dtype=float)
        iph = self.photocurrent(irradiance, cell_temperature_c)
        i0 = self.saturation_current(cell_temperature_c)
        vt = self.thermal_voltage(cell_temperature_c)

        current = np.full_like(v, iph)
        for _ in range(60):
            v_diode = v + current * self.series_resistance
            new_current = (
                iph
                - i0 * (np.exp(np.clip(v_diode / vt, -50.0, 80.0)) - 1.0)
                - v_diode / self.shunt_resistance
            )
            if np.allclose(new_current, current, atol=1e-9):
                current = new_current
                break
            current = 0.5 * current + 0.5 * new_current
        return np.maximum(current, 0.0)

    def short_circuit_current(
        self, irradiance: float, cell_temperature_c: float = STC_TEMPERATURE
    ) -> float:
        """Short-circuit current Isc [A]."""
        return float(self.current_at_voltage(np.asarray([0.0]), irradiance, cell_temperature_c)[0])

    def open_circuit_voltage(
        self, irradiance: float, cell_temperature_c: float = STC_TEMPERATURE
    ) -> float:
        """Open-circuit voltage Voc [V] (explicit diode-equation inversion)."""
        if irradiance <= 0:
            return 0.0
        iph = self.photocurrent(irradiance, cell_temperature_c)
        i0 = self.saturation_current(cell_temperature_c)
        vt = self.thermal_voltage(cell_temperature_c)
        return float(vt * np.log(iph / i0 + 1.0))

    def iv_curve(
        self,
        irradiance: float,
        cell_temperature_c: float = STC_TEMPERATURE,
        n_points: int = 200,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sampled I-V curve ``(voltages, currents)`` from 0 to Voc."""
        if n_points < 2:
            raise PVModelError("n_points must be at least 2")
        voc = self.open_circuit_voltage(irradiance, cell_temperature_c)
        if voc <= 0:
            voltages = np.linspace(0.0, 0.6, n_points)
            return voltages, np.zeros_like(voltages)
        voltages = np.linspace(0.0, voc, n_points)
        currents = self.current_at_voltage(voltages, irradiance, cell_temperature_c)
        return voltages, currents

    def maximum_power_point(
        self, irradiance: float, cell_temperature_c: float = STC_TEMPERATURE, n_points: int = 400
    ) -> tuple[float, float, float]:
        """Maximum power point ``(v_mpp, i_mpp, p_mpp)`` via dense sampling."""
        voltages, currents = self.iv_curve(irradiance, cell_temperature_c, n_points)
        powers = voltages * currents
        index = int(np.argmax(powers))
        return float(voltages[index]), float(currents[index]), float(powers[index])


def reference_cell_for_module(
    module_isc: float = 7.36, module_voc: float = 30.4, n_cells: int = 50
) -> SingleDiodeCell:
    """Build a cell whose series stack of ``n_cells`` approximates a module.

    The saturation current is calibrated so that the cell Voc at STC equals
    ``module_voc / n_cells``.
    """
    if n_cells < 1:
        raise PVModelError("n_cells must be positive")
    target_voc = module_voc / n_cells
    cell = SingleDiodeCell(photocurrent_ref=module_isc)
    vt = cell.thermal_voltage(STC_TEMPERATURE)
    saturation = module_isc / (np.exp(target_voc / vt) - 1.0)
    return SingleDiodeCell(
        photocurrent_ref=module_isc,
        saturation_current_ref=float(saturation),
        ideality_factor=cell.ideality_factor,
        series_resistance=cell.series_resistance,
        shunt_resistance=cell.shunt_resistance,
        alpha_isc_per_k=cell.alpha_isc_per_k,
    )
