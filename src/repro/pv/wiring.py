"""Wiring-overhead model (paper Section III-B2 and V-C).

A sparse placement needs longer string cabling than a compact one.  For the
series connection of consecutive modules the extra wiring is the rectilinear
(x + y) displacement between the modules' terminals minus the length of the
default connector that would be used anyway; parallel strings are combined
in a combiner box, so their overhead is neglected (as in the paper).

Knowing the cable's resistance per metre and the string current, the extra
length translates into a resistive power loss (R * I^2), a yearly energy
loss, and an installation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..constants import (
    DEFAULT_CONNECTOR_LENGTH,
    DEFAULT_WIRE_COST_PER_M,
    DEFAULT_WIRE_RESISTANCE_PER_M,
    HOURS_PER_DAY,
    DAYS_PER_YEAR,
    OVERHEAD_DUTY_FACTOR,
    OVERHEAD_REFERENCE_CURRENT,
)
from ..errors import PVModelError
from ..geometry import Point2D


@dataclass(frozen=True)
class WiringSpec:
    """Electrical and economic characteristics of the string cable."""

    resistance_per_m: float = DEFAULT_WIRE_RESISTANCE_PER_M
    cost_per_m: float = DEFAULT_WIRE_COST_PER_M
    connector_length_m: float = DEFAULT_CONNECTOR_LENGTH

    def __post_init__(self) -> None:
        if self.resistance_per_m <= 0:
            raise PVModelError("cable resistance per metre must be positive")
        if self.cost_per_m < 0:
            raise PVModelError("cable cost per metre must be non-negative")
        if self.connector_length_m < 0:
            raise PVModelError("connector length must be non-negative")


@dataclass(frozen=True)
class WiringOverheadReport:
    """Overhead of one placement's string wiring."""

    per_string_extra_m: tuple
    total_extra_m: float
    power_loss_w: float
    annual_energy_loss_wh: float
    extra_cost: float
    reference_current_a: float

    def loss_fraction_of(self, annual_production_wh: float) -> float:
        """Energy-loss fraction relative to a yearly production figure."""
        if annual_production_wh <= 0:
            raise PVModelError("annual production must be positive")
        return self.annual_energy_loss_wh / annual_production_wh


def string_extra_length(
    module_positions: Sequence[Point2D], spec: WiringSpec | None = None
) -> float:
    """Extra cable length [m] of one series string.

    Parameters
    ----------
    module_positions:
        Positions (roof-plane coordinates of the module reference corners or
        centres) of the string's modules *in series order*.
    spec:
        Wiring characteristics (for the default connector length).

    Notes
    -----
    For each consecutive pair the rectilinear displacement ``d_h + d_v`` is
    charged, minus the default connector length ``L`` (never going negative):
    a compact, abutting placement therefore has zero overhead.
    """
    wiring = spec if spec is not None else WiringSpec()
    positions = list(module_positions)
    if len(positions) < 2:
        return 0.0
    extra = 0.0
    for first, second in zip(positions[:-1], positions[1:]):
        displacement = first.manhattan_distance_to(second)
        extra += max(0.0, displacement - wiring.connector_length_m)
    return extra


def resistive_power_loss(
    extra_length_m: float, current_a: float, spec: WiringSpec | None = None
) -> float:
    """Resistive loss R*I^2 [W] of the extra cable at the given string current."""
    wiring = spec if spec is not None else WiringSpec()
    if extra_length_m < 0:
        raise PVModelError("extra cable length must be non-negative")
    if current_a < 0:
        raise PVModelError("string current must be non-negative")
    return wiring.resistance_per_m * extra_length_m * current_a**2


def annual_energy_loss_wh(
    extra_length_m: float,
    current_a: float = OVERHEAD_REFERENCE_CURRENT,
    duty_factor: float = OVERHEAD_DUTY_FACTOR,
    spec: WiringSpec | None = None,
) -> float:
    """Yearly energy dissipated in the extra cable [Wh].

    Mirrors the paper's conservative estimate: a constant string current
    (4 A, i.e. ~600 W/m^2 of irradiance) flowing for ``duty_factor`` of the
    year (50 %, accounting for the dark hours).
    """
    if not 0.0 <= duty_factor <= 1.0:
        raise PVModelError("duty factor must be in [0, 1]")
    loss_w = resistive_power_loss(extra_length_m, current_a, spec)
    return loss_w * HOURS_PER_DAY * DAYS_PER_YEAR * duty_factor


def wiring_overhead_report(
    strings_positions: Sequence[Sequence[Point2D]],
    current_a: float = OVERHEAD_REFERENCE_CURRENT,
    duty_factor: float = OVERHEAD_DUTY_FACTOR,
    spec: WiringSpec | None = None,
) -> WiringOverheadReport:
    """Full overhead assessment of a placement.

    Parameters
    ----------
    strings_positions:
        One sequence of module positions per series string (series order).
    current_a:
        String current used for the resistive-loss estimate [A].
    duty_factor:
        Fraction of the year spent at that current.
    """
    wiring = spec if spec is not None else WiringSpec()
    per_string = tuple(
        string_extra_length(positions, wiring) for positions in strings_positions
    )
    total = float(np.sum(per_string)) if per_string else 0.0
    power_loss = sum(resistive_power_loss(length, current_a, wiring) for length in per_string)
    energy_loss = sum(
        annual_energy_loss_wh(length, current_a, duty_factor, wiring) for length in per_string
    )
    return WiringOverheadReport(
        per_string_extra_m=per_string,
        total_extra_m=total,
        power_loss_w=float(power_loss),
        annual_energy_loss_wh=float(energy_loss),
        extra_cost=float(total * wiring.cost_per_m),
        reference_current_a=float(current_a),
    )
