"""Empirical PV-module electrical model (paper Section III-B1).

The paper derives, from the PV-MF165EB3 datasheet plots (Figure 3), simple
closed-form expressions of the module's maximum-power operating point as a
function of plane-of-array irradiance ``G`` and actual module temperature
``Tact``:

    Pmodule(G, Tact) = Pref * (1 + gamma_p * (Tact - 25)) * G / 1000
    Vmodule(G, Tact) = Vmpp_ref * (1 + beta_v * (Tact - 25)) * (0.875 + 0.000125 * G)
    Imodule(G, Tact) = Pmodule / Vmodule
    Tact             = T_ambient + k * G

with the maximum-power voltage taken as ~80 % of Voc and roughly independent
of irradiance (hence the weak linear G-term), and the module always assumed
to operate at its maximum power point (per-module MPPT).

The printed coefficients of the paper (0.048 and 0.34 per degC) contain an
obvious decimal slip -- they would make power and voltage negative at 25
degC -- so this implementation uses the standard per-degC coefficients that
reproduce the datasheet STC anchors exactly (see DESIGN.md, "Model
interpretation notes"); the structural form of the equations is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..constants import STC_IRRADIANCE, STC_TEMPERATURE
from ..errors import PVModelError
from .datasheet import PV_MF165EB3, ModuleDatasheet
from .thermal import CellTemperatureModel


@dataclass(frozen=True)
class OperatingPoint:
    """Maximum-power operating point of a module (arrays or scalars)."""

    power_w: np.ndarray
    voltage_v: np.ndarray
    current_a: np.ndarray
    cell_temperature_c: np.ndarray


@dataclass(frozen=True)
class EmpiricalModuleModel:
    """Closed-form module model parameterised by a datasheet.

    Attributes
    ----------
    datasheet:
        Reference STC values and temperature coefficients.
    thermal:
        Ambient-to-cell temperature model (``Tact = T + k*G`` by default).
    voltage_irradiance_slope:
        Slope of the weak linear dependence of the MPP voltage on
        irradiance; the paper's fit is ``0.875 + 0.000125*G`` which equals 1
        at STC, so the slope default is 0.000125 with intercept 0.875.
    """

    datasheet: ModuleDatasheet = PV_MF165EB3
    thermal: CellTemperatureModel = field(default_factory=CellTemperatureModel)
    voltage_irradiance_intercept: float = 0.875
    voltage_irradiance_slope: float = 0.000125

    def __post_init__(self) -> None:
        stc_factor = (
            self.voltage_irradiance_intercept + self.voltage_irradiance_slope * STC_IRRADIANCE
        )
        if not 0.95 <= stc_factor <= 1.05:
            raise PVModelError(
                "the voltage-irradiance correction must be ~1 at STC "
                f"(got {stc_factor:.3f}); check intercept/slope"
            )

    # -- cell temperature ---------------------------------------------------------

    def cell_temperature(self, irradiance: np.ndarray, ambient_c: np.ndarray) -> np.ndarray:
        """Actual module temperature Tact [degC]."""
        return self.thermal.cell_temperature(ambient_c, irradiance)

    # -- electrical quantities at a given *cell* temperature ------------------------

    def power_at_cell_temperature(
        self, irradiance: np.ndarray, cell_temperature_c: np.ndarray
    ) -> np.ndarray:
        """Maximum power [W] for given irradiance and cell temperature."""
        g = self._validated_irradiance(irradiance)
        t = np.asarray(cell_temperature_c, dtype=float)
        temperature_factor = 1.0 + self.datasheet.gamma_p_per_k * (t - STC_TEMPERATURE)
        return np.maximum(
            self.datasheet.p_max_ref * temperature_factor * g / STC_IRRADIANCE, 0.0
        )

    def voltage_at_cell_temperature(
        self, irradiance: np.ndarray, cell_temperature_c: np.ndarray
    ) -> np.ndarray:
        """Maximum-power voltage [V] for given irradiance and cell temperature."""
        g = self._validated_irradiance(irradiance)
        t = np.asarray(cell_temperature_c, dtype=float)
        temperature_factor = 1.0 + self.datasheet.beta_voc_per_k * (t - STC_TEMPERATURE)
        irradiance_factor = (
            self.voltage_irradiance_intercept + self.voltage_irradiance_slope * g
        )
        voltage = self.datasheet.v_mpp_ref * temperature_factor * irradiance_factor
        return np.where(g > 0.0, np.maximum(voltage, 0.0), 0.0)

    def current_at_cell_temperature(
        self, irradiance: np.ndarray, cell_temperature_c: np.ndarray
    ) -> np.ndarray:
        """Maximum-power current [A] = P / V (0 when the module is dark)."""
        power = self.power_at_cell_temperature(irradiance, cell_temperature_c)
        voltage = self.voltage_at_cell_temperature(irradiance, cell_temperature_c)
        with np.errstate(divide="ignore", invalid="ignore"):
            current = np.where(voltage > 1e-9, power / np.maximum(voltage, 1e-9), 0.0)
        return current

    # -- electrical quantities from ambient conditions -------------------------------

    def operating_point(
        self, irradiance: np.ndarray, ambient_c: np.ndarray
    ) -> OperatingPoint:
        """Full MPP operating point from irradiance and *ambient* temperature."""
        g = self._validated_irradiance(irradiance)
        t_cell = self.cell_temperature(g, ambient_c)
        power = self.power_at_cell_temperature(g, t_cell)
        voltage = self.voltage_at_cell_temperature(g, t_cell)
        with np.errstate(divide="ignore", invalid="ignore"):
            current = np.where(voltage > 1e-9, power / np.maximum(voltage, 1e-9), 0.0)
        return OperatingPoint(
            power_w=power, voltage_v=voltage, current_a=current, cell_temperature_c=t_cell
        )

    def power(self, irradiance: np.ndarray, ambient_c: np.ndarray) -> np.ndarray:
        """Maximum power [W] from irradiance and ambient temperature."""
        return self.operating_point(irradiance, ambient_c).power_w

    def voltage(self, irradiance: np.ndarray, ambient_c: np.ndarray) -> np.ndarray:
        """MPP voltage [V] from irradiance and ambient temperature."""
        return self.operating_point(irradiance, ambient_c).voltage_v

    def current(self, irradiance: np.ndarray, ambient_c: np.ndarray) -> np.ndarray:
        """MPP current [A] from irradiance and ambient temperature."""
        return self.operating_point(irradiance, ambient_c).current_a

    # -- datasheet-style characteristics (Figure 3 reproductions) ---------------------

    def open_circuit_voltage(
        self, irradiance: np.ndarray, cell_temperature_c: np.ndarray
    ) -> np.ndarray:
        """Open-circuit voltage Voc(G, T) [V] (linearised datasheet model)."""
        g = self._validated_irradiance(irradiance)
        t = np.asarray(cell_temperature_c, dtype=float)
        temperature_factor = 1.0 + self.datasheet.beta_voc_per_k * (t - STC_TEMPERATURE)
        irradiance_factor = (
            self.voltage_irradiance_intercept + self.voltage_irradiance_slope * g
        )
        return np.where(
            g > 0.0,
            np.maximum(self.datasheet.v_oc_ref * temperature_factor * irradiance_factor, 0.0),
            0.0,
        )

    def short_circuit_current(
        self, irradiance: np.ndarray, cell_temperature_c: np.ndarray
    ) -> np.ndarray:
        """Short-circuit current Isc(G, T) [A] (proportional to irradiance)."""
        g = self._validated_irradiance(irradiance)
        t = np.asarray(cell_temperature_c, dtype=float)
        temperature_factor = 1.0 + self.datasheet.alpha_isc_per_k * (t - STC_TEMPERATURE)
        return self.datasheet.i_sc_ref * temperature_factor * g / STC_IRRADIANCE

    def normalized_characteristics(
        self, irradiance: np.ndarray, cell_temperature_c: float = STC_TEMPERATURE
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Voc, Isc, Pmax normalised to their STC reference values.

        This reproduces the rightmost plot of the paper's Figure 3 (values
        relative to the STC anchors as a function of irradiance).
        """
        g = self._validated_irradiance(irradiance)
        t = np.full_like(np.asarray(g, dtype=float), float(cell_temperature_c))
        voc = self.open_circuit_voltage(g, t) / self.datasheet.v_oc_ref
        isc = self.short_circuit_current(g, t) / self.datasheet.i_sc_ref
        pmax = self.power_at_cell_temperature(g, t) / self.datasheet.p_max_ref
        return voc, isc, pmax

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _validated_irradiance(irradiance: np.ndarray) -> np.ndarray:
        g = np.asarray(irradiance, dtype=float)
        if np.any(g < 0):
            raise PVModelError("irradiance must be non-negative")
        return g


def paper_module_model() -> EmpiricalModuleModel:
    """The exact module model used in the paper's experiments."""
    return EmpiricalModuleModel(datasheet=PV_MF165EB3)
