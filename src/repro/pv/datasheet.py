"""PV module datasheets.

The empirical module model of the paper (Section III-B1) is anchored to the
datasheet of the Mitsubishi PV-MF165EB3 module: reference open-circuit
voltage, short-circuit current and maximum power at standard test conditions
(1000 W/m^2, 25 degC), plus the module's physical size (160 cm x 80 cm in
the paper's placement grid).  :class:`ModuleDatasheet` captures those
figures; additional common modules are provided for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import DEFAULT_GRID_PITCH
from ..errors import PVModelError


@dataclass(frozen=True)
class ModuleDatasheet:
    """Reference electrical and mechanical data of a PV module.

    All electrical values refer to standard test conditions (STC):
    1000 W/m^2 irradiance, 25 degC cell temperature, AM1.5 spectrum.

    Attributes
    ----------
    name:
        Commercial name of the module.
    p_max_ref:
        Maximum power at STC [W].
    v_oc_ref, i_sc_ref:
        Open-circuit voltage [V] and short-circuit current [A] at STC.
    v_mpp_ref, i_mpp_ref:
        Voltage [V] and current [A] at the maximum power point at STC.
    gamma_p_per_k:
        Relative power temperature coefficient [1/K] (negative).
    beta_voc_per_k:
        Relative open-circuit-voltage temperature coefficient [1/K].
    alpha_isc_per_k:
        Relative short-circuit-current temperature coefficient [1/K].
    width_m, height_m:
        Mechanical footprint of the module [m].
    n_cells:
        Number of series-connected cells inside the module.
    noct_c:
        Nominal operating cell temperature [degC].
    """

    name: str
    p_max_ref: float
    v_oc_ref: float
    i_sc_ref: float
    v_mpp_ref: float
    i_mpp_ref: float
    gamma_p_per_k: float
    beta_voc_per_k: float
    alpha_isc_per_k: float
    width_m: float
    height_m: float
    n_cells: int
    noct_c: float = 45.5

    def __post_init__(self) -> None:
        if self.p_max_ref <= 0 or self.v_oc_ref <= 0 or self.i_sc_ref <= 0:
            raise PVModelError("reference power, Voc and Isc must be positive")
        if self.v_mpp_ref <= 0 or self.i_mpp_ref <= 0:
            raise PVModelError("reference MPP voltage and current must be positive")
        if self.v_mpp_ref >= self.v_oc_ref:
            raise PVModelError("Vmpp must be smaller than Voc")
        if self.i_mpp_ref > self.i_sc_ref:
            raise PVModelError("Impp cannot exceed Isc")
        if self.width_m <= 0 or self.height_m <= 0:
            raise PVModelError("module dimensions must be positive")
        if self.n_cells < 1:
            raise PVModelError("a module has at least one cell")
        if self.gamma_p_per_k >= 0:
            raise PVModelError("the power temperature coefficient must be negative")

    @property
    def area_m2(self) -> float:
        """Module footprint area [m^2]."""
        return self.width_m * self.height_m

    @property
    def efficiency_stc(self) -> float:
        """Nominal conversion efficiency at STC (0..1)."""
        return self.p_max_ref / (1000.0 * self.area_m2)

    @property
    def fill_factor(self) -> float:
        """Fill factor Pmax / (Voc * Isc) at STC."""
        return self.p_max_ref / (self.v_oc_ref * self.i_sc_ref)

    def cells_footprint(self, grid_pitch: float = DEFAULT_GRID_PITCH) -> tuple[int, int]:
        """Module footprint in virtual-grid cells ``(k1, k2)`` (paper Section III-A).

        Raises
        ------
        PVModelError
            If the module sides are not integer multiples of the pitch.
        """
        k1 = self.width_m / grid_pitch
        k2 = self.height_m / grid_pitch
        if abs(k1 - round(k1)) > 1e-6 or abs(k2 - round(k2)) > 1e-6:
            raise PVModelError(
                f"module size {self.width_m}x{self.height_m} m is not an integer "
                f"multiple of the grid pitch {grid_pitch} m"
            )
        return int(round(k1)), int(round(k2))


#: The module used throughout the paper's experiments.
PV_MF165EB3 = ModuleDatasheet(
    name="Mitsubishi PV-MF165EB3",
    p_max_ref=165.0,
    v_oc_ref=30.4,
    i_sc_ref=7.36,
    v_mpp_ref=24.2,
    i_mpp_ref=6.83,
    gamma_p_per_k=-0.0048,
    beta_voc_per_k=-0.0034,
    alpha_isc_per_k=0.00057,
    width_m=1.60,
    height_m=0.80,
    n_cells=50,
    noct_c=45.5,
)

#: A typical modern 60-cell residential module, used in the examples.
GENERIC_300W = ModuleDatasheet(
    name="Generic 300 W mono",
    p_max_ref=300.0,
    v_oc_ref=39.9,
    i_sc_ref=9.76,
    v_mpp_ref=32.6,
    i_mpp_ref=9.21,
    gamma_p_per_k=-0.0039,
    beta_voc_per_k=-0.0029,
    alpha_isc_per_k=0.0005,
    width_m=1.60,
    height_m=1.00,
    n_cells=60,
    noct_c=44.0,
)

#: A compact high-efficiency module (small roofs, examples only).
COMPACT_200W = ModuleDatasheet(
    name="Compact 200 W",
    p_max_ref=200.0,
    v_oc_ref=24.8,
    i_sc_ref=10.5,
    v_mpp_ref=20.4,
    i_mpp_ref=9.8,
    gamma_p_per_k=-0.0035,
    beta_voc_per_k=-0.0027,
    alpha_isc_per_k=0.0005,
    width_m=1.20,
    height_m=0.80,
    n_cells=40,
    noct_c=43.0,
)

#: Registry of the bundled datasheets, keyed by a short identifier.
DATASHEETS = {
    "pv-mf165eb3": PV_MF165EB3,
    "generic-300": GENERIC_300W,
    "compact-200": COMPACT_200W,
}


def get_datasheet(key: str) -> ModuleDatasheet:
    """Look up a bundled datasheet by its short identifier."""
    try:
        return DATASHEETS[key.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(DATASHEETS))
        raise PVModelError(f"unknown module datasheet {key!r}; known: {known}") from exc
