"""Series/parallel module interconnection and panel-level power extraction.

The total power of a panel made of an ``m x n`` series-parallel
interconnection (n parallel strings of m series modules) is *not* the sum of
the module powers.  Following the paper (Section III-B1):

    Vpanel = min_j ( sum_i V_module,ij )          (strings share the bus voltage)
    Ipanel = sum_j ( min_i I_module,ij )          (a string's current is capped by
                                                   its weakest module)
    Ppanel = Vpanel * Ipanel

The "min over modules of the string current" term is the bottleneck effect
that makes the floorplanner's series-first, irradiance-uniform strings pay
off; the evaluator therefore always aggregates through this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TopologyError
from .module import EmpiricalModuleModel, paper_module_model


@dataclass(frozen=True)
class SeriesParallelTopology:
    """An ``m x n`` series/parallel interconnection.

    Attributes
    ----------
    n_series:
        Number of modules connected in series within each string (``m``).
    n_parallel:
        Number of parallel strings (``n``).

    Module ordering convention (series-first, as in the paper's algorithm):
    module ``k`` belongs to string ``k // m`` at series position ``k % m``.
    """

    n_series: int
    n_parallel: int

    def __post_init__(self) -> None:
        if self.n_series < 1 or self.n_parallel < 1:
            raise TopologyError("both m (series) and n (parallel) must be >= 1")

    @property
    def n_modules(self) -> int:
        """Total number of modules N = m * n."""
        return self.n_series * self.n_parallel

    def string_of(self, module_index: int) -> int:
        """String index of a module (series-first ordering)."""
        self._check_module_index(module_index)
        return module_index // self.n_series

    def position_in_string(self, module_index: int) -> int:
        """Series position of a module inside its string."""
        self._check_module_index(module_index)
        return module_index % self.n_series

    def modules_of_string(self, string_index: int) -> list[int]:
        """Module indices belonging to a string, in series order."""
        if not 0 <= string_index < self.n_parallel:
            raise TopologyError(
                f"string index {string_index} out of range [0, {self.n_parallel})"
            )
        start = string_index * self.n_series
        return list(range(start, start + self.n_series))

    def _check_module_index(self, module_index: int) -> None:
        if not 0 <= module_index < self.n_modules:
            raise TopologyError(
                f"module index {module_index} out of range [0, {self.n_modules})"
            )

    @classmethod
    def for_modules(cls, n_modules: int, n_series: int) -> "SeriesParallelTopology":
        """Build the topology for ``n_modules`` with strings of ``n_series``.

        Raises
        ------
        TopologyError
            If ``n_modules`` is not a multiple of ``n_series``.
        """
        if n_series < 1 or n_modules < 1:
            raise TopologyError("module counts must be positive")
        if n_modules % n_series != 0:
            raise TopologyError(
                f"{n_modules} modules cannot be arranged in strings of {n_series}"
            )
        return cls(n_series=n_series, n_parallel=n_modules // n_series)


@dataclass(frozen=True)
class PanelOperatingPoint:
    """Aggregate panel electrical state (arrays over time or scalars)."""

    voltage_v: np.ndarray
    current_a: np.ndarray
    power_w: np.ndarray
    string_currents_a: np.ndarray
    string_voltages_v: np.ndarray


@dataclass(frozen=True)
class PVArray:
    """A panel: a set of identical modules in a series/parallel topology."""

    topology: SeriesParallelTopology
    module_model: EmpiricalModuleModel = field(default_factory=paper_module_model)

    # -- aggregation from per-module electrical values --------------------------------

    def aggregate(
        self, module_voltages: np.ndarray, module_currents: np.ndarray
    ) -> PanelOperatingPoint:
        """Aggregate per-module (V, I) into the panel operating point.

        Parameters
        ----------
        module_voltages, module_currents:
            Arrays whose last axis has length ``N = m*n`` (series-first
            ordering); any leading axes (e.g. time) are preserved.
        """
        voltages = np.asarray(module_voltages, dtype=float)
        currents = np.asarray(module_currents, dtype=float)
        n = self.topology.n_modules
        if voltages.shape != currents.shape:
            raise TopologyError("module voltage and current arrays must have the same shape")
        if voltages.shape[-1] != n:
            raise TopologyError(
                f"last axis must have length N={n}, got {voltages.shape[-1]}"
            )
        new_shape = voltages.shape[:-1] + (self.topology.n_parallel, self.topology.n_series)
        v = voltages.reshape(new_shape)
        i = currents.reshape(new_shape)

        string_voltages = np.sum(v, axis=-1)
        string_currents = np.min(i, axis=-1)
        panel_voltage = np.min(string_voltages, axis=-1)
        panel_current = np.sum(string_currents, axis=-1)
        panel_power = panel_voltage * panel_current
        return PanelOperatingPoint(
            voltage_v=panel_voltage,
            current_a=panel_current,
            power_w=panel_power,
            string_currents_a=string_currents,
            string_voltages_v=string_voltages,
        )

    # -- aggregation from environmental conditions --------------------------------------

    def operating_point_from_conditions(
        self, irradiance: np.ndarray, ambient_c: np.ndarray
    ) -> PanelOperatingPoint:
        """Panel operating point from per-module irradiance and ambient temperature.

        Parameters
        ----------
        irradiance:
            Array ``(..., N)`` of plane-of-array irradiance per module [W/m^2].
        ambient_c:
            Ambient temperature, broadcastable against ``irradiance`` without
            its last axis (typically shape ``(...,)`` or a scalar).
        """
        g = np.asarray(irradiance, dtype=float)
        if g.shape[-1] != self.topology.n_modules:
            raise TopologyError(
                f"irradiance last axis must have length N={self.topology.n_modules}"
            )
        ambient = np.asarray(ambient_c, dtype=float)
        if ambient.ndim == g.ndim - 1:
            ambient = ambient[..., None]
        point = self.module_model.operating_point(g, ambient)
        return self.aggregate(point.voltage_v, point.current_a)

    def power_from_conditions(
        self, irradiance: np.ndarray, ambient_c: np.ndarray
    ) -> np.ndarray:
        """Panel power [W] from per-module irradiance and ambient temperature."""
        return self.operating_point_from_conditions(irradiance, ambient_c).power_w

    def sum_of_module_powers(
        self, irradiance: np.ndarray, ambient_c: np.ndarray
    ) -> np.ndarray:
        """Idealised power ignoring the interconnection (sum of module MPPs).

        Used by the analysis layer to quantify the *mismatch loss*, i.e. the
        gap between the ideal per-module optimum and the series/parallel
        aggregate the paper's formulas give.
        """
        g = np.asarray(irradiance, dtype=float)
        ambient = np.asarray(ambient_c, dtype=float)
        if ambient.ndim == g.ndim - 1:
            ambient = ambient[..., None]
        return np.sum(self.module_model.power(g, ambient), axis=-1)

    def mismatch_loss_fraction(
        self, irradiance: np.ndarray, ambient_c: np.ndarray
    ) -> np.ndarray:
        """Relative mismatch loss (0 = perfectly matched strings)."""
        ideal = self.sum_of_module_powers(irradiance, ambient_c)
        actual = self.power_from_conditions(irradiance, ambient_c)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(ideal > 1e-9, 1.0 - actual / np.maximum(ideal, 1e-9), 0.0)
