"""Maximum Power Point Tracking (MPPT) models.

The paper assumes "each module extracts the maximum power" thanks to MPPT
(Section II-B / III-B1).  For the energy evaluation this reduces to an
efficiency factor applied to the aggregated panel power; for completeness
(and for validating the assumption) a classic perturb-and-observe tracker
operating on an I-V curve is also provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from ..errors import PVModelError


@dataclass(frozen=True)
class MPPTModel:
    """Static MPPT efficiency model.

    Attributes
    ----------
    tracking_efficiency:
        Fraction of the theoretical maximum power actually extracted
        (modern trackers exceed 0.99).
    converter_efficiency:
        DC-DC / inverter conversion efficiency applied downstream of the
        tracker.  Set to 1.0 to study the DC side only (the paper reports
        DC energy).
    """

    tracking_efficiency: float = 1.0
    converter_efficiency: float = 1.0

    def __post_init__(self) -> None:
        for name in ("tracking_efficiency", "converter_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise PVModelError(f"{name} must be in (0, 1], got {value}")

    @property
    def overall_efficiency(self) -> float:
        """Combined tracking and conversion efficiency."""
        return self.tracking_efficiency * self.converter_efficiency

    def extracted_power(self, mpp_power_w: np.ndarray) -> np.ndarray:
        """Power delivered downstream of the MPPT stage [W]."""
        power = np.asarray(mpp_power_w, dtype=float)
        if np.any(power < 0):
            raise PVModelError("MPP power must be non-negative")
        return power * self.overall_efficiency


@dataclass(frozen=True)
class PerturbObserveResult:
    """Trace of a perturb-and-observe tracking run."""

    voltages: np.ndarray
    powers: np.ndarray
    converged_voltage: float
    converged_power: float
    n_steps: int


def perturb_and_observe(
    power_at_voltage: Callable[[float], float],
    v_start: float,
    v_min: float,
    v_max: float,
    step: float = 0.1,
    n_steps: int = 200,
) -> PerturbObserveResult:
    """Classic perturb-and-observe MPPT on a static power-voltage curve.

    Parameters
    ----------
    power_at_voltage:
        Callable returning the array/panel power at a terminal voltage.
    v_start:
        Initial operating voltage [V].
    v_min, v_max:
        Allowed voltage window [V].
    step:
        Perturbation step [V].
    n_steps:
        Number of tracking iterations.

    Returns
    -------
    PerturbObserveResult
        The visited voltages/powers and the final operating point.
    """
    if v_max <= v_min:
        raise PVModelError("v_max must exceed v_min")
    if not v_min <= v_start <= v_max:
        raise PVModelError("v_start must lie inside [v_min, v_max]")
    if step <= 0 or n_steps < 1:
        raise PVModelError("step must be positive and n_steps >= 1")

    voltages = np.empty(n_steps + 1)
    powers = np.empty(n_steps + 1)
    voltage = float(v_start)
    power = float(power_at_voltage(voltage))
    voltages[0] = voltage
    powers[0] = power
    direction = 1.0
    for k in range(1, n_steps + 1):
        candidate = float(np.clip(voltage + direction * step, v_min, v_max))
        candidate_power = float(power_at_voltage(candidate))
        if candidate_power < power:
            direction = -direction
        voltage, power = candidate, candidate_power
        voltages[k] = voltage
        powers[k] = power
    best = int(np.argmax(powers))
    return PerturbObserveResult(
        voltages=voltages,
        powers=powers,
        converged_voltage=float(voltages[best]),
        converged_power=float(powers[best]),
        n_steps=n_steps,
    )


def mppt_tracking_error(
    power_at_voltage: Callable[[float], float],
    v_min: float,
    v_max: float,
    tracked_power: float,
    n_samples: int = 500,
) -> Tuple[float, float]:
    """Quantify how close a tracked power is to the true curve maximum.

    Returns ``(true_maximum, relative_error)``.
    """
    if n_samples < 2:
        raise PVModelError("n_samples must be at least 2")
    voltages = np.linspace(v_min, v_max, n_samples)
    powers = np.array([power_at_voltage(float(v)) for v in voltages])
    true_max = float(np.max(powers))
    if true_max <= 0:
        return 0.0, 0.0
    return true_max, abs(true_max - tracked_power) / true_max
