"""PV electrical substrate: cells, modules, arrays, MPPT, thermal, wiring."""

from .array import PanelOperatingPoint, PVArray, SeriesParallelTopology
from .cell import SingleDiodeCell, reference_cell_for_module
from .datasheet import (
    COMPACT_200W,
    DATASHEETS,
    GENERIC_300W,
    PV_MF165EB3,
    ModuleDatasheet,
    get_datasheet,
)
from .module import EmpiricalModuleModel, OperatingPoint, paper_module_model
from .mppt import MPPTModel, PerturbObserveResult, mppt_tracking_error, perturb_and_observe
from .thermal import CellTemperatureModel, NOCTTemperatureModel, temperature_rise_at_stc
from .wiring import (
    WiringOverheadReport,
    WiringSpec,
    annual_energy_loss_wh,
    resistive_power_loss,
    string_extra_length,
    wiring_overhead_report,
)

__all__ = [
    "PanelOperatingPoint",
    "PVArray",
    "SeriesParallelTopology",
    "SingleDiodeCell",
    "reference_cell_for_module",
    "COMPACT_200W",
    "DATASHEETS",
    "GENERIC_300W",
    "PV_MF165EB3",
    "ModuleDatasheet",
    "get_datasheet",
    "EmpiricalModuleModel",
    "OperatingPoint",
    "paper_module_model",
    "MPPTModel",
    "PerturbObserveResult",
    "mppt_tracking_error",
    "perturb_and_observe",
    "CellTemperatureModel",
    "NOCTTemperatureModel",
    "temperature_rise_at_stc",
    "WiringOverheadReport",
    "WiringSpec",
    "annual_energy_loss_wh",
    "resistive_power_loss",
    "string_extra_length",
    "wiring_overhead_report",
]
