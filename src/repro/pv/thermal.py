"""Module thermal model.

The paper corrects the ambient temperature with an irradiance-dependent term
(Section III-B1, step 3): the actual module temperature is

    Tact = T + k * G,    k = alpha / h_c

where ``alpha`` is the absorptivity of the roof and ``h_c`` a combined
convective and radiative heat-exchange coefficient (15 W/(K m^2), refs
[12][13]).  The classical NOCT model is provided as an alternative for
cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    DEFAULT_HEAT_EXCHANGE_COEFFICIENT,
    DEFAULT_ROOF_ABSORPTIVITY,
    STC_IRRADIANCE,
)
from ..errors import PVModelError


@dataclass(frozen=True)
class CellTemperatureModel:
    """Irradiance-driven cell/module temperature model (paper formulation)."""

    absorptivity: float = DEFAULT_ROOF_ABSORPTIVITY
    heat_exchange_coefficient: float = DEFAULT_HEAT_EXCHANGE_COEFFICIENT

    def __post_init__(self) -> None:
        if not 0.0 < self.absorptivity <= 1.0:
            raise PVModelError("absorptivity must be in (0, 1]")
        if self.heat_exchange_coefficient <= 0:
            raise PVModelError("heat exchange coefficient must be positive")

    @property
    def k(self) -> float:
        """The ratio k = alpha / h_c [K m^2 / W]."""
        return self.absorptivity / self.heat_exchange_coefficient

    def cell_temperature(self, ambient_c: np.ndarray, irradiance: np.ndarray) -> np.ndarray:
        """Actual module temperature Tact = T + k*G [degC]."""
        ambient = np.asarray(ambient_c, dtype=float)
        g = np.asarray(irradiance, dtype=float)
        if np.any(g < 0):
            raise PVModelError("irradiance must be non-negative")
        return ambient + self.k * g


@dataclass(frozen=True)
class NOCTTemperatureModel:
    """Nominal-operating-cell-temperature model (industry alternative).

    ``Tcell = Tamb + (NOCT - 20) * G / 800``.
    """

    noct_c: float = 45.5

    def __post_init__(self) -> None:
        if not 20.0 < self.noct_c < 90.0:
            raise PVModelError("NOCT must be within (20, 90) degC")

    def cell_temperature(self, ambient_c: np.ndarray, irradiance: np.ndarray) -> np.ndarray:
        """Cell temperature under the NOCT linear model [degC]."""
        ambient = np.asarray(ambient_c, dtype=float)
        g = np.asarray(irradiance, dtype=float)
        if np.any(g < 0):
            raise PVModelError("irradiance must be non-negative")
        return ambient + (self.noct_c - 20.0) * g / 800.0


def temperature_rise_at_stc(model: CellTemperatureModel) -> float:
    """Module temperature rise above ambient at STC irradiance [K]."""
    return model.k * STC_IRRADIANCE
