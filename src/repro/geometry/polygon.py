"""Simple polygon type with the operations the GIS layer needs.

Implements the small subset of computational geometry the reproduction
requires instead of depending on ``shapely``:

* signed area / centroid / perimeter,
* point-in-polygon (ray casting),
* axis-aligned bounding boxes,
* convex clipping (Sutherland-Hodgman) against rectangles,
* rasterisation onto a regular grid (cell-centre sampling).

Polygons are simple (non self-intersecting) rings described by their vertex
list; the ring is implicitly closed (the last vertex connects back to the
first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .point import Point2D


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        """Area of the box."""
        return self.width * self.height

    def contains_point(self, point: Point2D) -> bool:
        """True when the point lies inside or on the boundary of the box."""
        return self.xmin <= point.x <= self.xmax and self.ymin <= point.y <= self.ymax

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two boxes overlap (boundary touch counts)."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        return BoundingBox(
            self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin
        )


class Polygon:
    """A simple polygon in the local metric plane."""

    def __init__(self, vertices: Sequence[Point2D | Tuple[float, float]]):
        points: List[Point2D] = []
        for vertex in vertices:
            if isinstance(vertex, Point2D):
                points.append(vertex)
            else:
                points.append(Point2D(float(vertex[0]), float(vertex[1])))
        # Drop an explicit closing vertex if the caller provided one.
        if len(points) > 1 and points[0] == points[-1]:
            points = points[:-1]
        if len(points) < 3:
            raise GeometryError(
                f"a polygon needs at least 3 distinct vertices, got {len(points)}"
            )
        self._vertices: Tuple[Point2D, ...] = tuple(points)

    # -- basic accessors ---------------------------------------------------

    @property
    def vertices(self) -> Tuple[Point2D, ...]:
        """The polygon vertices as an (open) ring."""
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Polygon({len(self._vertices)} vertices, area={self.area():.3f})"

    @classmethod
    def rectangle(cls, xmin: float, ymin: float, xmax: float, ymax: float) -> "Polygon":
        """Build an axis-aligned rectangle from its corner coordinates."""
        if xmax <= xmin or ymax <= ymin:
            raise GeometryError("rectangle requires xmax > xmin and ymax > ymin")
        return cls(
            [
                Point2D(xmin, ymin),
                Point2D(xmax, ymin),
                Point2D(xmax, ymax),
                Point2D(xmin, ymax),
            ]
        )

    @classmethod
    def regular(cls, centre: Point2D, radius: float, sides: int) -> "Polygon":
        """Build a regular polygon with ``sides`` vertices around ``centre``."""
        if sides < 3:
            raise GeometryError("a regular polygon needs at least 3 sides")
        if radius <= 0:
            raise GeometryError("radius must be positive")
        vertices = [
            Point2D(
                centre.x + radius * math.cos(2 * math.pi * k / sides),
                centre.y + radius * math.sin(2 * math.pi * k / sides),
            )
            for k in range(sides)
        ]
        return cls(vertices)

    # -- metric properties -------------------------------------------------

    def signed_area(self) -> float:
        """Shoelace signed area (positive for counter-clockwise rings)."""
        total = 0.0
        n = len(self._vertices)
        for i in range(n):
            a = self._vertices[i]
            b = self._vertices[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return 0.5 * total

    def area(self) -> float:
        """Unsigned polygon area in square metres."""
        return abs(self.signed_area())

    def perimeter(self) -> float:
        """Total length of the polygon boundary."""
        n = len(self._vertices)
        return sum(
            self._vertices[i].distance_to(self._vertices[(i + 1) % n]) for i in range(n)
        )

    def centroid(self) -> Point2D:
        """Area centroid of the polygon."""
        signed = self.signed_area()
        if abs(signed) < 1e-12:
            # Degenerate ring: fall back to the vertex average.
            xs = sum(v.x for v in self._vertices) / len(self._vertices)
            ys = sum(v.y for v in self._vertices) / len(self._vertices)
            return Point2D(xs, ys)
        cx = 0.0
        cy = 0.0
        n = len(self._vertices)
        for i in range(n):
            a = self._vertices[i]
            b = self._vertices[(i + 1) % n]
            cross = a.x * b.y - b.x * a.y
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Point2D(cx * factor, cy * factor)

    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of the polygon."""
        xs = [v.x for v in self._vertices]
        ys = [v.y for v in self._vertices]
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    def is_counter_clockwise(self) -> bool:
        """True when the vertex ring is ordered counter-clockwise."""
        return self.signed_area() > 0.0

    def reversed(self) -> "Polygon":
        """Return a copy with the opposite vertex orientation."""
        return Polygon(tuple(reversed(self._vertices)))

    # -- predicates ---------------------------------------------------------

    def contains_point(self, point: Point2D, include_boundary: bool = True) -> bool:
        """Ray-casting point-in-polygon test.

        Parameters
        ----------
        point:
            Query point.
        include_boundary:
            When True (default) points lying exactly on an edge count as
            inside.
        """
        x, y = point.x, point.y
        n = len(self._vertices)
        inside = False
        for i in range(n):
            a = self._vertices[i]
            b = self._vertices[(i + 1) % n]
            if _point_on_segment(point, a, b):
                return include_boundary
            intersects = (a.y > y) != (b.y > y)
            if intersects:
                x_cross = a.x + (y - a.y) * (b.x - a.x) / (b.y - a.y)
                if x < x_cross:
                    inside = not inside
        return inside

    def translated(self, dx: float, dy: float) -> "Polygon":
        """Return a copy translated by ``(dx, dy)``."""
        return Polygon([v.translated(dx, dy) for v in self._vertices])

    def scaled(self, factor: float, about: Point2D | None = None) -> "Polygon":
        """Return a copy scaled by ``factor`` about ``about`` (default centroid)."""
        if factor <= 0:
            raise GeometryError("scale factor must be positive")
        origin = about if about is not None else self.centroid()
        return Polygon(
            [
                Point2D(
                    origin.x + (v.x - origin.x) * factor,
                    origin.y + (v.y - origin.y) * factor,
                )
                for v in self._vertices
            ]
        )

    def rotated(self, angle_rad: float, about: Point2D | None = None) -> "Polygon":
        """Return a copy rotated counter-clockwise by ``angle_rad``."""
        origin = about if about is not None else self.centroid()
        return Polygon([v.rotated(angle_rad, origin) for v in self._vertices])

    # -- clipping ------------------------------------------------------------

    def clip_to_box(self, box: BoundingBox) -> "Polygon | None":
        """Clip the polygon to an axis-aligned box (Sutherland-Hodgman).

        Returns ``None`` when the intersection is empty or degenerate.
        The algorithm is exact for convex clip windows, which is all the GIS
        layer needs (roof extents and grid cells are rectangles).
        """
        edges = (
            lambda p: p.x >= box.xmin,
            lambda p: p.x <= box.xmax,
            lambda p: p.y >= box.ymin,
            lambda p: p.y <= box.ymax,
        )
        intersectors = (
            lambda a, b: _intersect_vertical(a, b, box.xmin),
            lambda a, b: _intersect_vertical(a, b, box.xmax),
            lambda a, b: _intersect_horizontal(a, b, box.ymin),
            lambda a, b: _intersect_horizontal(a, b, box.ymax),
        )
        ring: List[Point2D] = list(self._vertices)
        for inside, intersect in zip(edges, intersectors):
            if not ring:
                return None
            output: List[Point2D] = []
            n = len(ring)
            for i in range(n):
                current = ring[i]
                previous = ring[i - 1]
                if inside(current):
                    if not inside(previous):
                        output.append(intersect(previous, current))
                    output.append(current)
                elif inside(previous):
                    output.append(intersect(previous, current))
            ring = output
        if len(ring) < 3:
            return None
        clipped = Polygon(ring)
        if clipped.area() < 1e-12:
            return None
        return clipped

    # -- rasterisation -------------------------------------------------------

    def rasterize(
        self,
        origin: Point2D,
        pitch: float,
        n_cols: int,
        n_rows: int,
        mode: str = "center",
    ) -> np.ndarray:
        """Rasterise the polygon onto a regular grid.

        Parameters
        ----------
        origin:
            World coordinates of the lower-left corner of cell ``(row=0, col=0)``.
        pitch:
            Cell side length in metres.
        n_cols, n_rows:
            Grid dimensions.
        mode:
            ``"center"`` marks a cell when its centre falls inside the
            polygon; ``"touch"`` marks a cell when any of its four corners or
            its centre falls inside.

        Returns
        -------
        numpy.ndarray
            Boolean array of shape ``(n_rows, n_cols)`` with ``True`` for
            covered cells.  Row 0 is the southernmost (lowest-y) row.
        """
        if pitch <= 0:
            raise GeometryError("raster pitch must be positive")
        if mode not in ("center", "touch"):
            raise GeometryError(f"unknown rasterisation mode: {mode!r}")
        mask = np.zeros((n_rows, n_cols), dtype=bool)
        bbox = self.bounding_box()
        col_lo = max(0, int(math.floor((bbox.xmin - origin.x) / pitch)) - 1)
        col_hi = min(n_cols, int(math.ceil((bbox.xmax - origin.x) / pitch)) + 1)
        row_lo = max(0, int(math.floor((bbox.ymin - origin.y) / pitch)) - 1)
        row_hi = min(n_rows, int(math.ceil((bbox.ymax - origin.y) / pitch)) + 1)
        for row in range(row_lo, row_hi):
            for col in range(col_lo, col_hi):
                x0 = origin.x + col * pitch
                y0 = origin.y + row * pitch
                centre = Point2D(x0 + pitch / 2.0, y0 + pitch / 2.0)
                if mode == "center":
                    covered = self.contains_point(centre)
                else:
                    corners = (
                        centre,
                        Point2D(x0, y0),
                        Point2D(x0 + pitch, y0),
                        Point2D(x0, y0 + pitch),
                        Point2D(x0 + pitch, y0 + pitch),
                    )
                    covered = any(self.contains_point(p) for p in corners)
                if covered:
                    mask[row, col] = True
        return mask


def _point_on_segment(p: Point2D, a: Point2D, b: Point2D, tol: float = 1e-9) -> bool:
    """True when ``p`` lies on the segment ``a``-``b`` within tolerance."""
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > tol * max(1.0, a.distance_to(b)):
        return False
    dot = (p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)
    if dot < -tol:
        return False
    squared_len = (b.x - a.x) ** 2 + (b.y - a.y) ** 2
    return dot <= squared_len + tol


def _intersect_vertical(a: Point2D, b: Point2D, x: float) -> Point2D:
    """Intersection of segment ``a``-``b`` with the vertical line ``X = x``."""
    t = (x - a.x) / (b.x - a.x)
    return Point2D(x, a.y + t * (b.y - a.y))


def _intersect_horizontal(a: Point2D, b: Point2D, y: float) -> Point2D:
    """Intersection of segment ``a``-``b`` with the horizontal line ``Y = y``."""
    t = (y - a.y) / (b.y - a.y)
    return Point2D(a.x + t * (b.x - a.x), y)


def union_bounding_box(polygons: Iterable[Polygon]) -> BoundingBox:
    """Bounding box enclosing every polygon in ``polygons``.

    Raises
    ------
    GeometryError
        If the iterable is empty.
    """
    boxes = [p.bounding_box() for p in polygons]
    if not boxes:
        raise GeometryError("cannot compute the bounding box of zero polygons")
    return BoundingBox(
        min(b.xmin for b in boxes),
        min(b.ymin for b in boxes),
        max(b.xmax for b in boxes),
        max(b.ymax for b in boxes),
    )
