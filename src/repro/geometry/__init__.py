"""Geometry kernel: points, polygons, rasters, and coordinate frames.

This subpackage replaces the subset of ``shapely`` / ``rasterio``
functionality the reproduction needs, implemented on top of numpy.
"""

from .point import Point2D, Point3D
from .polygon import BoundingBox, Polygon, union_bounding_box
from .raster import Raster, RasterSpec
from .transform import AffineTransform2D, RoofPlaneFrame

__all__ = [
    "Point2D",
    "Point3D",
    "BoundingBox",
    "Polygon",
    "union_bounding_box",
    "Raster",
    "RasterSpec",
    "AffineTransform2D",
    "RoofPlaneFrame",
]
