"""2D/3D point and vector primitives.

These light-weight immutable value types replace the subset of ``shapely``
geometry the reproduction needs.  They are deliberately simple: plain
dataclasses with the handful of operations (distance, arithmetic, rotation)
used by the GIS and floorplanning layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point2D:
    """A point (or free vector) in the local metric plane.

    Coordinates are expressed in metres in a local east/north frame unless
    stated otherwise by the caller.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        """Return the coordinates as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def distance_to(self, other: "Point2D") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point2D") -> float:
        """L1 (rectilinear) distance to another point.

        The wiring-overhead model of the paper routes cables along the x/y
        directions, so rectilinear distance is the relevant metric there.
        """
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point2D":
        """Return a copy translated by ``(dx, dy)``."""
        return Point2D(self.x + dx, self.y + dy)

    def scaled(self, factor: float) -> "Point2D":
        """Return a copy with both coordinates multiplied by ``factor``."""
        return Point2D(self.x * factor, self.y * factor)

    def rotated(self, angle_rad: float, about: "Point2D | None" = None) -> "Point2D":
        """Return a copy rotated counter-clockwise by ``angle_rad``.

        Parameters
        ----------
        angle_rad:
            Rotation angle in radians.
        about:
            Centre of rotation; the origin when omitted.
        """
        cx, cy = (about.x, about.y) if about is not None else (0.0, 0.0)
        cos_a = math.cos(angle_rad)
        sin_a = math.sin(angle_rad)
        dx = self.x - cx
        dy = self.y - cy
        return Point2D(cx + dx * cos_a - dy * sin_a, cy + dx * sin_a + dy * cos_a)

    def __add__(self, other: "Point2D") -> "Point2D":
        return Point2D(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point2D") -> "Point2D":
        return Point2D(self.x - other.x, self.y - other.y)

    def __mul__(self, factor: float) -> "Point2D":
        return self.scaled(float(factor))

    __rmul__ = __mul__

    def dot(self, other: "Point2D") -> float:
        """Dot product, treating both points as free vectors."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point2D") -> float:
        """Z component of the cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of the vector from the origin to this point."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point2D":
        """Return the unit vector pointing in the same direction.

        Raises
        ------
        ZeroDivisionError
            If the vector has zero length.
        """
        length = self.norm()
        if length == 0.0:
            raise ZeroDivisionError("cannot normalise a zero-length vector")
        return Point2D(self.x / length, self.y / length)


@dataclass(frozen=True, order=True)
class Point3D:
    """A point in 3D space (east, north, elevation), in metres."""

    x: float
    y: float
    z: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return the coordinates as a plain ``(x, y, z)`` tuple."""
        return (self.x, self.y, self.z)

    def distance_to(self, other: "Point3D") -> float:
        """Euclidean distance to another 3D point."""
        return math.sqrt(
            (self.x - other.x) ** 2 + (self.y - other.y) ** 2 + (self.z - other.z) ** 2
        )

    def horizontal(self) -> Point2D:
        """Project onto the horizontal plane, dropping the elevation."""
        return Point2D(self.x, self.y)

    def __add__(self, other: "Point3D") -> "Point3D":
        return Point3D(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Point3D") -> "Point3D":
        return Point3D(self.x - other.x, self.y - other.y, self.z - other.z)

    def dot(self, other: "Point3D") -> float:
        """Dot product, treating both points as free vectors."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Point3D") -> "Point3D":
        """Vector cross product."""
        return Point3D(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length of the vector from the origin to this point."""
        return math.sqrt(self.x * self.x + self.y * self.y + self.z * self.z)

    def normalized(self) -> "Point3D":
        """Return the unit vector pointing in the same direction."""
        length = self.norm()
        if length == 0.0:
            raise ZeroDivisionError("cannot normalise a zero-length vector")
        return Point3D(self.x / length, self.y / length, self.z / length)
