"""Regular raster grids with a world transform.

A :class:`Raster` couples a 2D numpy array of cell values with the affine
information needed to map between array indices and world coordinates:
origin of the lower-left corner, cell pitch, and (implicitly) axis-aligned
orientation.  This is the minimal replacement for the rasterio/geopandas
raster handling used by GIS tooling, and it is what the Digital Surface
Model, shadow maps, and irradiance maps are built on.

Index convention
----------------
``data[row, col]`` where ``row`` grows northwards (towards +y) and ``col``
grows eastwards (towards +x).  ``row = 0`` is the southernmost row.  World
coordinates of the *centre* of cell ``(row, col)`` are::

    x = origin_x + (col + 0.5) * pitch
    y = origin_y + (row + 0.5) * pitch
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import GeometryError
from .point import Point2D
from .polygon import BoundingBox, Polygon


@dataclass(frozen=True)
class RasterSpec:
    """Geometric description of a raster grid (no cell values)."""

    origin_x: float
    origin_y: float
    pitch: float
    n_rows: int
    n_cols: int

    def __post_init__(self) -> None:
        if self.pitch <= 0:
            raise GeometryError("raster pitch must be positive")
        if self.n_rows <= 0 or self.n_cols <= 0:
            raise GeometryError("raster dimensions must be positive")

    @property
    def shape(self) -> Tuple[int, int]:
        """Array shape ``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def width(self) -> float:
        """East-west extent in metres."""
        return self.n_cols * self.pitch

    @property
    def height(self) -> float:
        """North-south extent in metres."""
        return self.n_rows * self.pitch

    def bounding_box(self) -> BoundingBox:
        """World-coordinate bounding box covered by the raster."""
        return BoundingBox(
            self.origin_x,
            self.origin_y,
            self.origin_x + self.width,
            self.origin_y + self.height,
        )

    def cell_center(self, row: int, col: int) -> Point2D:
        """World coordinates of the centre of cell ``(row, col)``."""
        self._check_index(row, col)
        return Point2D(
            self.origin_x + (col + 0.5) * self.pitch,
            self.origin_y + (row + 0.5) * self.pitch,
        )

    def cell_origin(self, row: int, col: int) -> Point2D:
        """World coordinates of the lower-left corner of cell ``(row, col)``."""
        self._check_index(row, col)
        return Point2D(self.origin_x + col * self.pitch, self.origin_y + row * self.pitch)

    def index_of(self, point: Point2D) -> Tuple[int, int]:
        """Return the ``(row, col)`` of the cell containing ``point``.

        Raises
        ------
        GeometryError
            If the point falls outside the raster extent.
        """
        col = int(np.floor((point.x - self.origin_x) / self.pitch))
        row = int(np.floor((point.y - self.origin_y) / self.pitch))
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise GeometryError(
                f"point ({point.x:.3f}, {point.y:.3f}) is outside the raster extent"
            )
        return row, col

    def contains(self, point: Point2D) -> bool:
        """True when ``point`` lies inside the raster extent."""
        box = self.bounding_box()
        return box.contains_point(point) and point.x < box.xmax and point.y < box.ymax

    def iter_cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(row, col)`` index pairs, row-major."""
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                yield row, col

    def _check_index(self, row: int, col: int) -> None:
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise GeometryError(
                f"cell index ({row}, {col}) outside raster of shape {self.shape}"
            )


class Raster:
    """A 2D array of values with world-coordinate georeferencing."""

    def __init__(self, spec: RasterSpec, data: np.ndarray | None = None, fill: float = 0.0):
        self._spec = spec
        if data is None:
            self._data = np.full(spec.shape, fill, dtype=float)
        else:
            array = np.asarray(data, dtype=float)
            if array.shape != spec.shape:
                raise GeometryError(
                    f"data shape {array.shape} does not match raster spec shape {spec.shape}"
                )
            self._data = array.copy()

    # -- accessors -----------------------------------------------------------

    @property
    def spec(self) -> RasterSpec:
        """Geometric description of the grid."""
        return self._spec

    @property
    def data(self) -> np.ndarray:
        """The underlying 2D value array (mutable view)."""
        return self._data

    @property
    def pitch(self) -> float:
        """Cell side length in metres."""
        return self._spec.pitch

    @property
    def shape(self) -> Tuple[int, int]:
        """Array shape ``(n_rows, n_cols)``."""
        return self._spec.shape

    def copy(self) -> "Raster":
        """Deep copy of spec and data."""
        return Raster(self._spec, self._data.copy())

    def value_at(self, point: Point2D) -> float:
        """Value of the cell containing ``point``."""
        row, col = self._spec.index_of(point)
        return float(self._data[row, col])

    def sample_bilinear(self, point: Point2D) -> float:
        """Bilinearly interpolated value at ``point``.

        Uses cell centres as interpolation nodes and clamps at the raster
        border (nearest-neighbour extrapolation outside the centre lattice).
        """
        fx = (point.x - self._spec.origin_x) / self._spec.pitch - 0.5
        fy = (point.y - self._spec.origin_y) / self._spec.pitch - 0.5
        col0 = int(np.floor(fx))
        row0 = int(np.floor(fy))
        tx = fx - col0
        ty = fy - row0
        col0c = int(np.clip(col0, 0, self._spec.n_cols - 1))
        col1c = int(np.clip(col0 + 1, 0, self._spec.n_cols - 1))
        row0c = int(np.clip(row0, 0, self._spec.n_rows - 1))
        row1c = int(np.clip(row0 + 1, 0, self._spec.n_rows - 1))
        v00 = self._data[row0c, col0c]
        v01 = self._data[row0c, col1c]
        v10 = self._data[row1c, col0c]
        v11 = self._data[row1c, col1c]
        top = v00 * (1 - tx) + v01 * tx
        bottom = v10 * (1 - tx) + v11 * tx
        return float(top * (1 - ty) + bottom * ty)

    # -- transformations -----------------------------------------------------

    def resampled(self, new_pitch: float) -> "Raster":
        """Return a copy resampled to a different pitch (bilinear).

        The output covers the same world extent; the number of rows/columns
        is rounded to fully cover it.
        """
        if new_pitch <= 0:
            raise GeometryError("new pitch must be positive")
        n_cols = max(1, int(np.ceil(self._spec.width / new_pitch)))
        n_rows = max(1, int(np.ceil(self._spec.height / new_pitch)))
        new_spec = RasterSpec(
            self._spec.origin_x, self._spec.origin_y, new_pitch, n_rows, n_cols
        )
        out = Raster(new_spec)
        for row in range(n_rows):
            for col in range(n_cols):
                centre = new_spec.cell_center(row, col)
                x_max = self._spec.origin_x + self._spec.width - 1e-9
                y_max = self._spec.origin_y + self._spec.height - 1e-9
                clamped = Point2D(
                    min(max(centre.x, self._spec.origin_x), x_max),
                    min(max(centre.y, self._spec.origin_y), y_max),
                )
                out.data[row, col] = self.sample_bilinear(clamped)
        return out

    def mask_from_polygon(self, polygon: Polygon, mode: str = "center") -> np.ndarray:
        """Boolean mask of the cells covered by ``polygon``."""
        return polygon.rasterize(
            Point2D(self._spec.origin_x, self._spec.origin_y),
            self._spec.pitch,
            self._spec.n_cols,
            self._spec.n_rows,
            mode=mode,
        )

    def window(self, row0: int, col0: int, n_rows: int, n_cols: int) -> "Raster":
        """Extract a rectangular sub-raster (copies data)."""
        if (
            row0 < 0
            or col0 < 0
            or row0 + n_rows > self._spec.n_rows
            or col0 + n_cols > self._spec.n_cols
        ):
            raise GeometryError("window exceeds raster bounds")
        sub_spec = RasterSpec(
            self._spec.origin_x + col0 * self._spec.pitch,
            self._spec.origin_y + row0 * self._spec.pitch,
            self._spec.pitch,
            n_rows,
            n_cols,
        )
        return Raster(sub_spec, self._data[row0 : row0 + n_rows, col0 : col0 + n_cols])

    # -- statistics ------------------------------------------------------------

    def min(self) -> float:
        """Minimum cell value."""
        return float(np.min(self._data))

    def max(self) -> float:
        """Maximum cell value."""
        return float(np.max(self._data))

    def mean(self) -> float:
        """Mean cell value."""
        return float(np.mean(self._data))

    def percentile(self, q: float) -> float:
        """q-th percentile of the cell values."""
        return float(np.percentile(self._data, q))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Raster(shape={self.shape}, pitch={self.pitch}, "
            f"min={self.min():.3f}, max={self.max():.3f})"
        )
