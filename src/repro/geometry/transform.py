"""Planar affine transforms and roof-plane coordinate frames.

Two coordinate frames appear throughout the reproduction:

* the *world* frame: a local metric east/north/up frame anchored near the
  building (what the DSM is expressed in);
* the *roof* frame: a 2D frame lying in the inclined roof plane, with the
  u axis running along the eave (horizontal) and the v axis running up the
  slope.  The virtual placement grid of the paper lives in this frame, so
  that module sizes and the 20 cm pitch are true lengths *on the roof
  surface*, not their horizontal projections.

:class:`AffineTransform2D` is a small general-purpose 2D affine matrix;
:class:`RoofPlaneFrame` maps between roof (u, v) coordinates and world
(x, y, z) coordinates given the roof origin, azimuth, and tilt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..constants import DEG2RAD
from ..errors import GeometryError
from .point import Point2D, Point3D


@dataclass(frozen=True)
class AffineTransform2D:
    """2D affine transform ``p' = A p + t`` stored as the six coefficients.

    The transform maps ``(x, y)`` to ``(a*x + b*y + tx, c*x + d*y + ty)``.
    """

    a: float
    b: float
    c: float
    d: float
    tx: float
    ty: float

    @classmethod
    def identity(cls) -> "AffineTransform2D":
        """The identity transform."""
        return cls(1.0, 0.0, 0.0, 1.0, 0.0, 0.0)

    @classmethod
    def translation(cls, dx: float, dy: float) -> "AffineTransform2D":
        """Pure translation by ``(dx, dy)``."""
        return cls(1.0, 0.0, 0.0, 1.0, dx, dy)

    @classmethod
    def rotation(cls, angle_rad: float) -> "AffineTransform2D":
        """Counter-clockwise rotation about the origin."""
        cos_a = math.cos(angle_rad)
        sin_a = math.sin(angle_rad)
        return cls(cos_a, -sin_a, sin_a, cos_a, 0.0, 0.0)

    @classmethod
    def scaling(cls, sx: float, sy: float | None = None) -> "AffineTransform2D":
        """Axis-aligned scaling (isotropic when ``sy`` is omitted)."""
        if sy is None:
            sy = sx
        if sx == 0 or sy == 0:
            raise GeometryError("scale factors must be non-zero")
        return cls(sx, 0.0, 0.0, sy, 0.0, 0.0)

    def apply(self, point: Point2D) -> Point2D:
        """Apply the transform to a point."""
        return Point2D(
            self.a * point.x + self.b * point.y + self.tx,
            self.c * point.x + self.d * point.y + self.ty,
        )

    def compose(self, other: "AffineTransform2D") -> "AffineTransform2D":
        """Return the transform equivalent to applying ``other`` then ``self``."""
        return AffineTransform2D(
            self.a * other.a + self.b * other.c,
            self.a * other.b + self.b * other.d,
            self.c * other.a + self.d * other.c,
            self.c * other.b + self.d * other.d,
            self.a * other.tx + self.b * other.ty + self.tx,
            self.c * other.tx + self.d * other.ty + self.ty,
        )

    def determinant(self) -> float:
        """Determinant of the linear part."""
        return self.a * self.d - self.b * self.c

    def inverse(self) -> "AffineTransform2D":
        """Inverse transform.

        Raises
        ------
        GeometryError
            If the transform is singular.
        """
        det = self.determinant()
        if abs(det) < 1e-15:
            raise GeometryError("cannot invert a singular affine transform")
        ia = self.d / det
        ib = -self.b / det
        ic = -self.c / det
        id_ = self.a / det
        itx = -(ia * self.tx + ib * self.ty)
        ity = -(ic * self.tx + id_ * self.ty)
        return AffineTransform2D(ia, ib, ic, id_, itx, ity)

    def as_matrix(self) -> np.ndarray:
        """Return the transform as a 3x3 homogeneous matrix."""
        return np.array(
            [[self.a, self.b, self.tx], [self.c, self.d, self.ty], [0.0, 0.0, 1.0]]
        )


@dataclass(frozen=True)
class RoofPlaneFrame:
    """Coordinate frame of an inclined planar roof facet.

    Parameters
    ----------
    origin:
        World coordinates (x, y, z) of the roof-frame origin, typically the
        south-western corner of the facet at eave height.
    azimuth_deg:
        Direction the roof *faces* (the downhill direction of the outward
        normal projected on the horizontal plane).  Convention: 0 deg =
        south, positive towards west, negative towards east.
    tilt_deg:
        Inclination of the roof plane with respect to horizontal, in
        degrees.  0 = flat, 90 = vertical.
    """

    origin: Point3D
    azimuth_deg: float
    tilt_deg: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.tilt_deg < 90.0:
            raise GeometryError("roof tilt must be in [0, 90) degrees")

    # The roof u axis runs along the eave (horizontal, to the "right" when
    # looking at the facade), the v axis runs up the slope.

    def _axes(self) -> Tuple[Point3D, Point3D, Point3D]:
        """Unit vectors (u, v, n) of the roof frame expressed in world axes."""
        az = self.azimuth_deg * DEG2RAD
        tilt = self.tilt_deg * DEG2RAD
        # Horizontal downhill direction (pointing away from the ridge):
        # azimuth 0 -> south (0, -1, 0); positive azimuth rotates towards west.
        downhill = Point3D(-math.sin(az), -math.cos(az), 0.0)
        # Eave (u) axis: horizontal, perpendicular to downhill: rotate +90 deg.
        u_axis = Point3D(-downhill.y, downhill.x, 0.0)
        # Up-slope (v) axis: opposite of downhill, raised by the tilt.
        v_axis = Point3D(
            -downhill.x * math.cos(tilt), -downhill.y * math.cos(tilt), math.sin(tilt)
        )
        normal = u_axis.cross(v_axis)
        return u_axis, v_axis, normal

    @property
    def normal(self) -> Point3D:
        """Outward unit normal of the roof plane (world frame)."""
        return self._axes()[2].normalized()

    def roof_to_world(self, point: Point2D) -> Point3D:
        """Map roof-plane coordinates ``(u, v)`` to world ``(x, y, z)``."""
        u_axis, v_axis, _ = self._axes()
        return Point3D(
            self.origin.x + point.x * u_axis.x + point.y * v_axis.x,
            self.origin.y + point.x * u_axis.y + point.y * v_axis.y,
            self.origin.z + point.x * u_axis.z + point.y * v_axis.z,
        )

    def world_to_roof(self, point: Point3D) -> Point2D:
        """Project world coordinates onto the roof frame (u, v).

        The input point does not need to lie exactly on the roof plane; the
        out-of-plane component is discarded.
        """
        u_axis, v_axis, _ = self._axes()
        delta = point - self.origin
        return Point2D(delta.dot(u_axis), delta.dot(v_axis))

    def slope_distance(self, horizontal_distance: float) -> float:
        """Length measured along the slope for a given horizontal run."""
        return horizontal_distance / math.cos(self.tilt_deg * DEG2RAD)

    def horizontal_distance(self, slope_distance: float) -> float:
        """Horizontal run corresponding to a length measured along the slope."""
        return slope_distance * math.cos(self.tilt_deg * DEG2RAD)

    def elevation_gain(self, slope_distance: float) -> float:
        """Vertical rise corresponding to a length measured up the slope."""
        return slope_distance * math.sin(self.tilt_deg * DEG2RAD)
