"""Deterministic report artifacts (Markdown / CSV) for sweeps and presets.

Rendering is plain string assembly with explicit column formats -- no
timestamps, no environment-dependent content -- so re-generating a report
from the same inputs is byte-identical.  That determinism is what lets the
CI docs job regenerate the generated artifacts and fail on any diff.

Two *presets* reproduce the paper-level artifacts:

``table1``
    The paper's Table I (three roofs x N in {16, 32}), driven end-to-end
    through the sweep engine and equivalence-tested row-for-row against the
    legacy object-level driver :func:`repro.experiments.run_table1`.
``catalog``
    A summary of every built-in scenario (also the table behind the
    generated ``docs/scenarios.md``).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .aggregate import SweepResult

#: Column formats (printf-style) used when a column holds floats.
FloatFormats = Mapping[str, str]


def _format_cell(value: Any, fmt: Optional[str] = None) -> str:
    if value is None:
        return ""
    if fmt is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
        return fmt % value
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def render_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[Tuple[str, str]],
    formats: Optional[FloatFormats] = None,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table.

    ``columns`` lists ``(row_key, header)`` pairs in display order;
    ``formats`` optionally maps row keys to printf-style float formats
    (e.g. ``{"proposed_mwh": "%.3f"}``).

    >>> print(render_markdown_table(
    ...     [{"n": 4, "e": 1.25}, {"n": 8, "e": 2.5}],
    ...     columns=[("n", "N"), ("e", "Energy [MWh]")],
    ...     formats={"e": "%.3f"},
    ... ))
    | N | Energy [MWh] |
    | --- | --- |
    | 4 | 1.250 |
    | 8 | 2.500 |
    """
    if not columns:
        raise ConfigurationError("a markdown table needs at least one column")
    fmts = dict(formats or {})
    lines = [
        "| " + " | ".join(header for _, header in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        cells = [_format_cell(row.get(key), fmts.get(key)) for key, _ in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_csv(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[Tuple[str, str]],
    formats: Optional[FloatFormats] = None,
) -> str:
    """Render rows as CSV text (header from the column display names)."""
    if not columns:
        raise ConfigurationError("a CSV table needs at least one column")
    fmts = dict(formats or {})
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([header for _, header in columns])
    for row in rows:
        writer.writerow([_format_cell(row.get(key), fmts.get(key)) for key, _ in columns])
    return buffer.getvalue()


@dataclass(frozen=True)
class ReportArtifact:
    """One rendered report: the rows plus their Markdown and CSV forms."""

    name: str
    title: str
    rows: Tuple[dict, ...]
    markdown: str
    csv: str

    def text(self, fmt: str = "markdown") -> str:
        """The artifact in the requested format (``markdown`` or ``csv``)."""
        if fmt == "markdown":
            return self.markdown
        if fmt == "csv":
            return self.csv
        raise ConfigurationError(f"unknown report format {fmt!r}")


def _artifact(
    name: str,
    title: str,
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[Tuple[str, str]],
    formats: Optional[FloatFormats] = None,
    preamble: Sequence[str] = (),
    footer: Sequence[str] = (),
) -> ReportArtifact:
    body = render_markdown_table(rows, columns, formats)
    parts = [f"# {title}", ""]
    parts.extend(preamble)
    if preamble:
        parts.append("")
    parts.append(body)
    if footer:
        parts.append("")
        parts.extend(footer)
    markdown = "\n".join(parts) + "\n"
    return ReportArtifact(
        name=name,
        title=title,
        rows=tuple(dict(row) for row in rows),
        markdown=markdown,
        csv=render_csv(rows, columns, formats),
    )


# ---------------------------------------------------------------------------
# Generic sweep reports
# ---------------------------------------------------------------------------


def sweep_report(
    sweep: SweepResult,
    title: Optional[str] = None,
    metrics: Optional[Sequence[str]] = None,
) -> ReportArtifact:
    """Render a sweep outcome: axis columns, metric columns, cache accounting.

    The footer records the per-stage cache-reuse accounting of the run, so
    a stored report documents how much of the grid was served from cache.
    """
    from .aggregate import DEFAULT_METRICS

    chosen = tuple(metrics) if metrics is not None else DEFAULT_METRICS
    rows = sweep.table(chosen)
    columns: List[Tuple[str, str]] = [("point", "point")]
    columns += [(key, key) for key in sweep.axis_keys]
    columns += [(metric, metric) for metric in chosen]
    formats = {metric: "%.4f" for metric in chosen if metric != "runtime_s"}
    formats["runtime_s"] = "%.2f"
    recomputes = sweep.stage_recompute_counts()
    hits = sweep.cache_hit_counts()
    stages = sorted(set(recomputes) | set(hits))
    accounting = ", ".join(
        f"{stage}: {hits.get(stage, 0)} cached / {recomputes.get(stage, 0)} computed"
        for stage in stages
    )
    footer = [
        f"Points: {sweep.n_points} along axes {', '.join(sweep.axis_keys)}.",
        f"Stage cache reuse -- {accounting if accounting else 'no provenance recorded'}.",
    ]
    return _artifact(
        name=f"sweep-{sweep.plan_name}",
        title=title if title is not None else f"Sweep report: {sweep.plan_name}",
        rows=rows,
        columns=columns,
        formats=formats,
        footer=footer,
    )


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

#: Columns of the Table-I artifact, matching the paper's layout.
_TABLE1_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("roof", "Roof"),
    ("WxL", "W x L"),
    ("Ng", "Ng"),
    ("N", "N"),
    ("traditional_mwh", "Traditional [MWh/y]"),
    ("proposed_mwh", "Proposed [MWh/y]"),
    ("improvement_percent", "Improvement [%]"),
)

_TABLE1_FORMATS: FloatFormats = {
    "traditional_mwh": "%.3f",
    "proposed_mwh": "%.3f",
    "improvement_percent": "%.2f",
}


def table1_report(
    config: Any = None,
    roofs: Optional[Sequence[str]] = None,
    cache: Any = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    parallel: bool = True,
) -> ReportArtifact:
    """The paper's Table I, reproduced through the sweep engine.

    Accepts the same :class:`~repro.experiments.Table1Config` as the legacy
    driver; the emitted rows are equivalence-tested to match
    :func:`repro.experiments.run_table1` exactly.
    """
    from ..experiments.table1 import run_table1_sweep

    outcome = run_table1_sweep(
        config,
        roofs=roofs,
        cache=cache,
        jobs=jobs,
        use_cache=use_cache,
        parallel=parallel,
    )
    rows = outcome.report.as_dicts()
    # Note: no run-dependent content (timings, cache hit counts) may enter
    # the artifact -- regenerating it from the same inputs must be
    # byte-identical, warm or cold.  The reuse accounting stays available on
    # the SweepResult (outcome.sweep.stage_recompute_counts()).
    return _artifact(
        name="table1",
        title="Table I -- yearly production, traditional vs proposed placement",
        rows=rows,
        columns=_TABLE1_COLUMNS,
        formats=_TABLE1_FORMATS,
        preamble=[
            "Reproduction of Vinco et al. (DATE 2018), Table I: for each",
            "case-study roof and module count N, the yearly production of the",
            "traditional compact placement, the proposed placement, and the",
            "relative improvement.  Generated by the declarative sweep engine",
            "(`repro.sweep`) over the roof x N grid.",
        ],
        footer=[f"Sweep: {outcome.sweep.n_points} points."],
    )


_CATALOG_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("name", "Scenario"),
    ("solver", "Solver"),
    ("n_modules", "N"),
    ("n_series", "Series"),
    ("roof", "Roof"),
    ("size", "Facet [m]"),
    ("tags", "Tags"),
    ("description", "Description"),
)


def catalog_rows() -> List[dict]:
    """Flat summary rows of the built-in scenario catalog (catalog order)."""
    from ..scenario.catalog import builtin_scenarios

    rows = []
    for spec in builtin_scenarios().values():
        rows.append(
            {
                "name": spec.name,
                "solver": spec.solver.name,
                "n_modules": spec.n_modules,
                "n_series": spec.series_length(),
                "roof": spec.roof.name,
                "size": f"{spec.roof.width_m:g} x {spec.roof.depth_m:g}",
                "tags": ", ".join(spec.tags),
                "description": spec.description,
            }
        )
    return rows


def catalog_table_markdown() -> str:
    """Just the catalog summary table (embedded in ``docs/scenarios.md``)."""
    return render_markdown_table(catalog_rows(), _CATALOG_COLUMNS)


def catalog_report(**_: Any) -> ReportArtifact:
    """Summary of every built-in scenario (the ``catalog`` preset)."""
    rows = catalog_rows()
    return _artifact(
        name="catalog",
        title="Built-in scenario catalog",
        rows=rows,
        columns=_CATALOG_COLUMNS,
        preamble=[
            "Every named scenario bundled with `repro`, runnable as",
            "`repro run <name>` and sweepable as a `SweepPlan` base.  This",
            "table is the source of the generated `docs/scenarios.md`.",
        ],
        footer=[f"{len(rows)} scenarios."],
    )


#: Registered report presets: name -> builder accepting preset kwargs.
REPORT_PRESETS: Dict[str, Callable[..., ReportArtifact]] = {
    "table1": table1_report,
    "catalog": catalog_report,
}


def available_presets() -> List[str]:
    """Names of the registered report presets, sorted."""
    return sorted(REPORT_PRESETS)


def generate_report(preset: str, **kwargs: Any) -> ReportArtifact:
    """Build a registered preset artifact by name."""
    try:
        builder = REPORT_PRESETS[preset]
    except KeyError as exc:
        known = ", ".join(available_presets())
        raise ConfigurationError(f"unknown report preset {preset!r}; known: {known}") from exc
    return builder(**kwargs)
