"""Typed aggregation of sweep outcomes: tables, group-by, pivot, accounting.

A :class:`SweepResult` pairs every expanded sweep point (its axis values and
labels) with the :class:`~repro.runner.ScenarioResult` the batch runner
produced for it, plus the run-level figures (wall-clock, worker count) and
the per-stage cache-reuse accounting the warm-sweep guarantees are asserted
against.  Everything is JSON-round-trippable so sweep outcomes can be
stored next to their plans and re-aggregated offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..runner.batch import BatchResult, count_stage_flags
from ..runner.stages import ScenarioResult
from ..runner.store import CampaignSummary

PathLike = Union[str, Path]

#: Result metrics exported into flat sweep tables, in column order.
DEFAULT_METRICS: Tuple[str, ...] = (
    "annual_energy_mwh",
    "baseline_energy_mwh",
    "improvement_percent",
    "wiring_extra_length_m",
    "capacity_factor",
    "runtime_s",
)

_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class SweepPointResult:
    """Outcome of one sweep point: axis coordinates plus the run record."""

    name: str
    overrides: Mapping[str, Any]
    labels: Mapping[str, str]
    result: ScenarioResult

    def axis_value(self, key: str) -> Any:
        """The point's coordinate on the axis with column name ``key``.

        Scalar override values are returned as-is (so numeric axes stay
        numeric in tables); structured values (e.g. a roof dictionary) are
        represented by their display label.
        """
        for path, value in self.overrides.items():
            if path.rsplit(".", 1)[-1] == key:
                if isinstance(value, _SCALARS) or value is None:
                    return value
                return self.labels.get(key, str(value))
        raise ConfigurationError(f"sweep point {self.name!r} has no axis {key!r}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "overrides": dict(self.overrides),
            "labels": dict(self.labels),
            "result": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPointResult":
        try:
            return cls(
                name=str(data["name"]),
                overrides=dict(data["overrides"]),
                labels={str(k): str(v) for k, v in data.get("labels", {}).items()},
                result=ScenarioResult.from_dict(data["result"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed sweep point record: {exc}") from exc


@dataclass(frozen=True)
class PivotTable:
    """A two-axis rearrangement of one sweep metric.

    ``values[i][j]`` is the metric at ``row_labels[i]`` x ``col_labels[j]``
    (``None`` where the sweep has no such point, e.g. zip-mode sweeps).
    """

    index: str
    columns: str
    metric: str
    row_labels: Tuple[Any, ...]
    col_labels: Tuple[Any, ...]
    values: Tuple[Tuple[Optional[float], ...], ...]


@dataclass
class SweepResult:
    """Aggregated outcome of one sweep run."""

    plan_name: str
    axis_keys: Tuple[str, ...]
    points: List[SweepPointResult]
    runtime_s: float = 0.0
    jobs: int = 1
    #: Durable-store accounting when the sweep ran as a campaign
    #: (``run_sweep(store=...)``); ``None`` for in-memory sweeps.
    campaign: Optional[CampaignSummary] = None

    @property
    def n_points(self) -> int:
        """Number of sweep points executed."""
        return len(self.points)

    def results(self) -> List[ScenarioResult]:
        """The underlying scenario results, in point order."""
        return [point.result for point in self.points]

    # -- tabulation --------------------------------------------------------------

    def table(self, metrics: Sequence[str] = DEFAULT_METRICS) -> List[dict]:
        """Flat rows: one dict per point with axis columns then metrics."""
        rows = []
        for point in self.points:
            row: dict = {"point": point.name}
            for key in self.axis_keys:
                row[key] = point.axis_value(key)
            for metric in metrics:
                row[metric] = getattr(point.result, metric)
            rows.append(row)
        return rows

    def group_by(self, key: str) -> Dict[Any, List[SweepPointResult]]:
        """Points grouped by their coordinate on one axis (insertion order)."""
        self._require_axis(key)
        groups: Dict[Any, List[SweepPointResult]] = {}
        for point in self.points:
            groups.setdefault(point.axis_value(key), []).append(point)
        return groups

    def pivot(
        self, index: str, columns: str, metric: str = "annual_energy_mwh"
    ) -> PivotTable:
        """Rearrange one metric onto an ``index`` x ``columns`` grid.

        Label order follows first appearance in point order, so pivots of
        grid-mode sweeps list axis values in their declared order.
        """
        self._require_axis(index)
        self._require_axis(columns)
        if index == columns:
            raise ConfigurationError("pivot needs two distinct axes")
        row_labels: List[Any] = []
        col_labels: List[Any] = []
        cells: Dict[Tuple[int, int], float] = {}
        for point in self.points:
            row_value = point.axis_value(index)
            col_value = point.axis_value(columns)
            if row_value not in row_labels:
                row_labels.append(row_value)
            if col_value not in col_labels:
                col_labels.append(col_value)
            key = (row_labels.index(row_value), col_labels.index(col_value))
            if key in cells:
                raise ConfigurationError(
                    f"pivot cell {row_value!r} x {col_value!r} is ambiguous: "
                    "several points share it (pivot on more axes or filter first)"
                )
            cells[key] = float(getattr(point.result, metric))
        values = tuple(
            tuple(cells.get((i, j)) for j in range(len(col_labels)))
            for i in range(len(row_labels))
        )
        return PivotTable(
            index=index,
            columns=columns,
            metric=metric,
            row_labels=tuple(row_labels),
            col_labels=tuple(col_labels),
            values=values,
        )

    def _require_axis(self, key: str) -> None:
        if key not in self.axis_keys:
            known = ", ".join(self.axis_keys)
            raise ConfigurationError(f"unknown sweep axis {key!r}; axes: {known}")

    # -- warm-start accounting -----------------------------------------------------

    def warm_started_count(self) -> int:
        """Number of points whose solver actually consumed a warm-start hint."""
        return sum(1 for result in self.results() if result.warm_started)

    def gap_by_point(self) -> Dict[str, float]:
        """Reported optimality gap per point, for points that reported one.

        Greedy points never report a gap; ILP points report ``0.0`` on a
        proven optimum and the solver's relative gap when an anytime budget
        stopped the search early.
        """
        return {
            point.name: point.result.gap
            for point in self.points
            if point.result.gap is not None
        }

    # -- cache-reuse accounting ----------------------------------------------------

    def cache_hit_counts(self) -> Dict[str, int]:
        """Per-stage count of points served from the stage cache."""
        return count_stage_flags(self.results(), cached=True)

    def stage_recompute_counts(self) -> Dict[str, int]:
        """Per-stage count of points that had to *recompute* the stage.

        The sweep engine's headline guarantee is expressed against this:
        a warm re-run of an unchanged sweep reports zero recomputations for
        every expensive stage, and a cold single-roof sweep along cheap axes
        (``n_modules``, ``solver.name``) recomputes the solar field exactly
        once for the whole grid.
        """
        return count_stage_flags(self.results(), cached=False)

    def summary(self) -> dict:
        """Aggregate figures for reports and the CLI."""
        return {
            "plan": self.plan_name,
            "n_points": self.n_points,
            "axes": list(self.axis_keys),
            "jobs": self.jobs,
            "runtime_s": self.runtime_s,
            "total_energy_mwh": sum(r.annual_energy_mwh for r in self.results()),
            "cache_hits_by_stage": self.cache_hit_counts(),
            "cache_recomputes_by_stage": self.stage_recompute_counts(),
            "n_warm_started": self.warm_started_count(),
            "max_gap": max(self.gap_by_point().values(), default=None),
            "campaign": None if self.campaign is None else self.campaign.as_dict(),
        }

    # -- (de)serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "plan_name": self.plan_name,
            "axis_keys": list(self.axis_keys),
            "runtime_s": self.runtime_s,
            "jobs": self.jobs,
            "campaign": None if self.campaign is None else self.campaign.as_dict(),
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        try:
            campaign = data.get("campaign")
            return cls(
                plan_name=str(data["plan_name"]),
                axis_keys=tuple(str(k) for k in data["axis_keys"]),
                points=[SweepPointResult.from_dict(p) for p in data["points"]],
                runtime_s=float(data.get("runtime_s", 0.0)),
                jobs=int(data.get("jobs", 1)),
                campaign=None if campaign is None else CampaignSummary.from_dict(campaign),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed sweep result: {exc}") from exc

    def save(self, path: PathLike) -> None:
        """Write the aggregated result to a JSON file."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: PathLike) -> "SweepResult":
        """Read an aggregated result from a JSON file."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid sweep result JSON: {exc}") from exc
        return cls.from_dict(data)


def aggregate_batch(
    plan_name: str,
    axis_keys: Sequence[str],
    points: Sequence[Mapping[str, Any]],
    batch: BatchResult,
) -> SweepResult:
    """Join expanded sweep points with their batch records, in point order.

    ``points`` supplies ``{"name", "overrides", "labels"}`` per point (the
    attributes of :class:`~repro.sweep.grid.SweepPoint`); the batch must
    contain exactly one result per point name.
    """
    by_name = batch.by_name()
    missing = [p["name"] for p in points if p["name"] not in by_name]
    if missing:
        raise ConfigurationError(f"batch results missing for sweep points: {missing}")
    joined = [
        SweepPointResult(
            name=p["name"],
            overrides=dict(p["overrides"]),
            labels=dict(p["labels"]),
            result=by_name[p["name"]],
        )
        for p in points
    ]
    return SweepResult(
        plan_name=plan_name,
        axis_keys=tuple(axis_keys),
        points=joined,
        runtime_s=batch.runtime_s,
        jobs=batch.jobs,
        campaign=batch.campaign,
    )
