"""Declarative sweep engine: expand axis grids, run them cached, aggregate.

The sweep subsystem turns "reproduce the paper's artifacts at scale" into a
three-line workflow::

    from repro.scenario import get_scenario
    from repro.sweep import SweepAxis, SweepPlan, run_sweep

    plan = SweepPlan(
        name="modules-x-solver",
        base=get_scenario("residential-south"),
        axes=(
            SweepAxis("n_modules", (4, 6, 8)),
            SweepAxis("solver.name", ("greedy", "traditional")),
        ),
    )
    sweep = run_sweep(plan, cache="~/.cache/repro")
    print(sweep.pivot("n_modules", "name", "annual_energy_mwh"))

Expansion (:mod:`repro.sweep.grid`) is pure specification surgery, execution
streams the expanded specs through the cached parallel batch runner
(:func:`repro.runner.run_batch`), and aggregation
(:mod:`repro.sweep.aggregate`) joins each point's axis coordinates with its
result plus per-stage cache-reuse accounting.  Because consecutive sweep
points usually differ by one parameter, the stage cache collapses the
expensive stages across the grid: an ``n_modules`` x ``solver`` sweep
computes its solar field *once*, and a warm re-run recomputes nothing.

:mod:`repro.sweep.report` renders sweep outcomes (and the paper-artifact
presets ``table1`` and ``catalog``) as deterministic Markdown/CSV.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import ScenarioExecutionError
from ..runner.batch import run_batch
from ..runner.cache import PathLike, StageCache
from ..runner.store import ResultStore
from ..telemetry import span
from .aggregate import (
    DEFAULT_METRICS,
    PivotTable,
    SweepPointResult,
    SweepResult,
    aggregate_batch,
)
from .grid import SWEEP_FORMAT_VERSION, SweepAxis, SweepPlan, SweepPoint

__all__ = [
    "DEFAULT_METRICS",
    "PivotTable",
    "SWEEP_FORMAT_VERSION",
    "SweepAxis",
    "SweepPlan",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "aggregate_batch",
    "run_sweep",
]


def run_sweep(
    plan: SweepPlan,
    cache: Union[StageCache, PathLike, None] = None,
    jobs: Optional[int] = None,
    results_path: Optional[PathLike] = None,
    use_cache: bool = True,
    parallel: bool = True,
    store: Union[ResultStore, PathLike, None] = None,
    campaign: Optional[str] = None,
    retries: int = 0,
    timeout_s: Optional[float] = None,
    retry_backoff_s: float = 0.0,
    warm_start: Optional[bool] = None,
) -> SweepResult:
    """Expand a sweep plan and execute every point through the batch runner.

    Parameters
    ----------
    plan:
        The declarative sweep (base scenario + axes).
    cache:
        Stage cache handle or directory shared by every point; points that
        share expensive-stage content keys (same roof/weather/time base)
        compute them once, within this run and across runs.
    jobs:
        Worker-process count forwarded to :func:`repro.runner.run_batch`.
    results_path:
        When given, the per-point scenario records are also written there
        as a JSONL store (one line per point, in point order).
    use_cache, parallel:
        Forwarded to :func:`repro.runner.run_batch`.
    store:
        A durable :class:`~repro.runner.store.ResultStore` (or database
        path) routing the sweep through a resumable campaign: points already
        completed in an earlier run are skipped, failed points are retried
        up to ``retries`` times, and a re-run of an unchanged sweep is a
        no-op.  ``None`` (or ``"none"``) keeps the in-memory path.
    campaign:
        Campaign name within the store; defaults to
        :attr:`SweepPlan.campaign_name` (``sweep:<plan name>``).
    retries:
        Per-point retry budget for store-backed sweeps.
    timeout_s:
        Per-point wall-clock budget forwarded to the batch runner's
        watchdog; ``None`` falls back to the plan's own ``timeout_s``.
    retry_backoff_s:
        Base delay between retry attempts of one point (exponential with
        deterministic jitter); ``0`` retries immediately.
    warm_start:
        When True the sweep executes its points in axis-ascending order and
        offers every point its nearest already-solved neighbour's placement
        as a solver warm start (:meth:`SweepPlan.warm_execution`); ``None``
        falls back to the plan's own ``warm_start`` flag.  Warm starts are
        best-effort hints carried out-of-band: point digests, cache keys and
        the aggregated table (which stays in plan-point order) are identical
        to a cold run -- only runtimes and the ``warm_started``/``gap``
        provenance fields change.

    Returns
    -------
    SweepResult
        Per-point results joined with their axis coordinates, plus
        cache-reuse accounting (:meth:`SweepResult.stage_recompute_counts`)
        and -- for store-backed sweeps -- the campaign summary.

    Raises
    ------
    ScenarioExecutionError
        For store-backed sweeps whose points still fail after retries (the
        failures stay recorded in the store, so fixing the cause and
        re-running resumes exactly the missing points).  In-memory sweeps
        raise on the first failing point, like :func:`repro.runner.run_batch`.
    """
    points = plan.points()
    effective_timeout = timeout_s if timeout_s is not None else plan.timeout_s
    effective_warm = plan.warm_start if warm_start is None else warm_start
    if effective_warm:
        ordered_points, warm_hints = plan.warm_execution()
    else:
        ordered_points, warm_hints = points, None
    with span("sweep", plan=plan.name, n_points=len(points), warm=effective_warm):
        batch = run_batch(
            [point.spec for point in ordered_points],
            cache=cache,
            jobs=jobs,
            results_path=results_path,
            use_cache=use_cache,
            parallel=parallel,
            store=store,
            campaign=campaign if campaign else plan.campaign_name,
            retries=retries,
            timeout_s=effective_timeout,
            retry_backoff_s=retry_backoff_s,
            warm_hints=warm_hints,
        )
    summary = batch.campaign
    if summary is not None and (summary.failed or summary.timed_out):
        missing = [
            point.name
            for point in points
            if point.name not in {result.scenario for result in batch.results}
        ]
        counts = f"{summary.failed} point(s) failed"
        if summary.timed_out:
            counts += f", {summary.timed_out} timed out"
        raise ScenarioExecutionError(
            f"sweep {plan.name!r}: {counts} "
            f"({', '.join(missing[:5])}{', ...' if len(missing) > 5 else ''}); "
            "the store keeps their failure rows -- fix the cause and re-run "
            "to resume exactly the missing points"
        )
    return aggregate_batch(
        plan_name=plan.name,
        axis_keys=[axis.key for axis in plan.axes],
        points=[
            {"name": p.name, "overrides": p.overrides, "labels": p.labels}
            for p in points
        ],
        batch=batch,
    )
