"""Declarative sweep plans: a base scenario plus axes of overrides.

A :class:`SweepPlan` is the sweep-engine counterpart of a
:class:`~repro.scenario.ScenarioSpec`: a plain, JSON-round-trippable
document describing *one* base scenario and a set of :class:`SweepAxis`
entries -- dotted override paths ("n_modules", "weather.latitude_deg",
"solver.name", "module.gamma_p_per_k", "roof", ...) with the values to
visit.  ``mode="grid"`` expands the Cartesian product of the axes,
``mode="zip"`` pairs them element-wise (all axes must then share one
length).

Expansion is pure specification surgery: each point applies its overrides
through :meth:`ScenarioSpec.with_overrides`, so a sweep point is exactly
the scenario a hand-written JSON file with the same values would parse to.
In particular every point derives its stage-cache content keys the normal
way, which is what makes sweeps cheap: consecutive points that share a
roof/weather/time base (e.g. an ``n_modules`` or ``solver.name`` axis) hash
to the same solar-field key and reuse one cached computation across the
whole grid.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Mapping, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..scenario.spec import ScenarioSpec

PathLike = Union[str, Path]

#: Version stamp embedded in serialised sweep plans.
SWEEP_FORMAT_VERSION = 1

_LABEL_SAFE = re.compile(r"[^A-Za-z0-9_.+-]+")


def _default_label(value: Any) -> str:
    """Compact, filename-safe label of one axis value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)  # already safe; keep the sign of negative values
    if isinstance(value, Mapping) and "name" in value:
        raw = str(value["name"])
    elif isinstance(value, str) or value is None:
        raw = str(value)
    else:
        blob = json.dumps(value, sort_keys=True, separators=(",", ":"))
        raw = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:10]
    label = _LABEL_SAFE.sub("-", raw).strip("-")
    if len(label) > 48:
        digest = hashlib.sha256(label.encode("utf-8")).hexdigest()[:8]
        label = f"{label[:39]}-{digest}"
    return label or "value"


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a dotted override path and the values to visit.

    ``labels`` (optional, same length as ``values``) names the values in
    point names, tables and reports; labels default to a compact rendering
    of each value (for roof dictionaries: the roof's ``name``).
    """

    name: str
    values: Tuple[Any, ...]
    labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a sweep axis needs a non-empty override path")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ConfigurationError(f"sweep axis {self.name!r} has no values")
        if self.labels is not None:
            object.__setattr__(self, "labels", tuple(str(label) for label in self.labels))
            if len(self.labels) != len(self.values):
                raise ConfigurationError(
                    f"sweep axis {self.name!r}: {len(self.labels)} labels for "
                    f"{len(self.values)} values"
                )

    @property
    def key(self) -> str:
        """Short column name of the axis (last path segment)."""
        return self.name.rsplit(".", 1)[-1]

    def label_for(self, index: int) -> str:
        """Display label of the value at ``index``."""
        if self.labels is not None:
            return self.labels[index]
        return _default_label(self.values[index])

    def to_dict(self) -> dict:
        data: dict = {"name": self.name, "values": list(self.values)}
        if self.labels is not None:
            data["labels"] = list(self.labels)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        try:
            labels = data.get("labels")
            return cls(
                name=str(data["name"]),
                values=tuple(data["values"]),
                labels=None if labels is None else tuple(labels),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed sweep axis: {exc}") from exc


@dataclass(frozen=True)
class SweepPoint:
    """One concrete point of an expanded sweep."""

    name: str
    overrides: Mapping[str, Any]
    labels: Mapping[str, str]
    spec: ScenarioSpec


@dataclass(frozen=True)
class SweepPlan:
    """A base scenario plus override axes, expandable into concrete specs.

    Example
    -------
    >>> from repro.scenario import get_scenario
    >>> from repro.sweep import SweepAxis, SweepPlan
    >>> plan = SweepPlan(
    ...     name="lat-x-n",
    ...     base=get_scenario("residential-south"),
    ...     axes=(
    ...         SweepAxis("weather.latitude_deg", (40.0, 55.0)),
    ...         SweepAxis("n_modules", (4, 6)),
    ...     ),
    ... )
    >>> plan.n_points
    4
    >>> [p.name for p in plan.points()][:2]
    ['lat-x-n@latitude_deg=40.0+n_modules=4', 'lat-x-n@latitude_deg=40.0+n_modules=6']
    >>> restored = SweepPlan.from_json(plan.to_json())
    >>> restored.to_dict() == plan.to_dict()
    True
    """

    name: str
    base: ScenarioSpec
    axes: Tuple[SweepAxis, ...]
    mode: str = "grid"
    description: str = ""
    #: Per-point wall-clock budget (seconds) applied when the plan runs;
    #: ``None`` leaves points unbounded.  A ``--timeout`` on the CLI (or the
    #: ``timeout_s`` argument of :func:`repro.sweep.run_sweep`) overrides it.
    timeout_s: Optional[float] = None
    #: When True the sweep runs warm-started: points execute in
    #: axis-ascending order and each point's solver is offered its nearest
    #: already-solved neighbour's placement (see :meth:`warm_execution`).
    #: Results are bit-identical to a cold run -- only runtimes change.
    warm_start: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a sweep plan needs a non-empty name")
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise ConfigurationError("a sweep plan needs at least one axis")
        if self.mode not in ("grid", "zip"):
            raise ConfigurationError(f"unknown sweep mode {self.mode!r}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("sweep plan timeout_s must be > 0 when set")
        keys = [axis.key for axis in self.axes]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"sweep axis keys must be unique, got {keys}")
        if self.mode == "zip":
            lengths = {len(axis.values) for axis in self.axes}
            if len(lengths) != 1:
                raise ConfigurationError(
                    "zip mode requires equal-length axes, got lengths "
                    f"{sorted(len(a.values) for a in self.axes)}"
                )

    # -- expansion ---------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of concrete scenarios the plan expands to."""
        if self.mode == "zip":
            return len(self.axes[0].values)
        product = 1
        for axis in self.axes:
            product *= len(axis.values)
        return product

    def _index_tuples(self) -> List[Tuple[int, ...]]:
        if self.mode == "zip":
            return [(i,) * len(self.axes) for i in range(len(self.axes[0].values))]
        return list(itertools.product(*(range(len(a.values)) for a in self.axes)))

    def points(self) -> List[SweepPoint]:
        """Expand the plan into named, override-annotated scenario specs.

        Point order is deterministic: ``grid`` mode iterates the Cartesian
        product with the *last* axis fastest (like nested loops in axis
        order), ``zip`` mode follows the value order of the axes.
        """
        points: List[SweepPoint] = []
        for indices in self._index_tuples():
            overrides = {
                axis.name: axis.values[i] for axis, i in zip(self.axes, indices)
            }
            labels = {
                axis.key: axis.label_for(i) for axis, i in zip(self.axes, indices)
            }
            suffix = "+".join(f"{axis.key}={labels[axis.key]}" for axis in self.axes)
            name = f"{self.name}@{suffix}"
            spec = self.base.with_overrides(overrides, name=name)
            points.append(
                SweepPoint(name=name, overrides=overrides, labels=labels, spec=spec)
            )
        names = [point.name for point in points]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                "sweep point names collide; give the ambiguous axis values "
                "explicit labels (SweepAxis(labels=...))"
            )
        return points

    def specs(self) -> List[ScenarioSpec]:
        """The concrete scenarios of the sweep, in point order."""
        return [point.spec for point in self.points()]

    # -- warm-start wiring ---------------------------------------------------------

    def _axis_ranks(self) -> List[List[int]]:
        """Per axis: rank of each value index in ascending value order.

        Numeric axes rank by value so warm execution walks e.g. an
        ``n_modules`` ladder small-to-large regardless of declaration
        order; non-numeric axes (roof names, solver names, ...) keep
        declaration order, which is as good an ordering as any.
        """
        ranks: List[List[int]] = []
        for axis in self.axes:
            numeric = all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in axis.values
            )
            indices = list(range(len(axis.values)))
            if numeric:
                indices.sort(key=lambda i: axis.values[i])
            rank = [0] * len(axis.values)
            for position, index in enumerate(indices):
                rank[index] = position
            ranks.append(rank)
        return ranks

    @staticmethod
    def _exact_prefix_pair(neighbour: SweepPoint, point: SweepPoint) -> bool:
        """True when ``point`` differs from ``neighbour`` only by a larger
        (or equal) ``n_modules`` -- the case where a greedy prefix replay is
        exact, not merely a heuristic hint."""
        keys = set(neighbour.overrides) | set(point.overrides)
        differing = [
            key
            for key in keys
            if neighbour.overrides.get(key) != point.overrides.get(key)
        ]
        if len(differing) != 1 or differing[0].rsplit(".", 1)[-1] != "n_modules":
            return False
        before = neighbour.overrides.get(differing[0])
        after = point.overrides.get(differing[0])
        return (
            isinstance(before, (int, float))
            and isinstance(after, (int, float))
            and before <= after
        )

    def warm_execution(self) -> Tuple[List[SweepPoint], dict]:
        """Warm execution order plus per-point neighbour wiring.

        Returns ``(ordered_points, warm_hints)`` where ``ordered_points``
        is :meth:`points` reordered so every point's designated neighbour
        precedes it, and ``warm_hints`` maps point name to
        ``(neighbour_name, exact_prefix)`` as consumed by
        :func:`repro.runner.run_batch`.

        Neighbour choice: in ``grid`` mode each point prefers the point one
        step below it on the ``n_modules`` axis (an exact greedy prefix);
        failing that, one step below on the fastest-varying axis with room
        to step (a heuristic hint -- greedy ignores it, ILP uses it as an
        incumbent).  The axis-origin point runs cold.  ``zip`` mode chains
        points in ranked order.  Hints are best-effort routing, not
        dependencies: a missing or failed neighbour just means that point
        solves cold.
        """
        points = self.points()
        index_tuples = self._index_tuples()
        ranks = self._axis_ranks()
        ranked = [
            tuple(ranks[a][i] for a, i in enumerate(indices))
            for indices in index_tuples
        ]
        order = sorted(range(len(points)), key=lambda p: ranked[p])
        warm_hints: dict = {}
        if self.mode == "zip":
            for position in range(1, len(order)):
                point = points[order[position]]
                neighbour = points[order[position - 1]]
                warm_hints[point.name] = (
                    neighbour.name,
                    self._exact_prefix_pair(neighbour, point),
                )
            return [points[p] for p in order], warm_hints
        by_ranked = {ranked[p]: p for p in range(len(points))}
        n_modules_axis = next(
            (a for a, axis in enumerate(self.axes) if axis.key == "n_modules"),
            None,
        )
        for p, r in enumerate(ranked):
            step_axis = None
            if n_modules_axis is not None and r[n_modules_axis] > 0:
                step_axis = n_modules_axis
            else:
                for a in reversed(range(len(r))):
                    if r[a] > 0:
                        step_axis = a
                        break
            if step_axis is None:
                continue  # the all-axes-origin point: runs cold
            stepped = list(r)
            stepped[step_axis] -= 1
            neighbour = points[by_ranked[tuple(stepped)]]
            point = points[p]
            warm_hints[point.name] = (
                neighbour.name,
                self._exact_prefix_pair(neighbour, point),
            )
        return [points[p] for p in order], warm_hints

    @property
    def campaign_name(self) -> str:
        """Default result-store campaign name of this sweep.

        Namespaced under ``sweep:`` so ad-hoc batch campaigns and sweep
        campaigns sharing one store file cannot collide; the points
        themselves are further keyed by their scenario content digests, so
        re-running a changed plan under the same campaign name simply
        enrolls the new points next to the old ones.
        """
        return f"sweep:{self.name}"

    # -- (de)serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "format_version": SWEEP_FORMAT_VERSION,
            "name": self.name,
            "mode": self.mode,
            "description": self.description,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
        }
        # Emitted only when set: plans without a budget keep serialising
        # byte-for-byte as before.
        if self.timeout_s is not None:
            data["timeout_s"] = self.timeout_s
        if self.warm_start:
            data["warm_start"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPlan":
        version = data.get("format_version", SWEEP_FORMAT_VERSION)
        if version != SWEEP_FORMAT_VERSION:
            raise ConfigurationError(f"unsupported sweep format version {version}")
        try:
            timeout_s = data.get("timeout_s")
            return cls(
                name=str(data["name"]),
                base=ScenarioSpec.from_dict(data["base"]),
                axes=tuple(SweepAxis.from_dict(axis) for axis in data["axes"]),
                mode=str(data.get("mode", "grid")),
                description=str(data.get("description", "")),
                timeout_s=None if timeout_s is None else float(timeout_s),
                warm_start=bool(data.get("warm_start", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed sweep plan: {exc}") from exc

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise the plan to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepPlan":
        """Parse a plan from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid sweep plan JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: PathLike) -> None:
        """Write the plan to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "SweepPlan":
        """Read a plan from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
