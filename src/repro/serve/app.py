"""Planning-as-a-service: the ``repro serve`` HTTP/JSON front-end.

The service puts an HTTP face on the campaign store's content-digest memo:
``POST /v1/plan`` normalises the submitted scenario document, computes its
:func:`~repro.runner.stages.scenario_content_digest`, and answers ``200``
immediately when *any* campaign already holds a ``done`` row for that
digest -- a pure store read, the pipeline is never touched.  A miss
enrolls the point into a serve campaign and answers ``202`` with a request
id (the digest itself: identical scenarios share one request).  Execution
is deliberately **not** in-process: any ``repro campaign worker`` fleet
pointed at the same store URL drains the queue, so the service inherits
leasing, adoption, retries, timeouts and fault injection for free, and the
caller follows progress via ``GET /v1/requests/<id>`` -- useful before it
is optimal, in the anytime-reporting spirit.

Layering: :class:`ServeApp` is pure request logic -- each handler takes
parsed inputs and returns ``(status, payload, headers)`` tuples, so the
whole contract is unit-testable without opening a socket.  The
:class:`_Handler`/:func:`create_server` pair is the thin
``ThreadingHTTPServer`` skin; one :class:`~repro.runner.store.ResultStore`
connection (opened ``cross_thread=True``) is shared across request threads
behind a lock, SQLite's WAL mode keeps the concurrent worker fleet's
writes from ever blocking the service's reads for long.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union
from urllib.parse import unquote, urlsplit

from ..errors import ConfigurationError, ReproError
from ..runner.stages import scenario_content_digest
from ..runner.store import (
    STATUS_DONE,
    STATUS_PENDING,
    STATUS_RUNNING,
    PointRecord,
    ResultStore,
)
from ..scenario.spec import ScenarioSpec
from ..telemetry import span
from .queue import (
    DEFAULT_MAX_QUEUE,
    AdmissionController,
    BadRequestError,
    normalize_priority,
)

#: Campaign name the service enrolls cache misses into (unless overridden).
DEFAULT_SERVE_CAMPAIGN = "serve"

#: Environment variables read by the CLI for serve defaults.
SERVE_PORT_ENV = "REPRO_SERVE_PORT"
SERVE_MAX_QUEUE_ENV = "REPRO_SERVE_MAX_QUEUE"

#: Default bind address/port of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

#: Maximum accepted request body (bytes).  A scenario document is a few KB;
#: this guards the service against accidental uploads, not adversaries.
MAX_BODY_BYTES = 1 << 20

Headers = Dict[str, str]
Response = Tuple[int, Dict[str, Any], Headers]


def normalize_scenario_document(document: Any) -> ScenarioSpec:
    """Parse a client scenario document into a canonical :class:`ScenarioSpec`.

    Accepts the same shorthands the sweep engine does -- notably ``solver``
    as a plain string (``"greedy"`` == ``{"name": "greedy", "options": {}}``)
    -- and round-trips through :class:`ScenarioSpec`, whose ``to_dict``
    canonicalises defaults.  Two semantically identical documents (key
    reordering, shorthand vs. explicit form, defaults spelled out or
    omitted) therefore normalise to one spec and one content digest, which
    is what makes the memo representation-insensitive.

    Every malformed document raises :class:`BadRequestError` (mapped to
    HTTP 400); a garbage document must never surface as a 500.
    """
    if not isinstance(document, Mapping):
        raise BadRequestError(
            f"scenario document must be a JSON object, got {type(document).__name__}"
        )
    data = dict(document)
    solver = data.get("solver")
    if isinstance(solver, str):
        data["solver"] = {"name": solver, "options": {}}
    try:
        return ScenarioSpec.from_dict(data)
    except ReproError as exc:
        raise BadRequestError(str(exc)) from exc
    except Exception as exc:  # noqa: BLE001 -- any parse failure is the client's
        raise BadRequestError(f"malformed scenario specification: {exc}") from exc


def _point_payload(record: PointRecord, include_result: bool) -> Dict[str, Any]:
    """The JSON view of one store row served by the status endpoints."""
    payload: Dict[str, Any] = {
        "request_id": record.digest,
        "scenario": record.name,
        "status": record.status,
        "priority": record.priority,
        "attempts": record.attempts,
        "lease_owner": record.lease_owner,
        "wall_time_s": record.wall_time_s,
        "error": record.error,
        "created_at": record.created_at,
        "updated_at": record.updated_at,
    }
    if include_result and record.status == STATUS_DONE:
        payload["result"] = dict(record.result_dict or {})
    return payload


class ServeApp:
    """Request logic of the planning service, free of any HTTP plumbing.

    Handlers return ``(status_code, payload, headers)`` tuples; the
    :class:`_Handler` skin serialises the payload as JSON.  All store
    access happens under one lock: the store connection is shared by every
    request thread (``cross_thread=True``), and SQLite connections are not
    thread-safe by themselves.
    """

    def __init__(
        self,
        store: ResultStore,
        campaign: str = DEFAULT_SERVE_CAMPAIGN,
        max_queue: int = DEFAULT_MAX_QUEUE,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        if not campaign:
            raise ConfigurationError("the serve campaign needs a non-empty name")
        self.store = store
        self.campaign = campaign
        self.admission = admission or AdmissionController(max_queue=max_queue)
        self._lock = threading.Lock()

    # -- endpoint handlers --------------------------------------------------------

    def handle_plan(self, raw_body: bytes) -> Response:
        """``POST /v1/plan``: memo hit -> 200, miss -> enqueue + 202 (or 429)."""
        with span("serve.request", endpoint="plan") as sp:
            try:
                return self._plan(raw_body, sp)
            except BadRequestError as exc:
                self.admission.record_bad_request()
                sp.set(status=400)
                return 400, {"error": str(exc)}, {}

    def _plan(self, raw_body: bytes, sp: Any) -> Response:
        try:
            body = json.loads(raw_body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, Mapping):
            raise BadRequestError(
                f"request body must be a JSON object, got {type(body).__name__}"
            )
        if "scenario" not in body:
            raise BadRequestError('request body is missing the "scenario" key')
        priority = normalize_priority(body.get("priority"))
        spec = normalize_scenario_document(body["scenario"])
        digest = scenario_content_digest(spec)
        sp.set(digest=digest[:12], priority=priority)

        with self._lock:
            # The memo: any campaign's done row answers -- a pure read.
            done = self.store.find_done(digest)
            if done is not None:
                self.admission.record_hit()
                sp.set(status=200, outcome="hit")
                payload = _point_payload(done, include_result=True)
                payload["cached"] = True
                return 200, payload, {}

            # Re-POST of an in-flight request: idempotent, never re-admitted
            # (and never 429ed -- the point is already in the queue).
            existing = self.store.find_point(self.campaign, digest)
            if existing is not None and existing.status in (
                STATUS_PENDING,
                STATUS_RUNNING,
            ):
                sp.set(status=202, outcome="pending")
                payload = _point_payload(existing, include_result=False)
                payload["poll"] = f"/v1/requests/{digest}"
                return 202, payload, {}

            depth = self.store.queue_depth(self.campaign)
            decision = self.admission.admit(depth, priority)
            if not decision.admitted:
                sp.set(status=429, outcome="rejected")
                return (
                    429,
                    {"error": decision.reason, "retry_after_s": decision.retry_after_s},
                    {"Retry-After": f"{decision.retry_after_s:g}"},
                )

            if existing is not None:
                # A previously failed/timed-out serve point: the row stays
                # terminal until an operator resumes the campaign; report
                # its state instead of silently double-enrolling.
                sp.set(status=202, outcome=existing.status)
                payload = _point_payload(existing, include_result=False)
                payload["poll"] = f"/v1/requests/{digest}"
                return 202, payload, {}

            (record,) = self.store.enroll(self.campaign, [spec], priority=priority)
            sp.set(status=202, outcome="miss")
            payload = _point_payload(record, include_result=False)
            payload["poll"] = f"/v1/requests/{digest}"
            payload["queue_depth"] = depth + 1
            return 202, payload, {}

    def handle_request_status(self, request_id: str) -> Response:
        """``GET /v1/requests/<id>``: point state straight from the store."""
        with span("serve.request", endpoint="status") as sp:
            with self._lock:
                record = self.store.find_point(self.campaign, request_id)
                if record is None:
                    # Digests enrolled by other campaigns still resolve once
                    # done -- the memo is content-addressed, not per-campaign.
                    record = self.store.find_done(request_id)
            if record is None:
                sp.set(status=404)
                return 404, {"error": f"unknown request id {request_id!r}"}, {}
            sp.set(status=200, outcome=record.status)
            return 200, _point_payload(record, include_result=True), {}

    def handle_healthz(self) -> Response:
        """``GET /v1/healthz``: liveness plus the queue-depth headline."""
        with span("serve.request", endpoint="healthz"):
            with self._lock:
                depth = self.store.queue_depth(self.campaign)
            return (
                200,
                {
                    "status": "ok",
                    "campaign": self.campaign,
                    "queue_depth": depth,
                    "max_queue": self.admission.max_queue,
                    "store": str(self.store.path),
                },
                {},
            )

    def handle_stats(self) -> Response:
        """``GET /v1/stats``: admission counters + store status breakdown."""
        with span("serve.request", endpoint="stats"):
            with self._lock:
                depth = self.store.queue_depth(self.campaign)
                counts = self.store.status_counts(self.campaign)
            stats = self.admission.stats()
            stats.update(
                {
                    "campaign": self.campaign,
                    "queue_depth": depth,
                    "status_counts": counts,
                }
            )
            return 200, stats, {}

    # -- routing ------------------------------------------------------------------

    def dispatch(self, method: str, path: str, raw_body: bytes = b"") -> Response:
        """Route one request; unknown paths 404, wrong methods 405."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/plan":
            if method != "POST":
                return 405, {"error": "use POST /v1/plan"}, {"Allow": "POST"}
            return self.handle_plan(raw_body)
        if path.startswith("/v1/requests/"):
            if method != "GET":
                return 405, {"error": "use GET"}, {"Allow": "GET"}
            return self.handle_request_status(path[len("/v1/requests/") :])
        if path == "/v1/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, {"Allow": "GET"}
            return self.handle_healthz()
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "use GET"}, {"Allow": "GET"}
            return self.handle_stats()
        return 404, {"error": f"unknown endpoint {method} {path}"}, {}


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP skin over :meth:`ServeApp.dispatch` (JSON in, JSON out)."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The owning server attaches the app here (see create_server).
    app: ServeApp

    def _respond(self, status: int, payload: Dict[str, Any], headers: Headers) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._respond(
                413, {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"}, {}
            )
            return
        raw_body = self.rfile.read(length) if length else b""
        try:
            status, payload, headers = self.app.dispatch(method, self.path, raw_body)
        except Exception as exc:  # noqa: BLE001 -- the service must keep serving
            status, payload, headers = 500, {"error": f"internal error: {exc}"}, {}
        self._respond(status, payload, headers)

    def do_GET(self) -> None:  # noqa: N802 -- http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging goes through telemetry spans, not stderr


def create_server(
    app: ServeApp, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server around ``app`` (call ``serve_forever``).

    Port ``0`` asks the OS for a free port (tests); the bound address is
    ``server.server_address``.  Threads are daemonic so an exiting process
    never hangs on a straggling keep-alive connection.
    """
    handler = type("ReproServeHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def open_serve_store(store: Union[str, "Path", None] = None) -> ResultStore:
    """Open the campaign store for the service (cross-thread connection).

    Accepts a filesystem path, a ``sqlite:///path`` URL (the form every
    other ``--store`` flag takes), or ``None`` for the default location.
    The returned connection allows cross-thread use because the service
    serialises access behind :class:`ServeApp`'s lock; other backends
    would need their own cross-thread story, so URLs with a different
    scheme are rejected explicitly.
    """
    if store is None:
        return ResultStore(None, cross_thread=True)
    text = str(store)
    if "://" in text:
        parts = urlsplit(text)
        if parts.scheme.lower() != "sqlite":
            raise ConfigurationError(
                f"repro serve supports sqlite stores only, got {text!r}"
            )
        if parts.netloc:
            raise ConfigurationError(
                f"sqlite store URLs take no host; write sqlite:///{parts.netloc}"
                f"{parts.path} (got {text!r})"
            )
        path = unquote(parts.path)
        return ResultStore(path if path and path != "/" else None, cross_thread=True)
    return ResultStore(text, cross_thread=True)


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_SERVE_CAMPAIGN",
    "MAX_BODY_BYTES",
    "SERVE_MAX_QUEUE_ENV",
    "SERVE_PORT_ENV",
    "ServeApp",
    "create_server",
    "normalize_scenario_document",
    "open_serve_store",
]
