"""Admission control for the planning service.

The service must answer *something* for every request, instantly: a memo
hit is served from the store, a miss is enqueued for the worker fleet --
but an unbounded queue would turn a traffic burst into unbounded latency
for everyone behind it.  The :class:`AdmissionController` enforces the
bound: beyond ``max_queue`` not-yet-terminal points, new work is refused
with ``429`` and a ``Retry-After`` hint, so clients back off instead of
piling up.  Refusals never apply to memo hits (a hit costs one indexed
read and enqueues nothing).

Two priority tiers modulate *drain order*, not admission: ``interactive``
points (a caller is polling for the answer) are claimed by the worker
fleet ahead of ``batch`` points (bulk backfill), via the ``priority``
column threaded through
:meth:`~repro.runner.store.ResultStore.claim_next_pending`.  The
controller keeps per-tier admission counters so ``/v1/stats`` can show
who is using the queue.

Everything here is in-memory per service process and guarded by one lock;
the durable queue itself is the campaign store.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from ..errors import ReproError
from ..runner.store import PRIORITIES, PRIORITY_INTERACTIVE

#: Default bound on not-yet-terminal (pending + running) serve points.
DEFAULT_MAX_QUEUE = 64

#: Default ``Retry-After`` hint (seconds) sent with a 429 refusal.
DEFAULT_RETRY_AFTER_S = 2.0


class BadRequestError(ReproError):
    """A client-side request problem, mapped to HTTP 400 -- never a 500."""


def normalize_priority(value: Any) -> str:
    """Validate a client-supplied priority tier (default ``interactive``).

    A service caller is by definition waiting for an answer, so the absent
    value means ``interactive``; bulk backfill must opt into ``batch``.
    Unknown tiers are a client error (400), listed explicitly.
    """
    if value is None:
        return PRIORITY_INTERACTIVE
    if not isinstance(value, str) or value not in PRIORITIES:
        raise BadRequestError(
            f"unknown priority {value!r}; expected one of {', '.join(PRIORITIES)}"
        )
    return value


class AdmissionDecision:
    """Outcome of one admission check (admitted, or refused with a hint)."""

    __slots__ = ("admitted", "reason", "retry_after_s")

    def __init__(
        self, admitted: bool, reason: str = "", retry_after_s: Optional[float] = None
    ) -> None:
        self.admitted = admitted
        self.reason = reason
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Queue-depth gate plus per-tier request accounting.

    ``max_queue`` bounds the number of not-yet-terminal points the serve
    campaign may hold; the *caller* supplies the current depth (a store
    query) so the controller itself stays storage-agnostic and trivially
    testable.  All counter updates are lock-guarded: the HTTP front-end
    calls in from one thread per request.
    """

    def __init__(
        self,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ) -> None:
        if max_queue < 1:
            raise ReproError("max_queue must be >= 1")
        if retry_after_s <= 0:
            raise ReproError("retry_after_s must be > 0")
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._hits = 0
        self._admitted: Dict[str, int] = {tier: 0 for tier in PRIORITIES}
        self._rejected: Dict[str, int] = {tier: 0 for tier in PRIORITIES}
        self._bad_requests = 0

    # -- decisions ----------------------------------------------------------------

    def admit(self, queue_depth: int, priority: str) -> AdmissionDecision:
        """Decide whether a cache-miss request may enqueue a new point."""
        with self._lock:
            if queue_depth >= self.max_queue:
                self._rejected[priority] = self._rejected.get(priority, 0) + 1
                return AdmissionDecision(
                    admitted=False,
                    reason=(
                        f"queue is full ({queue_depth}/{self.max_queue} points "
                        "in flight)"
                    ),
                    retry_after_s=self.retry_after_s,
                )
            self._admitted[priority] = self._admitted.get(priority, 0) + 1
            return AdmissionDecision(admitted=True)

    # -- accounting ---------------------------------------------------------------

    def record_hit(self) -> None:
        """Count one memo hit (no admission decision needed)."""
        with self._lock:
            self._hits += 1

    def record_bad_request(self) -> None:
        """Count one malformed request (mapped to 400)."""
        with self._lock:
            self._bad_requests += 1

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for ``/v1/stats``."""
        with self._lock:
            admitted = dict(self._admitted)
            rejected = dict(self._rejected)
            hits = self._hits
            bad = self._bad_requests
        misses = sum(admitted.values())
        answered = hits + misses
        return {
            "max_queue": self.max_queue,
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / answered) if answered else None,
            "admitted_by_priority": admitted,
            "rejected_by_priority": rejected,
            "rejected": sum(rejected.values()),
            "bad_requests": bad,
        }
