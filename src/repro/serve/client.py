"""Thin stdlib client for the ``repro serve`` HTTP API.

A deliberately small urllib wrapper used by the test suite, the benchmark
traffic generator and example scripts.  Every call returns a
:class:`ServeResponse` -- status code, parsed JSON payload, selected
headers -- and **never raises on HTTP error statuses**: a ``429`` or
``400`` is a first-class protocol answer the caller inspects, not an
exception.  Only transport-level failures (connection refused, timeout)
propagate, as :class:`~urllib.error.URLError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional

from ..errors import ReproError

#: Default per-request socket timeout (seconds).
DEFAULT_TIMEOUT_S = 10.0


class ServeResponse:
    """One HTTP exchange: status code, JSON payload, selected headers."""

    __slots__ = ("status", "payload", "headers")

    def __init__(
        self, status: int, payload: Dict[str, Any], headers: Dict[str, str]
    ) -> None:
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after_s(self) -> Optional[float]:
        """The ``Retry-After`` hint of a 429, if present."""
        value = self.headers.get("Retry-After")
        return None if value is None else float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServeResponse(status={self.status}, payload={self.payload!r})"


class ServeClient:
    """Client for one ``repro serve`` endpoint (``http://host:port``)."""

    def __init__(self, base_url: str, timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing -----------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> ServeResponse:
        url = f"{self.base_url}{path}"
        data = None if body is None else json.dumps(dict(body)).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                raw = response.read()
                status = response.status
                headers = dict(response.headers.items())
        except urllib.error.HTTPError as exc:
            # 4xx/5xx: still a JSON protocol answer -- hand it back.
            raw = exc.read()
            status = exc.code
            headers = dict(exc.headers.items()) if exc.headers else {}
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": f"non-JSON response body ({len(raw)} bytes)"}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return ServeResponse(status, payload, headers)

    # -- endpoints ----------------------------------------------------------------

    def plan(
        self, scenario: Mapping[str, Any], priority: Optional[str] = None
    ) -> ServeResponse:
        """``POST /v1/plan`` a scenario document (dict form)."""
        body: Dict[str, Any] = {"scenario": dict(scenario)}
        if priority is not None:
            body["priority"] = priority
        return self._request("POST", "/v1/plan", body)

    def plan_raw(self, body: bytes) -> ServeResponse:
        """``POST /v1/plan`` an arbitrary (possibly malformed) body."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/plan",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                raw = response.read()
                status = response.status
                headers = dict(response.headers.items())
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            status = exc.code
            headers = dict(exc.headers.items()) if exc.headers else {}
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "non-JSON response body"}
        return ServeResponse(status, payload, headers)

    def request_status(self, request_id: str) -> ServeResponse:
        """``GET /v1/requests/<id>``."""
        return self._request("GET", f"/v1/requests/{request_id}")

    def healthz(self) -> ServeResponse:
        """``GET /v1/healthz``."""
        return self._request("GET", "/v1/healthz")

    def stats(self) -> ServeResponse:
        """``GET /v1/stats``."""
        return self._request("GET", "/v1/stats")

    # -- conveniences -------------------------------------------------------------

    def wait_until_done(
        self,
        request_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.2,
    ) -> ServeResponse:
        """Poll a request until it reaches a terminal status.

        Returns the final status response (``done``/``failed``/``timed_out``).
        Raises :class:`ReproError` if the deadline passes first -- a test
        helper, so a hung queue fails loudly instead of blocking forever.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            response = self.request_status(request_id)
            status = response.payload.get("status")
            if response.status == 200 and status in ("done", "failed", "timed_out"):
                return response
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"request {request_id[:12]}... not terminal after {timeout_s:g}s "
                    f"(last: HTTP {response.status}, status {status!r})"
                )
            time.sleep(poll_s)


__all__ = ["DEFAULT_TIMEOUT_S", "ServeClient", "ServeResponse"]
