"""Synthetic closed-loop traffic generator for the planning service.

Drives ``n_clients`` threads against a running ``repro serve`` endpoint,
each in a closed loop: issue ``POST /v1/plan``, wait for the answer,
immediately issue the next -- the classic closed-loop load model, where
offered load adapts to service latency instead of overrunning the server.
Each client cycles through the supplied scenario documents; against a warm
catalog every request is a memo hit, so the measured latency distribution
is the service's floor (parse + digest + one indexed read).

The result is a :class:`TrafficReport` carrying the latency distribution
(:class:`~repro.telemetry.MetricStats`: p50/p90/p99) plus per-status
counts; the bench suite publishes p50/p99 into the bench-timings artifact.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from ..telemetry import MetricStats
from .client import ServeClient


class TrafficReport:
    """Outcome of one traffic run: latencies, status mix, wall-clock."""

    def __init__(
        self,
        latencies_s: List[float],
        status_counts: Dict[int, int],
        wall_time_s: float,
        n_clients: int,
    ) -> None:
        self.latencies_s = latencies_s
        self.status_counts = status_counts
        self.wall_time_s = wall_time_s
        self.n_clients = n_clients

    @property
    def n_requests(self) -> int:
        return len(self.latencies_s)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def latency_stats(self) -> MetricStats:
        """p50/p90/p99 (and friends) of the per-request latencies."""
        return MetricStats.from_samples("serve.request_latency_s", self.latencies_s)

    def as_dict(self) -> Dict[str, Any]:
        stats = self.latency_stats()
        return {
            "n_clients": self.n_clients,
            "n_requests": self.n_requests,
            "wall_time_s": self.wall_time_s,
            "throughput_rps": self.throughput_rps,
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "latency_s": stats.as_dict(),
        }


def run_traffic(
    base_url: str,
    scenarios: Sequence[Mapping[str, Any]],
    n_clients: int = 4,
    requests_per_client: int = 25,
    priority: Optional[str] = None,
    timeout_s: float = 30.0,
) -> TrafficReport:
    """Run a closed-loop traffic session and collect the latency distribution.

    Each of the ``n_clients`` threads issues ``requests_per_client`` plan
    requests back to back, cycling through ``scenarios`` (dict documents)
    starting at a per-client offset so concurrent clients spread across the
    catalog.  Transport errors propagate -- a refused connection should
    fail the benchmark, not vanish into the statistics.
    """
    if not scenarios:
        raise ConfigurationError("traffic needs at least one scenario document")
    if n_clients < 1 or requests_per_client < 1:
        raise ConfigurationError("n_clients and requests_per_client must be >= 1")

    documents = [dict(document) for document in scenarios]
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    statuses: List[List[int]] = [[] for _ in range(n_clients)]
    errors: List[BaseException] = []
    lock = threading.Lock()

    def client_loop(index: int) -> None:
        client = ServeClient(base_url, timeout_s=timeout_s)
        try:
            for step in range(requests_per_client):
                document = documents[(index + step) % len(documents)]
                start = time.perf_counter()
                response = client.plan(document, priority=priority)
                latencies[index].append(time.perf_counter() - start)
                statuses[index].append(response.status)
        except BaseException as exc:  # noqa: BLE001 -- surfaced to the caller
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(n_clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_time_s = time.perf_counter() - started

    if errors:
        raise errors[0]

    status_counts: Dict[int, int] = {}
    for client_statuses in statuses:
        for status in client_statuses:
            status_counts[status] = status_counts.get(status, 0) + 1
    return TrafficReport(
        latencies_s=[sample for client in latencies for sample in client],
        status_counts=status_counts,
        wall_time_s=wall_time_s,
        n_clients=n_clients,
    )


__all__ = ["TrafficReport", "run_traffic"]
