"""Planning-as-a-service: HTTP front-end over the campaign store.

``repro serve`` answers ``POST /v1/plan`` instantly from the store's
content-digest memo and enqueues misses as campaign points for a
``repro campaign worker`` fleet to drain.  See :mod:`repro.serve.app` for
the endpoint contract, :mod:`repro.serve.queue` for admission control and
priority tiers, :mod:`repro.serve.client` for the stdlib client, and
:mod:`repro.serve.traffic` for the closed-loop load generator.
"""

from .app import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_SERVE_CAMPAIGN,
    MAX_BODY_BYTES,
    SERVE_MAX_QUEUE_ENV,
    SERVE_PORT_ENV,
    ServeApp,
    create_server,
    normalize_scenario_document,
    open_serve_store,
)
from .client import ServeClient, ServeResponse
from .queue import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_RETRY_AFTER_S,
    AdmissionController,
    AdmissionDecision,
    BadRequestError,
    normalize_priority,
)
from .traffic import TrafficReport, run_traffic

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BadRequestError",
    "DEFAULT_HOST",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_PORT",
    "DEFAULT_RETRY_AFTER_S",
    "DEFAULT_SERVE_CAMPAIGN",
    "MAX_BODY_BYTES",
    "SERVE_MAX_QUEUE_ENV",
    "SERVE_PORT_ENV",
    "ServeApp",
    "ServeClient",
    "ServeResponse",
    "TrafficReport",
    "create_server",
    "normalize_priority",
    "normalize_scenario_document",
    "open_serve_store",
    "run_traffic",
]
