"""The CLI's logging-based output emitter.

``repro``'s user-facing output historically went through bare ``print``
calls; this module routes it through :mod:`logging` instead, with three
invariants:

* **Byte-identical default output.**  At the default level (``INFO``)
  every emitted line is exactly what ``print`` produced -- no level
  prefixes, no logger names, same stream, same line endings -- so scripts
  (and the test suite) that parse stdout keep working unchanged.
* **`REPRO_LOG_LEVEL` controls verbosity.**  ``DEBUG`` surfaces trace and
  cache diagnostics on stderr; ``WARNING``/``ERROR`` silence progress
  output while keeping errors.
* **Streams are resolved at emit time.**  Handlers look ``sys.stdout`` /
  ``sys.stderr`` up on every record instead of capturing them at import,
  so pytest's ``capsys`` and any other stream redirection see the output, and
  a ``BrokenPipeError`` from a closed pipe propagates to the caller (the
  CLI turns it into exit code 141) rather than being swallowed by
  logging's error handler.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Any, Optional

#: Environment variable selecting the CLI log level (default ``INFO``).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: All CLI output flows through this logger.
CLI_LOGGER_NAME = "repro.cli"


class _DynamicStreamHandler(logging.Handler):
    """Writes records to ``sys.<stream>`` as chosen per record, verbatim.

    The record's ``stream`` attribute ("stdout"/"stderr") picks the stream
    and its ``end`` attribute the line terminator, mirroring ``print``'s
    contract.  Exceptions -- notably ``BrokenPipeError`` -- propagate.
    """

    def emit(self, record: logging.LogRecord) -> None:
        stream = getattr(sys, getattr(record, "stream", "stderr"))
        stream.write(record.getMessage() + getattr(record, "end", "\n"))

    def handleError(self, record: logging.LogRecord) -> None:  # pragma: no cover
        raise


def resolve_level(value: Optional[str]) -> int:
    """Map a ``REPRO_LOG_LEVEL`` string to a logging level (default INFO)."""
    if not value:
        return logging.INFO
    text = value.strip().upper()
    if text.isdigit():
        return int(text)
    level = logging.getLevelName(text)
    return level if isinstance(level, int) else logging.INFO


def configure_cli_logging() -> logging.Logger:
    """(Re)configure the CLI logger from the environment and return it.

    Idempotent and cheap: called at every CLI entry so a test that flips
    ``REPRO_LOG_LEVEL`` between ``main()`` invocations sees the new level.
    """
    logger = logging.getLogger(CLI_LOGGER_NAME)
    logger.setLevel(resolve_level(os.environ.get(LOG_LEVEL_ENV)))
    logger.propagate = False
    if not any(isinstance(handler, _DynamicStreamHandler) for handler in logger.handlers):
        logger.addHandler(_DynamicStreamHandler())
    return logger


def emit_out(message: Any = "", end: str = "\n") -> None:
    """Print-compatible INFO output on stdout."""
    logger = logging.getLogger(CLI_LOGGER_NAME)
    logger.info("%s", message, extra={"stream": "stdout", "end": end})


def emit_err(message: Any = "", end: str = "\n") -> None:
    """Print-compatible INFO progress output on stderr."""
    logger = logging.getLogger(CLI_LOGGER_NAME)
    logger.info("%s", message, extra={"stream": "stderr", "end": end})


def emit_error(message: Any) -> None:
    """An error line on stderr (survives REPRO_LOG_LEVEL=ERROR)."""
    logger = logging.getLogger(CLI_LOGGER_NAME)
    logger.error("%s", message, extra={"stream": "stderr"})


def emit_diagnostic(message: Any) -> None:
    """A DEBUG diagnostic on stderr (visible under REPRO_LOG_LEVEL=DEBUG)."""
    logger = logging.getLogger(CLI_LOGGER_NAME)
    logger.debug("%s", message, extra={"stream": "stderr"})
