"""Contextvar-based tracing: spans, instant events, JSONL trace shards.

The tracer is the measurement substrate of the whole pipeline: every stage
of :mod:`repro.runner.stages`, every cache and store operation, and the
solver inner loops emit *spans* (named, attributed intervals) and *events*
(instant points) into a JSONL trace.  Three properties shape the design:

**Disabled means free.**  Tracing is off unless ``REPRO_TRACE=<path>`` is
set (or :func:`configure` is called).  When off, :func:`span` returns a
shared :data:`NULL_SPAN` singleton whose ``__enter__``/``__exit__``/``set``
are empty slots-only methods -- no allocation, no branching beyond one
``is None`` check, no file ever touched.  The instrumented hot paths cost
a few hundred nanoseconds per call, benchmark-asserted to stay under 5 %
of a cached catalog run.

**One shard per process.**  Every traced process -- the campaign parent
and each batch worker alike -- appends its events to a private shard
``<path>.shard-<pid>.jsonl``, so no cross-process file locking is ever
needed and a dying worker can at most lose its own unflushed tail.
:func:`merge_trace` (called by the batch runner and the CLI at drain time)
folds all shards plus any previously merged file into one ordered trace at
``<path>``.  Worker processes created by ``fork`` inherit the parent's
tracer; an ``os.register_at_fork`` hook discards the inherited buffer and
re-keys the shard path to the child's pid so shards never interleave.

**Timestamps are monotonic, comparable across processes.**  Each event's
``ts`` is ``time.perf_counter()`` (monotonic within the process) anchored
once per tracer to the wall clock, so merged shards sort into one coherent
timeline good to the cross-process clock skew (microseconds on one host).

Event schema (one JSON object per line)::

    {"type": "span",  "name": "solar", "id": "1234-7", "parent": "1234-3",
     "pid": 1234, "ts": 1754650000.123456, "dur": 1.25, "attrs": {...}}
    {"type": "event", "name": "greedy.step", "id": "1234-9",
     "parent": "1234-8", "pid": 1234, "ts": ..., "attrs": {...}}

``id`` is ``<pid>-<sequence>`` (globally unique within a trace), ``parent``
links to the enclosing span (possibly opened in the forking parent, so a
batch's worker scenarios hang off the parent's ``batch`` span), ``dur`` is
the span's duration in seconds, and ``attrs`` carries the instrumentation
attributes (cache hit/miss, candidate counts, solver figures, ...).
"""

from __future__ import annotations

import atexit
import json
import os
import time
from contextvars import ContextVar
from itertools import count
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]

#: Environment variable enabling tracing (its value is the trace path).
TRACE_ENV = "REPRO_TRACE"

#: Buffered events are flushed to the shard at the latest after this many.
FLUSH_EVERY = 512

#: The enclosing span id of the calling context (None at top level).
_CURRENT: ContextVar[Optional[str]] = ContextVar("repro_trace_current", default=None)


class NullSpan:
    """The do-nothing span handed out while tracing is disabled.

    A single shared instance (:data:`NULL_SPAN`) serves every call site;
    entering, exiting and :meth:`set` are empty methods on a slots-only
    class, so instrumentation left in hot paths costs almost nothing.
    """

    __slots__ = ()

    #: Discriminates the null span from a recording one, so call sites can
    #: gate *expensive* attribute collection (``stat()`` calls, array
    #: reductions) on ``sp.active`` while cheap attributes are set
    #: unconditionally.
    active = False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class Span:
    """A recording span: times an interval and links into the context tree."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start", "_token")

    active = True

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: Optional[str] = None
        self._start = 0.0
        self._token = None

    def __enter__(self) -> "Span":
        self.parent_id = _CURRENT.get()
        self._token = _CURRENT.set(self.span_id)
        self._tracer._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._record(self, elapsed)
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self


class Tracer:
    """Per-process trace recorder writing one JSONL shard.

    Instances are normally managed through the module-level state
    (:func:`configure` / :func:`active_tracer`); creating one directly is
    useful in tests.  Events are buffered in memory and flushed to the
    shard whenever the local span stack empties (one scenario's tree lands
    on disk as soon as it closes), every :data:`FLUSH_EVERY` events, and at
    interpreter exit.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.pid = os.getpid()
        # Wall-clock anchor: ts = _epoch + perf_counter() is monotonic
        # within the process and comparable across processes on one host.
        self._epoch = time.time() - time.perf_counter()
        self._sequence = count(1)
        self._events: List[dict] = []
        self._depth = 0

    # -- identity -----------------------------------------------------------------

    @property
    def shard_path(self) -> Path:
        """This process's private shard file."""
        return shard_path_for(self.path, self.pid)

    def _next_id(self) -> str:
        return f"{self.pid}-{next(self._sequence)}"

    def _now(self) -> float:
        return self._epoch + time.perf_counter()

    # -- recording ----------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a new span (use as a context manager)."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event under the current span."""
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "id": self._next_id(),
            "parent": _CURRENT.get(),
            "pid": self.pid,
            "ts": self._now(),
        }
        if attrs:
            record["attrs"] = attrs
        self._events.append(record)
        if len(self._events) >= FLUSH_EVERY:
            self.flush()

    def _record(self, span: Span, elapsed: float) -> None:
        record: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "pid": self.pid,
            "ts": self._epoch + span._start,
            "dur": elapsed,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._events.append(record)
        self._depth -= 1
        if self._depth <= 0 or len(self._events) >= FLUSH_EVERY:
            self.flush()

    # -- persistence --------------------------------------------------------------

    def flush(self) -> None:
        """Append the buffered events to the shard file."""
        if not self._events:
            return
        shard = self.shard_path
        if shard.parent and not shard.parent.exists():
            shard.parent.mkdir(parents=True, exist_ok=True)
        with open(shard, "a", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._events.clear()


# ---------------------------------------------------------------------------
# Module-level state: the process-wide tracer
# ---------------------------------------------------------------------------


class _State:
    __slots__ = ("tracer",)

    def __init__(self) -> None:
        self.tracer: Optional[Tracer] = None


_STATE = _State()


def configure(path: Optional[PathLike], set_env: bool = True) -> Optional[Tracer]:
    """Enable tracing to ``path`` (or disable it with ``None``).

    With ``set_env`` (the default) the :data:`TRACE_ENV` environment
    variable is kept in sync, so worker processes -- forked or spawned --
    inherit the setting and write their own shards next to ``path``.
    """
    previous = _STATE.tracer
    if previous is not None:
        previous.flush()
    if path is None:
        _STATE.tracer = None
        if set_env:
            os.environ.pop(TRACE_ENV, None)
        return None
    tracer = Tracer(path)
    _STATE.tracer = tracer
    if set_env:
        os.environ[TRACE_ENV] = str(tracer.path)
    return tracer


def configure_from_env() -> Optional[Tracer]:
    """Synchronise the tracer with ``$REPRO_TRACE`` (idempotent)."""
    value = os.environ.get(TRACE_ENV)
    current = _STATE.tracer
    if not value:
        if current is not None:
            configure(None, set_env=False)
        return None
    if current is not None and current.path == Path(value) and current.pid == os.getpid():
        return current
    return configure(value, set_env=False)


def active_tracer() -> Optional[Tracer]:
    """The recording tracer, or ``None`` while tracing is disabled."""
    return _STATE.tracer


def tracing_enabled() -> bool:
    """True when spans/events are being recorded."""
    return _STATE.tracer is not None


def span(name: str, **attrs: Any) -> Union[Span, NullSpan]:
    """Open a span under the active tracer (or the free null span)."""
    tracer = _STATE.tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def trace_event(name: str, **attrs: Any) -> None:
    """Record an instant event (no-op while tracing is disabled)."""
    tracer = _STATE.tracer
    if tracer is not None:
        tracer.event(name, **attrs)


def _flush_at_exit() -> None:
    tracer = _STATE.tracer
    if tracer is not None:
        tracer.flush()


atexit.register(_flush_at_exit)


def _reset_after_fork() -> None:
    """Re-key the inherited tracer to the child process.

    A forked child inherits the parent's tracer object *and* its buffered
    events; keeping either would duplicate the parent's history and write
    into the parent's shard.  Replace the tracer with a fresh one for the
    same trace path (new pid, new sequence, empty buffer).
    """
    parent_tracer = _STATE.tracer
    if parent_tracer is not None:
        _STATE.tracer = Tracer(parent_tracer.path)


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX always has it
    os.register_at_fork(after_in_child=_reset_after_fork)


# ---------------------------------------------------------------------------
# Shard aggregation
# ---------------------------------------------------------------------------


def shard_path_for(path: PathLike, pid: int) -> Path:
    """The shard file of process ``pid`` for the trace at ``path``."""
    target = Path(path)
    return target.with_name(f"{target.name}.shard-{pid}.jsonl")


def shard_paths(path: PathLike) -> List[Path]:
    """All shard files currently accompanying the trace at ``path``."""
    target = Path(path)
    if not target.parent.exists():
        return []
    return sorted(target.parent.glob(f"{target.name}.shard-*.jsonl"))


def read_trace(path: PathLike) -> List[dict]:
    """Read a JSONL trace (or shard), skipping malformed lines.

    A worker killed mid-write leaves at most one truncated trailing line;
    tolerating it keeps a crashed campaign's trace usable.
    """
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                events.append(record)
    return events


def iter_spans(events: List[dict]) -> Iterator[dict]:
    """The span records of a trace, in input order."""
    return (event for event in events if event.get("type") == "span")


def merge_trace(path: PathLike, remove_shards: bool = True) -> Optional[Path]:
    """Fold all shards (plus any earlier merged file) into one ordered trace.

    Returns the merged path, or ``None`` when there is nothing to merge.
    The merge is idempotent and incremental: re-running it after another
    batch appended new shards extends the existing merged trace, and events
    are ordered by timestamp so the file reads as one coherent timeline.
    """
    target = Path(path)
    events: List[dict] = []
    if target.exists():
        events.extend(read_trace(target))
    shards = shard_paths(target)
    for shard in shards:
        events.extend(read_trace(shard))
    if not events:
        return None
    events.sort(key=lambda event: (event.get("ts", 0.0), event.get("id", "")))
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")
    os.replace(tmp, target)
    if remove_shards:
        for shard in shards:
            try:
                shard.unlink()
            except OSError:
                pass
    return target


def merge_active_trace() -> Optional[Path]:
    """Flush the active tracer and merge its shards (no-op when disabled).

    The batch runner calls this after its worker pool has drained, and the
    CLI calls it before exiting, so a traced run always ends with a single
    merged ``<path>`` regardless of how many processes participated.
    """
    tracer = _STATE.tracer
    if tracer is None:
        return None
    tracer.flush()
    return merge_trace(tracer.path)


# Honour a pre-existing REPRO_TRACE as soon as telemetry is imported, so
# spawned worker processes (which import the package fresh) start tracing
# without any explicit hand-off from the parent.
configure_from_env()
