"""Counters and wall-time distributions rolled up from spans.

The tracer (:mod:`repro.telemetry.trace`) records *individual* intervals;
this module turns populations of them into the aggregate figures the rest
of the system reports: per-stage latency distributions (p50/p90/p99),
cache hit ratios, retry counts.  Everything is stdlib-only and small-n
exact -- samples are kept and sorted, not sketched, because a campaign
over the built-in catalog produces at most a few thousand samples per
metric.

Two consumers drive the shape of :class:`MetricStats`:

* the campaign runner persists one row per (kind, name) into the result
  store's ``metrics`` table after each run, which is what
  ``repro campaign status`` renders as the per-stage latency table;
* ``repro trace summary`` rolls a merged trace's spans up by name via
  :func:`rollup_spans` for its timing tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple


def quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending-sorted sample list."""
    if not sorted_samples:
        raise ValueError("quantile of an empty sample set")
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    position = q * (len(sorted_samples) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_samples) - 1)
    fraction = position - low
    return float(sorted_samples[low] * (1.0 - fraction) + sorted_samples[high] * fraction)


@dataclass(frozen=True)
class MetricStats:
    """Summary statistics of one metric: a counter or a sample distribution."""

    name: str
    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    @classmethod
    def from_samples(cls, name: str, samples: Iterable[float]) -> "MetricStats":
        """Distribution stats of a non-empty sample population."""
        ordered = sorted(float(sample) for sample in samples)
        if not ordered:
            raise ValueError(f"metric {name!r} has no samples")
        return cls(
            name=name,
            count=len(ordered),
            total=float(sum(ordered)),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=quantile(ordered, 0.50),
            p90=quantile(ordered, 0.90),
            p99=quantile(ordered, 0.99),
        )

    @classmethod
    def from_count(cls, name: str, value: float) -> "MetricStats":
        """A plain counter, stored with its value in every statistic slot."""
        number = float(value)
        return cls(
            name=name,
            count=int(number),
            total=number,
            minimum=number,
            maximum=number,
            p50=number,
            p90=number,
            p99=number,
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


class MetricsRegistry:
    """An in-process accumulator of counters and sample distributions."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._samples: Dict[str, List[float]] = {}

    def count(self, name: str, increment: float = 1.0) -> None:
        """Add ``increment`` to the named counter."""
        self._counters[name] = self._counters.get(name, 0.0) + increment

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the named distribution."""
        self._samples.setdefault(name, []).append(float(value))

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def stats(self, name: str) -> MetricStats:
        return MetricStats.from_samples(name, self._samples[name])

    def all_stats(self) -> Dict[str, MetricStats]:
        """Distribution stats for every observed metric, by name."""
        return {name: self.stats(name) for name in sorted(self._samples)}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": self.counters(),
            "distributions": {
                name: stats.as_dict() for name, stats in self.all_stats().items()
            },
        }


def rollup_spans(events: Iterable[dict]) -> MetricsRegistry:
    """Aggregate a trace's span durations and cache outcomes by span name.

    Every span contributes one duration sample under its name.  Cache spans
    additionally feed hit/miss counters (``cache.hits`` / ``cache.misses``)
    so a hit ratio can be derived, and spans that closed on an exception
    feed ``errors``.
    """
    registry = MetricsRegistry()
    for event in events:
        if event.get("type") != "span":
            continue
        name = event.get("name", "?")
        registry.observe(name, float(event.get("dur", 0.0)))
        attrs = event.get("attrs") or {}
        if name == "cache.get":
            registry.count("cache.hits" if attrs.get("hit") else "cache.misses")
        if "error" in attrs:
            registry.count("errors")
    return registry


def cache_hit_ratio(registry: MetricsRegistry) -> Tuple[float, int]:
    """The cache hit ratio and lookup count implied by rolled-up counters."""
    counters = registry.counters()
    hits = counters.get("cache.hits", 0.0)
    lookups = hits + counters.get("cache.misses", 0.0)
    if lookups <= 0:
        return 0.0, 0
    return hits / lookups, int(lookups)
