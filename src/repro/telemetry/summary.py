"""Trace rendering: per-stage timing trees and Chrome trace export.

Consumes merged JSONL traces produced by :mod:`repro.telemetry.trace` and
renders them two ways:

* :func:`render_summary` -- the ``repro trace summary`` view: an aggregated
  call tree (spans grouped by their name-path) with count, cumulative and
  *self* time (cumulative minus child spans) and per-path p50/max, followed
  by the slowest individual spans so outliers are one glance away.
* :func:`chrome_trace` -- the ``repro trace export --format chrome`` view:
  Chrome Trace Event Format JSON (complete ``"X"`` events in microseconds)
  loadable in ``chrome://tracing`` / Perfetto for flame-style inspection.

Both treat the trace as data, never re-reading the pipeline: they work on
any merged trace file, including one produced by a crashed campaign.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import quantile

#: Spans whose parent id is unknown (cross-shard loss, crashed parent) are
#: grafted onto this virtual root so the tree always renders completely.
_ORPHAN = "(orphan)"


def _span_index(events: Iterable[dict]) -> Tuple[List[dict], Dict[str, dict]]:
    spans = [event for event in events if event.get("type") == "span"]
    return spans, {span["id"]: span for span in spans if "id" in span}


def _name_path(span: dict, by_id: Dict[str, dict]) -> Tuple[str, ...]:
    """The span's ancestry as a name tuple, root first (cycle-guarded)."""
    names: List[str] = []
    seen = set()
    node: Optional[dict] = span
    while node is not None:
        node_id = node.get("id")
        if node_id in seen:
            break
        seen.add(node_id)
        names.append(node.get("name", "?"))
        parent_id = node.get("parent")
        if parent_id is None:
            break
        parent = by_id.get(parent_id)
        if parent is None:
            names.append(_ORPHAN)
            break
        node = parent
    return tuple(reversed(names))


class _PathNode:
    __slots__ = ("path", "count", "total", "self_time", "durations")

    def __init__(self, path: Tuple[str, ...]) -> None:
        self.path = path
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0
        self.durations: List[float] = []


def aggregate_tree(events: Iterable[dict]) -> List[_PathNode]:
    """Group spans by name-path and compute cumulative/self durations.

    Self time is each span's duration minus the summed durations of its
    direct children, clamped at zero (children measured in another process
    can slightly overlap the parent through clock skew).
    """
    spans, by_id = _span_index(events)
    child_time: Dict[str, float] = {}
    for span in spans:
        parent_id = span.get("parent")
        if parent_id is not None:
            child_time[parent_id] = child_time.get(parent_id, 0.0) + float(span.get("dur", 0.0))
    nodes: Dict[Tuple[str, ...], _PathNode] = {}
    for span in spans:
        path = _name_path(span, by_id)
        node = nodes.get(path)
        if node is None:
            node = nodes[path] = _PathNode(path)
        duration = float(span.get("dur", 0.0))
        node.count += 1
        node.total += duration
        node.durations.append(duration)
        node.self_time += max(0.0, duration - child_time.get(span.get("id", ""), 0.0))
    # Depth-first order: parents before children, siblings by descending total.
    ordered: List[_PathNode] = []

    def emit(prefix: Tuple[str, ...]) -> None:
        children = [
            node
            for path, node in nodes.items()
            if len(path) == len(prefix) + 1 and path[: len(prefix)] == prefix
        ]
        for node in sorted(children, key=lambda n: -n.total):
            ordered.append(node)
            emit(node.path)

    emit(())
    # Paths whose intermediate levels never appear as spans themselves
    # (possible with orphans) would be skipped by the walk; append them.
    listed = {node.path for node in ordered}
    ordered.extend(
        node for path, node in sorted(nodes.items()) if path not in listed
    )
    return ordered


def render_summary(events: List[dict], slowest: int = 5) -> str:
    """Render the aggregated timing tree plus the slowest individual spans."""
    spans, _ = _span_index(events)
    if not spans:
        return "trace: no spans recorded"
    pids = sorted({span.get("pid") for span in spans if span.get("pid") is not None})
    n_events = sum(1 for event in events if event.get("type") == "event")
    lines = [
        f"trace: {len(spans)} span(s), {n_events} event(s), {len(pids)} process(es)"
    ]
    header = f"  {'span':<44} {'count':>6} {'total s':>9} {'self s':>9} {'p50 s':>9} {'max s':>9}"
    lines.append(header)
    for node in aggregate_tree(events):
        indent = "  " * (len(node.path) - 1)
        label = indent + node.path[-1]
        if len(label) > 44:
            label = label[:41] + "..."
        ordered = sorted(node.durations)
        lines.append(
            f"  {label:<44} {node.count:>6} {node.total:>9.3f} {node.self_time:>9.3f}"
            f" {quantile(ordered, 0.50):>9.3f} {ordered[-1]:>9.3f}"
        )
    if slowest > 0:
        ranked = sorted(spans, key=lambda span: -float(span.get("dur", 0.0)))[:slowest]
        lines.append(f"  slowest {len(ranked)} span(s):")
        for rank, span in enumerate(ranked, start=1):
            attrs = span.get("attrs") or {}
            detail = ", ".join(f"{key}={attrs[key]}" for key in sorted(attrs)[:3])
            suffix = f" ({detail})" if detail else ""
            lines.append(
                f"    {rank}. {span.get('name', '?')} {float(span.get('dur', 0.0)):.3f}s"
                f" pid={span.get('pid')}{suffix}"
            )
    return "\n".join(lines)


def chrome_trace(events: List[dict]) -> Dict[str, Any]:
    """Convert a trace to Chrome Trace Event Format (``chrome://tracing``).

    Spans become complete (``"ph": "X"``) events and instant events become
    ``"ph": "i"``; timestamps are rebased to the earliest event and scaled
    to microseconds, as the format requires.
    """
    if events:
        base = min(float(event.get("ts", 0.0)) for event in events)
    else:
        base = 0.0
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        pid = event.get("pid", 0)
        record: Dict[str, Any] = {
            "name": event.get("name", "?"),
            "pid": pid,
            "tid": pid,
            "ts": (float(event.get("ts", 0.0)) - base) * 1e6,
            "args": dict(event.get("attrs") or {}),
        }
        if event.get("type") == "span":
            record["ph"] = "X"
            record["dur"] = float(event.get("dur", 0.0)) * 1e6
            record["cat"] = "span"
        elif event.get("type") == "event":
            record["ph"] = "i"
            record["s"] = "t"
            record["cat"] = "event"
        else:
            continue
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
