"""``repro.telemetry``: stdlib-only spans, metrics, and trace aggregation.

The observability layer of the pipeline, in four pieces:

* :mod:`~repro.telemetry.trace` -- a contextvar-based tracer.  ``with
  span("solar", **attrs):`` instruments the pipeline stages, cache and
  store operations, and solver inner loops; events land as JSONL with
  monotonic timestamps, parent ids and process ids.  Disabled by default
  with near-zero overhead; enabled via ``REPRO_TRACE=<path>`` or the
  CLI's ``--trace``.  Worker processes write per-process shards which
  :func:`merge_trace` folds into one ordered timeline.
* :mod:`~repro.telemetry.metrics` -- counters/distribution rollups
  (p50/p90/p99) persisted into the campaign store's ``metrics`` table.
* :mod:`~repro.telemetry.summary` -- ``repro trace summary`` timing trees
  and ``chrome://tracing`` export.
* :mod:`~repro.telemetry.log` -- the CLI's logging-based output emitter
  honouring ``REPRO_LOG_LEVEL``.

Nothing here imports beyond the standard library, and nothing else in
:mod:`repro` is allowed to depend on telemetry *state*: every call site
works identically (minus the trace) when tracing is disabled.
"""

from __future__ import annotations

from .log import (
    CLI_LOGGER_NAME,
    LOG_LEVEL_ENV,
    configure_cli_logging,
    emit_diagnostic,
    emit_err,
    emit_error,
    emit_out,
    resolve_level,
)
from .metrics import MetricsRegistry, MetricStats, cache_hit_ratio, quantile, rollup_spans
from .summary import aggregate_tree, chrome_trace, render_summary
from .trace import (
    NULL_SPAN,
    TRACE_ENV,
    NullSpan,
    Span,
    Tracer,
    active_tracer,
    configure,
    configure_from_env,
    iter_spans,
    merge_active_trace,
    merge_trace,
    read_trace,
    shard_path_for,
    shard_paths,
    span,
    trace_event,
    tracing_enabled,
)

__all__ = [
    "CLI_LOGGER_NAME",
    "LOG_LEVEL_ENV",
    "MetricStats",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "TRACE_ENV",
    "Tracer",
    "active_tracer",
    "aggregate_tree",
    "cache_hit_ratio",
    "chrome_trace",
    "configure",
    "configure_cli_logging",
    "configure_from_env",
    "emit_diagnostic",
    "emit_err",
    "emit_error",
    "emit_out",
    "iter_spans",
    "merge_active_trace",
    "merge_trace",
    "quantile",
    "read_trace",
    "render_summary",
    "resolve_level",
    "rollup_spans",
    "shard_path_for",
    "shard_paths",
    "span",
    "trace_event",
    "tracing_enabled",
]
