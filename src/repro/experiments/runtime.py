"""Experiment E8: placement runtime scaling.

The paper reports that "the execution time of the placement algorithm is
proportional to the number of valid grid elements and to the number of
panels to be placed, and required less than 120 s under all configurations".
This driver measures the greedy placer's runtime across a sweep of grid
sizes and module counts on synthetic roofs so the scaling claim can be
checked on the reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from ..core import default_topology
from ..core.problem import FloorplanProblem
from ..errors import ConfigurationError
from ..gis import build_roof_scene, make_roof_grid, simple_residential_roof, suitable_grid_for_scene
from ..pv.datasheet import PV_MF165EB3
from ..runner.solvers import solve
from ..solar import SolarSimulationConfig, TimeGrid, compute_roof_solar_field
from ..weather import SyntheticWeatherConfig, generate_weather


@dataclass(frozen=True)
class RuntimeSample:
    """One point of the runtime sweep."""

    roof_width_m: float
    n_valid_cells: int
    n_modules: int
    placement_runtime_s: float
    pipeline_runtime_s: float


def runtime_sweep(
    roof_widths_m: tuple = (12.0, 20.0, 32.0),
    module_counts: tuple = (8, 16),
    grid_pitch: float = 0.2,
    time_step_minutes: float = 120.0,
    day_stride: int = 30,
    seed: int = 3,
    solver: str = "greedy",
) -> List[RuntimeSample]:
    """Measure placement runtime over roof sizes and module counts.

    Small time grids are used on purpose: the sweep measures the *placement*
    cost (which depends on Ng and N), not the solar simulation cost.  The
    ``solver`` name selects any registered placement algorithm; the default
    reproduces the paper's greedy sweep.
    """
    if not roof_widths_m or not module_counts:
        raise ConfigurationError("at least one roof width and module count are required")

    samples: List[RuntimeSample] = []
    time_grid = TimeGrid(step_minutes=time_step_minutes, day_stride=day_stride)
    weather = generate_weather(time_grid, SyntheticWeatherConfig(seed=seed))
    solar_config = SolarSimulationConfig(n_horizon_sectors=16, horizon_max_distance_m=30.0)

    for width in roof_widths_m:
        spec = simple_residential_roof(
            name=f"sweep-{width:.0f}",
            width_m=float(width),
            depth_m=max(6.0, width / 3.0),
            tilt_deg=26.0,
            azimuth_deg=10.0,
            n_obstacles=3,
            seed=seed,
        )
        pipeline_start = time.perf_counter()
        scene = build_roof_scene(spec, dsm_pitch=0.4)
        grid = make_roof_grid(scene, pitch=grid_pitch)
        grid = suitable_grid_for_scene(scene, grid)
        solar = compute_roof_solar_field(scene, grid, weather, solar_config)
        pipeline_runtime = time.perf_counter() - pipeline_start

        for n_modules in module_counts:
            topology = default_topology(n_modules, n_series=min(8, n_modules))
            problem = FloorplanProblem(
                grid=grid,
                solar=solar,
                n_modules=n_modules,
                topology=topology,
                datasheet=PV_MF165EB3,
                label=f"runtime-{width:.0f}-{n_modules}",
            )
            result = solve(problem, solver)
            samples.append(
                RuntimeSample(
                    roof_width_m=float(width),
                    n_valid_cells=grid.n_valid,
                    n_modules=n_modules,
                    placement_runtime_s=result.runtime_s,
                    pipeline_runtime_s=pipeline_runtime,
                )
            )
    return samples


def summarize_runtime(samples: List[RuntimeSample]) -> dict:
    """Aggregate figures of a runtime sweep (max/mean placement time)."""
    if not samples:
        raise ConfigurationError("cannot summarise an empty runtime sweep")
    runtimes = [sample.placement_runtime_s for sample in samples]
    return {
        "n_samples": len(samples),
        "max_placement_runtime_s": max(runtimes),
        "mean_placement_runtime_s": sum(runtimes) / len(runtimes),
        "max_n_valid": max(sample.n_valid_cells for sample in samples),
        "paper_budget_s": 120.0,
    }
