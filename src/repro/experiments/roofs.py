"""Synthetic reconstructions of the paper's three case-study roofs.

The paper evaluates its floorplanner on the lean-to roofs of three adjacent
industrial buildings in Turin (~49-60 m x 10-12 m, facing S/S-W, 26 degrees
of tilt), whose LiDAR DSM and weather traces are proprietary.  The
reconstructions below are parametric stand-ins engineered to match the
published characteristics:

* grid dimensions W x L of Table I (287x51, 298x51, 298x52 elements of
  20 cm), hence the same facet sizes;
* a number of valid grid elements Ng in the same range (Roof 1 loses a large
  area to pipe racks, Roofs 2/3 only to scattered equipment);
* spatially non-uniform irradiance, with the least irradiated elements near
  one end of each roof (adjacent taller structures and the obstacles
  themselves cast the shadows that create the gradient of Figure 6(b)).

Absolute energy numbers therefore differ from Table I (different climate
realisation), but the structure of the comparison -- who wins, by roughly
how much, and why -- is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..constants import (
    CASE_STUDY_AZIMUTH,
    CASE_STUDY_SERIES_LENGTH,
    CASE_STUDY_TILT,
    DEFAULT_GRID_PITCH,
)
from ..errors import ConfigurationError
from ..geometry import Polygon
from ..gis import (
    AdjacentStructure,
    RoofScene,
    RoofSpec,
    chimney,
    hvac_unit,
    pipe_rack,
    scattered_vents,
    skylight_row,
)
from ..gis.gridding import RoofGrid
from ..solar import (
    HorizonMap,
    RoofSolarField,
    SolarSimulationConfig,
    TimeGrid,
)
from ..weather import SyntheticWeatherConfig, WeatherSeries, generate_weather


@dataclass(frozen=True)
class CaseStudyConfig:
    """Scale and resolution knobs of the case-study experiments.

    ``scale`` shrinks the roofs (and obstacle layout) uniformly so tests can
    exercise the full pipeline on small instances; 1.0 reproduces the
    paper-sized roofs.  The time base defaults to an hourly simulation of
    every 7th day, which keeps the benchmarks laptop-friendly; pass
    ``time_step_minutes=15, day_stride=1`` for the paper's full resolution.
    """

    scale: float = 1.0
    grid_pitch: float = DEFAULT_GRID_PITCH
    dsm_pitch: float = 0.4
    time_step_minutes: float = 60.0
    day_stride: int = 7
    weather_seed: int = 7
    series_length: int = CASE_STUDY_SERIES_LENGTH
    solar: SolarSimulationConfig = field(default_factory=SolarSimulationConfig)

    def __post_init__(self) -> None:
        if not 0.05 <= self.scale <= 2.0:
            raise ConfigurationError("scale must be within [0.05, 2.0]")
        if self.grid_pitch <= 0 or self.dsm_pitch <= 0:
            raise ConfigurationError("grid and DSM pitches must be positive")

    def time_grid(self) -> TimeGrid:
        """The time base implied by the configuration."""
        return TimeGrid(step_minutes=self.time_step_minutes, day_stride=self.day_stride)


#: One roof penetration (vent, exhaust, conduit stub) every this many square
#: metres of facet -- typical clutter density of an equipped industrial roof.
_VENT_DENSITY_M2 = 10.0


def _vent_count(width_m: float, depth_m: float) -> int:
    """Number of scattered vents for a roof of the given size."""
    return max(4, int(round(width_m * depth_m / _VENT_DENSITY_M2)))

def _eave_parapet(
    width_m: float, height_m: float = 0.6, thickness_m: float = 0.4
) -> AdjacentStructure:
    """Perimeter parapet running along the eave (south edge) of the facet.

    Industrial roofs carry a safety parapet along the perimeter; at low and
    medium sun elevations it shades the first metres of roof behind it, which
    is why the near-eave rows of the paper's irradiance maps are not the
    brightest ones.
    """
    polygon = Polygon.rectangle(-0.5, -thickness_m, width_m + 0.5, 0.0)
    return AdjacentStructure(name="eave-parapet", polygon=polygon, height_m=height_m)


def _penthouse(u: float, v: float, side_m: float = 3.6, height_m: float = 2.8):
    """A rooftop plant/stair room: a large obstacle in the middle of the facet."""
    return hvac_unit(u, v, side_m=side_m, height_m=height_m)

def _neighbour_building(
    width_m: float,
    depth_m: float,
    u_center: float,
    distance_south_m: float,
    footprint_w_m: float,
    footprint_d_m: float,
    height_m: float,
) -> AdjacentStructure:
    """A neighbouring (taller) building standing south of the eave.

    The paper's roofs sit in a dense industrial district; buildings across
    the yard shade broad swaths of the facets at low sun elevations, which is
    the large-scale component of the irradiance gradients of Figure 6(b).
    ``distance_south_m`` is the gap between the eave and the neighbour's
    near wall; ``height_m`` is the neighbour's roof height above the eave.
    """
    u0 = u_center - footprint_w_m / 2.0
    v0 = -(distance_south_m + footprint_d_m)
    polygon = Polygon.rectangle(u0, v0, u0 + footprint_w_m, -distance_south_m)
    return AdjacentStructure(name="neighbour-building", polygon=polygon, height_m=height_m)


def _tall_section(
    width_m: float, depth_m: float, side: str, extent_m: float, height_m: float
) -> AdjacentStructure:
    """A taller building section adjacent to one side of the roof facet."""
    if side == "east":
        polygon = Polygon.rectangle(width_m, -2.0, width_m + extent_m, depth_m + 2.0)
    elif side == "west":
        polygon = Polygon.rectangle(-extent_m, -2.0, 0.0, depth_m + 2.0)
    elif side == "ridge":
        polygon = Polygon.rectangle(-2.0, depth_m, width_m + 2.0, depth_m + extent_m)
    else:
        raise ConfigurationError(f"unknown side {side!r}")
    return AdjacentStructure(name=f"tall-section-{side}", polygon=polygon, height_m=height_m)


def roof1_spec(scale: float = 1.0) -> RoofSpec:
    """Roof 1: large pipe racks consume much of the surface (smallest Ng)."""
    width = 57.4 * scale
    depth = 10.2 * scale
    return RoofSpec(
        name="roof1",
        width_m=width,
        depth_m=depth,
        tilt_deg=CASE_STUDY_TILT,
        azimuth_deg=CASE_STUDY_AZIMUTH,
        eave_height_m=7.0,
        edge_setback_m=0.4 * scale,
        obstacles=(
            pipe_rack(
                0.12 * width,
                0.55 * depth,
                length_m=0.42 * width,
                width_m=2.0 * scale,
                height_m=1.3,
            ),
            pipe_rack(
                0.58 * width,
                0.20 * depth,
                length_m=0.34 * width,
                width_m=1.8 * scale,
                height_m=1.2,
            ),
            chimney(0.30 * width, 0.85 * depth, side_m=max(0.8 * scale, 0.4), height_m=1.8),
            chimney(0.72 * width, 0.80 * depth, side_m=max(0.8 * scale, 0.4), height_m=1.6),
            hvac_unit(0.88 * width, 0.45 * depth, side_m=max(2.2 * scale, 0.8), height_m=1.5),
            _penthouse(0.42 * width, 0.40 * depth, side_m=max(3.4 * scale, 1.0), height_m=2.8),
        )
        + scattered_vents(
            width,
            depth,
            n_vents=_vent_count(width, depth),
            seed=11,
            margin_m=1.0 * scale,
            height_range_m=(0.6, 1.3),
        ),
        adjacent_structures=(
            _tall_section(width, depth, "east", extent_m=8.0 * scale, height_m=4.5),
            _tall_section(width, depth, "ridge", extent_m=5.0 * scale, height_m=2.0),
            _eave_parapet(width, height_m=0.6),
            _neighbour_building(
                width,
                depth,
                u_center=0.30 * width,
                distance_south_m=7.0 * scale,
                footprint_w_m=0.35 * width,
                footprint_d_m=12.0 * scale,
                height_m=5.5,
            ),
            _neighbour_building(
                width,
                depth,
                u_center=0.80 * width,
                distance_south_m=10.0 * scale,
                footprint_w_m=0.25 * width,
                footprint_d_m=10.0 * scale,
                height_m=4.0,
            ),
        ),
        surface_roughness_m=0.15,
        roughness_correlation_m=max(1.2 * scale, 0.6),
        roughness_seed=101,
    )


def roof2_spec(scale: float = 1.0) -> RoofSpec:
    """Roof 2: scattered equipment only; the largest usable area."""
    width = 59.6 * scale
    depth = 10.2 * scale
    return RoofSpec(
        name="roof2",
        width_m=width,
        depth_m=depth,
        tilt_deg=CASE_STUDY_TILT,
        azimuth_deg=CASE_STUDY_AZIMUTH,
        eave_height_m=7.0,
        edge_setback_m=0.4 * scale,
        obstacles=(
            chimney(0.18 * width, 0.75 * depth, side_m=max(0.9 * scale, 0.4), height_m=1.8),
            chimney(0.47 * width, 0.82 * depth, side_m=max(0.8 * scale, 0.4), height_m=1.5),
            hvac_unit(0.67 * width, 0.30 * depth, side_m=max(2.4 * scale, 0.8), height_m=1.6),
            skylight_row(
                0.78 * width,
                0.60 * depth,
                length_m=0.12 * width,
                width_m=1.2 * scale,
                height_m=0.5,
            ),
            _penthouse(0.32 * width, 0.45 * depth, side_m=max(3.6 * scale, 1.0), height_m=2.9),
            _penthouse(0.58 * width, 0.62 * depth, side_m=max(3.0 * scale, 1.0), height_m=2.6),
        )
        + scattered_vents(
            width,
            depth,
            n_vents=_vent_count(width, depth),
            seed=22,
            margin_m=1.0 * scale,
            height_range_m=(0.6, 1.3),
        ),
        adjacent_structures=(
            _tall_section(width, depth, "east", extent_m=7.0 * scale, height_m=5.0),
            _eave_parapet(width, height_m=0.65),
            _neighbour_building(
                width,
                depth,
                u_center=0.55 * width,
                distance_south_m=8.0 * scale,
                footprint_w_m=0.40 * width,
                footprint_d_m=12.0 * scale,
                height_m=6.0,
            ),
            _neighbour_building(
                width,
                depth,
                u_center=0.12 * width,
                distance_south_m=6.0 * scale,
                footprint_w_m=0.20 * width,
                footprint_d_m=10.0 * scale,
                height_m=4.5,
            ),
        ),
        surface_roughness_m=0.14,
        roughness_correlation_m=max(1.2 * scale, 0.6),
        roughness_seed=202,
    )


def roof3_spec(scale: float = 1.0) -> RoofSpec:
    """Roof 3: similar to Roof 2 with a vent row and a western obstruction."""
    width = 59.6 * scale
    depth = 10.4 * scale
    return RoofSpec(
        name="roof3",
        width_m=width,
        depth_m=depth,
        tilt_deg=CASE_STUDY_TILT,
        azimuth_deg=CASE_STUDY_AZIMUTH,
        eave_height_m=7.0,
        edge_setback_m=0.4 * scale,
        obstacles=(
            chimney(0.25 * width, 0.80 * depth, side_m=max(0.9 * scale, 0.4), height_m=1.7),
            chimney(0.55 * width, 0.78 * depth, side_m=max(0.8 * scale, 0.4), height_m=1.6),
            skylight_row(
                0.38 * width,
                0.35 * depth,
                length_m=0.15 * width,
                width_m=1.3 * scale,
                height_m=0.5,
            ),
            hvac_unit(0.84 * width, 0.55 * depth, side_m=max(2.6 * scale, 0.8), height_m=1.7),
            _penthouse(0.16 * width, 0.50 * depth, side_m=max(3.4 * scale, 1.0), height_m=2.8),
            _penthouse(0.66 * width, 0.40 * depth, side_m=max(3.2 * scale, 1.0), height_m=2.7),
        )
        + scattered_vents(
            width,
            depth,
            n_vents=_vent_count(width, depth),
            seed=33,
            margin_m=1.0 * scale,
            height_range_m=(0.6, 1.3),
        ),
        adjacent_structures=(
            _tall_section(width, depth, "east", extent_m=6.0 * scale, height_m=4.0),
            _tall_section(width, depth, "west", extent_m=3.0 * scale, height_m=2.5),
            _eave_parapet(width, height_m=0.6),
            _neighbour_building(
                width,
                depth,
                u_center=0.40 * width,
                distance_south_m=7.0 * scale,
                footprint_w_m=0.30 * width,
                footprint_d_m=12.0 * scale,
                height_m=5.0,
            ),
            _neighbour_building(
                width,
                depth,
                u_center=0.85 * width,
                distance_south_m=9.0 * scale,
                footprint_w_m=0.25 * width,
                footprint_d_m=10.0 * scale,
                height_m=5.5,
            ),
        ),
        surface_roughness_m=0.16,
        roughness_correlation_m=max(1.2 * scale, 0.6),
        roughness_seed=303,
    )


def case_study_specs(scale: float = 1.0) -> Dict[str, RoofSpec]:
    """The three case-study roof specifications, keyed by name."""
    return {
        "roof1": roof1_spec(scale),
        "roof2": roof2_spec(scale),
        "roof3": roof3_spec(scale),
    }


@dataclass
class CaseStudy:
    """Everything needed to run placement experiments on one roof."""

    name: str
    config: CaseStudyConfig
    scene: RoofScene
    grid: RoofGrid
    weather: WeatherSeries
    solar: RoofSolarField
    horizon: HorizonMap

    @property
    def n_valid(self) -> int:
        """Number of valid grid elements (Table I column Ng)."""
        return self.grid.n_valid


def prepare_case_study(
    spec: RoofSpec,
    config: CaseStudyConfig | None = None,
    weather: Optional[WeatherSeries] = None,
    cache: "StageCache | None" = None,
) -> CaseStudy:
    """Build the scene, suitable grid, weather and solar field for one roof.

    This is the end-to-end "solar data extraction" pipeline of the paper's
    Section IV applied to a synthetic roof; passing the same ``weather``
    object to several roofs mimics the paper's setup where the three
    adjacent buildings share the same weather station.  With a ``cache``
    the expensive stages (scene, suitable grid, horizon map, solar field)
    are memoised on disk through :mod:`repro.runner` and reused by any later
    run -- experiments, scenarios or benchmarks -- sharing the same inputs.
    """
    from ..runner.cache import StageCache
    from ..runner.stages import (
        cached_horizon_map,
        cached_scene,
        cached_solar_field,
        cached_suitable_grid,
    )

    cfg = config if config is not None else CaseStudyConfig()
    stage_cache = cache if cache is not None else StageCache(enabled=False)

    scene, _ = cached_scene(spec, cfg.dsm_pitch, stage_cache)
    grid, _ = cached_suitable_grid(spec, scene, cfg.dsm_pitch, cfg.grid_pitch, stage_cache)

    if weather is None:
        weather_config = SyntheticWeatherConfig(seed=cfg.weather_seed)
        weather = generate_weather(cfg.time_grid(), weather_config)

    horizon, _ = cached_horizon_map(spec, scene, cfg.dsm_pitch, cfg.solar, stage_cache)
    solar, _ = cached_solar_field(
        spec,
        scene,
        grid,
        weather,
        cfg.solar,
        cfg.dsm_pitch,
        cfg.grid_pitch,
        stage_cache,
        horizon_map=horizon,
    )
    return CaseStudy(
        name=spec.name,
        config=cfg,
        scene=scene,
        grid=solar.grid,
        weather=weather,
        solar=solar,
        horizon=horizon,
    )


def prepare_all_case_studies(
    config: CaseStudyConfig | None = None,
    scale: float | None = None,
    cache: "StageCache | None" = None,
) -> Dict[str, CaseStudy]:
    """Prepare the three case-study roofs sharing one weather trace."""
    cfg = config if config is not None else CaseStudyConfig()
    effective_scale = scale if scale is not None else cfg.scale
    weather = generate_weather(cfg.time_grid(), SyntheticWeatherConfig(seed=cfg.weather_seed))
    studies = {}
    for name, spec in case_study_specs(effective_scale).items():
        studies[name] = prepare_case_study(spec, cfg, weather, cache=cache)
    return studies
