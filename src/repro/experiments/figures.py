"""Experiment drivers for the paper's figures (E1, E2, E3, E5, E6).

Each function regenerates the *data* behind one figure -- curves, maps, or
placement layouts -- and returns it in plain numpy/dict form so benchmarks
can print the series and tests can assert their qualitative shape.  (The
paper shows raster images; in a plotting-free environment the arrays plus
the ASCII renderings of :mod:`repro.analysis.maps` are the equivalents.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis.maps import ascii_heatmap, placement_ascii, spatial_variation_coefficient
from ..core import greedy_floorplan, traditional_floorplan
from ..core.evaluation import compare_placements
from ..errors import ConfigurationError
from ..pv.cell import SingleDiodeCell, reference_cell_for_module
from ..pv.module import EmpiricalModuleModel, paper_module_model
from ..pv.wiring import WiringSpec, annual_energy_loss_wh, resistive_power_loss
from .roofs import CaseStudy
from .table1 import Table1Config, build_problem


# ---------------------------------------------------------------------------
# E1 -- Figure 2(a): cell I-V curves vs irradiance and temperature
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IVCurveFamily:
    """A family of I-V curves at several irradiance / temperature points."""

    irradiances: tuple
    temperatures: tuple
    curves: Dict[tuple, tuple]

    def curve(self, irradiance: float, temperature: float) -> tuple:
        """The (voltages, currents) arrays of one condition."""
        return self.curves[(irradiance, temperature)]


def figure2_iv_curves(
    cell: SingleDiodeCell | None = None,
    irradiances: tuple = (200.0, 400.0, 600.0, 800.0, 1000.0),
    temperatures: tuple = (25.0, 50.0, 75.0),
) -> IVCurveFamily:
    """Cell I-V curves across irradiance (fixed T) and temperature (fixed G)."""
    device = cell if cell is not None else reference_cell_for_module()
    curves: Dict[tuple, tuple] = {}
    for irradiance in irradiances:
        curves[(irradiance, temperatures[0])] = device.iv_curve(irradiance, temperatures[0])
    for temperature in temperatures:
        curves[(irradiances[-1], temperature)] = device.iv_curve(irradiances[-1], temperature)
    return IVCurveFamily(
        irradiances=tuple(irradiances), temperatures=tuple(temperatures), curves=curves
    )


# ---------------------------------------------------------------------------
# E2 -- Figure 3: module power characteristics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModuleCharacteristics:
    """Normalised Voc/Isc/Pmax vs irradiance and vs temperature."""

    irradiances: np.ndarray
    voc_vs_g: np.ndarray
    isc_vs_g: np.ndarray
    pmax_vs_g: np.ndarray
    temperatures: np.ndarray
    voc_vs_t: np.ndarray
    isc_vs_t: np.ndarray
    pmax_vs_t: np.ndarray


def figure3_module_characteristics(
    model: EmpiricalModuleModel | None = None,
    irradiances: np.ndarray | None = None,
    temperatures: np.ndarray | None = None,
) -> ModuleCharacteristics:
    """Reproduce the normalised characteristic curves of the paper's Figure 3."""
    module = model if model is not None else paper_module_model()
    g = irradiances if irradiances is not None else np.linspace(100.0, 1000.0, 19)
    t = temperatures if temperatures is not None else np.linspace(0.0, 75.0, 16)

    voc_g, isc_g, pmax_g = module.normalized_characteristics(g, cell_temperature_c=25.0)

    g_stc = np.full_like(t, 1000.0)
    voc_t = module.open_circuit_voltage(g_stc, t) / module.datasheet.v_oc_ref
    isc_t = module.short_circuit_current(g_stc, t) / module.datasheet.i_sc_ref
    pmax_t = module.power_at_cell_temperature(g_stc, t) / module.datasheet.p_max_ref

    return ModuleCharacteristics(
        irradiances=np.asarray(g, dtype=float),
        voc_vs_g=voc_g,
        isc_vs_g=isc_g,
        pmax_vs_g=pmax_g,
        temperatures=np.asarray(t, dtype=float),
        voc_vs_t=voc_t,
        isc_vs_t=isc_t,
        pmax_vs_t=pmax_t,
    )


# ---------------------------------------------------------------------------
# E3 -- Figure 4 / Section V-C: wiring overhead characterisation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverheadCharacterisation:
    """Wiring overhead figures of merit as a function of extra cable length."""

    lengths_m: np.ndarray
    power_loss_w: np.ndarray
    annual_loss_wh: np.ndarray
    cost: np.ndarray
    loss_per_metre_w: float


def overhead_characterisation(
    lengths_m: np.ndarray | None = None,
    current_a: float = 4.0,
    spec: WiringSpec | None = None,
) -> OverheadCharacterisation:
    """Power/energy/cost overhead vs extra cable length (paper Section V-C)."""
    wiring = spec if spec is not None else WiringSpec()
    lengths = lengths_m if lengths_m is not None else np.linspace(0.0, 40.0, 21)
    power = np.array(
        [resistive_power_loss(float(length), current_a, wiring) for length in lengths]
    )
    energy = np.array(
        [annual_energy_loss_wh(float(length), current_a, spec=wiring) for length in lengths]
    )
    cost = lengths * wiring.cost_per_m
    return OverheadCharacterisation(
        lengths_m=np.asarray(lengths, dtype=float),
        power_loss_w=power,
        annual_loss_wh=energy,
        cost=cost,
        loss_per_metre_w=resistive_power_loss(1.0, current_a, wiring),
    )


# ---------------------------------------------------------------------------
# E5 -- Figure 6(b): irradiance-percentile maps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IrradianceMapFigure:
    """75th-percentile irradiance map of one roof plus summary metrics."""

    roof: str
    percentile_map: np.ndarray
    ascii_rendering: str
    variation_coefficient: float
    n_valid: int


def figure6_irradiance_map(study: CaseStudy, percentile: float = 75.0) -> IrradianceMapFigure:
    """Compute the Figure 6(b) map of one prepared case study."""
    values = study.solar.percentile_map(percentile)
    return IrradianceMapFigure(
        roof=study.name,
        percentile_map=values,
        ascii_rendering=ascii_heatmap(values),
        variation_coefficient=spatial_variation_coefficient(values),
        n_valid=study.grid.n_valid,
    )


# ---------------------------------------------------------------------------
# E6 -- Figure 7: traditional vs proposed placements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlacementFigure:
    """The two placements of one roof at a given N, with their renderings."""

    roof: str
    n_modules: int
    traditional_map: np.ndarray
    proposed_map: np.ndarray
    traditional_ascii: str
    proposed_ascii: str
    improvement_percent: float


def figure7_placements(
    study: CaseStudy, n_modules: int = 32, config: Table1Config | None = None
) -> PlacementFigure:
    """Generate the traditional and proposed placements of one roof (Fig. 7)."""
    cfg = config if config is not None else Table1Config()
    if n_modules < 1:
        raise ConfigurationError("n_modules must be positive")
    problem = build_problem(study, n_modules, cfg.series_length, cfg.datasheet)
    traditional = traditional_floorplan(problem)
    greedy = greedy_floorplan(problem, suitability=traditional.suitability)
    comparison = compare_placements(problem, traditional.placement, greedy.placement)
    shape = problem.grid.shape
    return PlacementFigure(
        roof=study.name,
        n_modules=n_modules,
        traditional_map=traditional.placement.string_map(shape),
        proposed_map=greedy.placement.string_map(shape),
        traditional_ascii=placement_ascii(traditional.placement, shape),
        proposed_ascii=placement_ascii(greedy.placement, shape),
        improvement_percent=comparison.improvement_percent,
    )


def figure7_all(studies: Dict[str, CaseStudy], n_modules: int = 32) -> List[PlacementFigure]:
    """Figure 7 for every prepared roof."""
    return [figure7_placements(study, n_modules) for study in studies.values()]
