"""Experiment E7: reproduction of the paper's Table I.

For each of the three case-study roofs and for N in {16, 32} modules
(strings of 8 in series), the traditional compact placement and the proposed
greedy placement are generated and evaluated over the simulated year; the
report lists the yearly production of both and the relative improvement,
exactly like Table I of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..analysis.report import Table1Report, Table1Row
from ..core import FloorplanProblem, compare_placements, default_topology
from ..core.evaluation import PlacementComparison
from ..errors import ConfigurationError
from ..pv.datasheet import PV_MF165EB3, ModuleDatasheet
from ..runner.solvers import SolverOutcome, solve
from .roofs import CaseStudy, CaseStudyConfig, prepare_all_case_studies


@dataclass(frozen=True)
class Table1Config:
    """Configuration of the Table I experiment.

    ``solver`` selects the proposed placement algorithm by name in the
    :mod:`repro.runner.solvers` registry (the paper's greedy by default);
    the baseline is always the traditional compact placement.
    """

    module_counts: tuple = (16, 32)
    series_length: int = 8
    datasheet: ModuleDatasheet = PV_MF165EB3
    case_study: CaseStudyConfig = field(default_factory=CaseStudyConfig)
    include_wiring_loss: bool = True
    solver: str = "greedy"
    solver_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.module_counts:
            raise ConfigurationError("at least one module count is required")
        for count in self.module_counts:
            if count < 1:
                raise ConfigurationError("module counts must be positive")


@dataclass
class Table1Entry:
    """Full results of one (roof, N) configuration."""

    roof: str
    n_modules: int
    problem: FloorplanProblem
    traditional: SolverOutcome
    greedy: SolverOutcome
    comparison: PlacementComparison

    @property
    def improvement_percent(self) -> float:
        """Energy improvement of the proposed placement over the baseline."""
        return self.comparison.improvement_percent


@dataclass
class Table1Results:
    """All configurations of the Table I experiment plus the rendered table."""

    entries: List[Table1Entry]
    report: Table1Report
    case_studies: Dict[str, CaseStudy]

    def entry(self, roof: str, n_modules: int) -> Table1Entry:
        """Look up the entry of one (roof, N) configuration."""
        for candidate in self.entries:
            if candidate.roof == roof and candidate.n_modules == n_modules:
                return candidate
        raise ConfigurationError(f"no entry for roof={roof!r}, N={n_modules}")

    def improvements(self) -> List[float]:
        """Improvement percentages in row order."""
        return [entry.improvement_percent for entry in self.entries]


def build_problem(
    study: CaseStudy,
    n_modules: int,
    series_length: int = 8,
    datasheet: ModuleDatasheet = PV_MF165EB3,
) -> FloorplanProblem:
    """Assemble a floorplanning problem for one prepared case study."""
    topology = default_topology(n_modules, series_length)
    return FloorplanProblem(
        grid=study.grid,
        solar=study.solar,
        n_modules=n_modules,
        topology=topology,
        datasheet=datasheet,
        label=f"{study.name}-N{n_modules}",
    )


def run_configuration(
    study: CaseStudy,
    n_modules: int,
    config: Table1Config,
) -> Table1Entry:
    """Run the baseline + the configured solver on one (roof, N) configuration."""
    problem = build_problem(study, n_modules, config.series_length, config.datasheet)
    traditional = solve(problem, "traditional")
    proposed = solve(
        problem,
        config.solver,
        config.solver_options,
        suitability=traditional.suitability,
    )
    comparison = compare_placements(
        problem,
        traditional.placement,
        proposed.placement,
        include_wiring_loss=config.include_wiring_loss,
    )
    return Table1Entry(
        roof=study.name,
        n_modules=n_modules,
        problem=problem,
        traditional=traditional,
        greedy=proposed,
        comparison=comparison,
    )


def run_table1(
    config: Table1Config | None = None,
    case_studies: Optional[Dict[str, CaseStudy]] = None,
    roofs: Optional[Iterable[str]] = None,
) -> Table1Results:
    """Run the full Table I experiment.

    Parameters
    ----------
    config:
        Experiment configuration (module counts, resolution, module type).
    case_studies:
        Pre-built case studies (reused across benchmarks); generated on the
        fly when omitted.
    roofs:
        Restrict the run to a subset of roof names.
    """
    cfg = config if config is not None else Table1Config()
    studies = case_studies if case_studies is not None else prepare_all_case_studies(cfg.case_study)
    selected = list(roofs) if roofs is not None else list(studies)

    entries: List[Table1Entry] = []
    report = Table1Report()
    for roof_name in selected:
        study = studies[roof_name]
        for n_modules in cfg.module_counts:
            entry = run_configuration(study, n_modules, cfg)
            entries.append(entry)
            report.add_row(
                Table1Row(
                    roof=roof_name,
                    grid_w=study.grid.n_cols,
                    grid_h=study.grid.n_rows,
                    n_valid=study.grid.n_valid,
                    n_modules=n_modules,
                    traditional_mwh=entry.comparison.baseline.annual_energy_mwh,
                    proposed_mwh=entry.comparison.candidate.annual_energy_mwh,
                )
            )
    return Table1Results(entries=entries, report=report, case_studies=studies)


#: The values printed in the paper's Table I, used by EXPERIMENTS.md and by
#: the benchmarks to report paper-vs-measured side by side.
PAPER_TABLE1 = (
    {"roof": "roof1", "WxL": "287x51", "Ng": 9416, "N": 16, "traditional_mwh": 3.430, "proposed_mwh": 4.094, "improvement_percent": 19.37},
    {"roof": "roof1", "WxL": "287x51", "Ng": 9416, "N": 32, "traditional_mwh": 6.729, "proposed_mwh": 7.499, "improvement_percent": 11.44},
    {"roof": "roof2", "WxL": "298x51", "Ng": 11892, "N": 16, "traditional_mwh": 2.971, "proposed_mwh": 3.619, "improvement_percent": 21.85},
    {"roof": "roof2", "WxL": "298x51", "Ng": 11892, "N": 32, "traditional_mwh": 5.941, "proposed_mwh": 7.404, "improvement_percent": 23.63},
    {"roof": "roof3", "WxL": "298x52", "Ng": 11672, "N": 16, "traditional_mwh": 2.957, "proposed_mwh": 3.642, "improvement_percent": 23.16},
    {"roof": "roof3", "WxL": "298x52", "Ng": 11672, "N": 32, "traditional_mwh": 5.746, "proposed_mwh": 7.405, "improvement_percent": 28.86},
)
