"""Experiment E7: reproduction of the paper's Table I.

For each of the three case-study roofs and for N in {16, 32} modules
(strings of 8 in series), the traditional compact placement and the proposed
greedy placement are generated and evaluated over the simulated year; the
report lists the yearly production of both and the relative improvement,
exactly like Table I of the paper.

Two execution paths produce the table:

* :func:`run_table1_sweep` -- the canonical artifact generator: the roof x N
  grid is expressed as a declarative :class:`~repro.sweep.SweepPlan` and
  executed through the cached batch runner, so repeated reproductions reuse
  every expensive stage from the disk cache (``repro report --preset
  table1`` on the command line).
* :func:`run_table1` -- the legacy object-level driver, kept both for rich
  programmatic access (it returns the problems, solver outcomes and case
  studies, which the figures and benchmarks consume) and as the ground
  truth the sweep-driven rows are equivalence-tested against row-for-row.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..analysis.report import Table1Report, Table1Row
from ..core import FloorplanProblem, compare_placements, default_topology
from ..core.evaluation import PlacementComparison
from ..errors import ConfigurationError
from ..pv.datasheet import PV_MF165EB3, ModuleDatasheet
from ..runner.solvers import SolverOutcome, solve
from ..scenario.spec import (
    ScenarioSpec,
    SolarSpec,
    SolverSpec,
    TimeSpec,
    WeatherSpec,
    roof_spec_to_dict,
)
from ..solar.irradiance_map import SolarSimulationConfig
from ..sweep.aggregate import SweepResult
from ..sweep.grid import SweepAxis, SweepPlan
from .roofs import CaseStudy, CaseStudyConfig, case_study_specs, prepare_all_case_studies


@dataclass(frozen=True)
class Table1Config:
    """Configuration of the Table I experiment.

    ``solver`` selects the proposed placement algorithm by name in the
    :mod:`repro.runner.solvers` registry (the paper's greedy by default);
    the baseline is always the traditional compact placement.
    """

    module_counts: tuple = (16, 32)
    series_length: int = 8
    datasheet: ModuleDatasheet = PV_MF165EB3
    case_study: CaseStudyConfig = field(default_factory=CaseStudyConfig)
    include_wiring_loss: bool = True
    solver: str = "greedy"
    solver_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.module_counts:
            raise ConfigurationError("at least one module count is required")
        for count in self.module_counts:
            if count < 1:
                raise ConfigurationError("module counts must be positive")


@dataclass
class Table1Entry:
    """Full results of one (roof, N) configuration."""

    roof: str
    n_modules: int
    problem: FloorplanProblem
    traditional: SolverOutcome
    greedy: SolverOutcome
    comparison: PlacementComparison

    @property
    def improvement_percent(self) -> float:
        """Energy improvement of the proposed placement over the baseline."""
        return self.comparison.improvement_percent


@dataclass
class Table1Results:
    """All configurations of the Table I experiment plus the rendered table."""

    entries: List[Table1Entry]
    report: Table1Report
    case_studies: Dict[str, CaseStudy]

    def entry(self, roof: str, n_modules: int) -> Table1Entry:
        """Look up the entry of one (roof, N) configuration."""
        for candidate in self.entries:
            if candidate.roof == roof and candidate.n_modules == n_modules:
                return candidate
        raise ConfigurationError(f"no entry for roof={roof!r}, N={n_modules}")

    def improvements(self) -> List[float]:
        """Improvement percentages in row order."""
        return [entry.improvement_percent for entry in self.entries]


def build_problem(
    study: CaseStudy,
    n_modules: int,
    series_length: int = 8,
    datasheet: ModuleDatasheet = PV_MF165EB3,
) -> FloorplanProblem:
    """Assemble a floorplanning problem for one prepared case study."""
    topology = default_topology(n_modules, series_length)
    return FloorplanProblem(
        grid=study.grid,
        solar=study.solar,
        n_modules=n_modules,
        topology=topology,
        datasheet=datasheet,
        label=f"{study.name}-N{n_modules}",
    )


def run_configuration(
    study: CaseStudy,
    n_modules: int,
    config: Table1Config,
) -> Table1Entry:
    """Run the baseline + the configured solver on one (roof, N) configuration."""
    problem = build_problem(study, n_modules, config.series_length, config.datasheet)
    traditional = solve(problem, "traditional")
    proposed = solve(
        problem,
        config.solver,
        config.solver_options,
        suitability=traditional.suitability,
    )
    comparison = compare_placements(
        problem,
        traditional.placement,
        proposed.placement,
        include_wiring_loss=config.include_wiring_loss,
    )
    return Table1Entry(
        roof=study.name,
        n_modules=n_modules,
        problem=problem,
        traditional=traditional,
        greedy=proposed,
        comparison=comparison,
    )


def run_table1(
    config: Table1Config | None = None,
    case_studies: Optional[Dict[str, CaseStudy]] = None,
    roofs: Optional[Iterable[str]] = None,
) -> Table1Results:
    """Run the full Table I experiment (legacy object-level driver).

    This is the reference path: it materialises the case studies once and
    keeps the rich intermediate objects (problems, solver outcomes) in the
    returned :class:`Table1Results`.  The canonical *artifact* generator is
    :func:`run_table1_sweep`, whose rows are equivalence-tested to match
    this driver's report exactly.

    Parameters
    ----------
    config:
        Experiment configuration (module counts, resolution, module type).
    case_studies:
        Pre-built case studies (reused across benchmarks); generated on the
        fly when omitted.
    roofs:
        Restrict the run to a subset of roof names.
    """
    cfg = config if config is not None else Table1Config()
    studies = case_studies if case_studies is not None else prepare_all_case_studies(cfg.case_study)
    selected = list(roofs) if roofs is not None else list(studies)

    entries: List[Table1Entry] = []
    report = Table1Report()
    for roof_name in selected:
        study = studies[roof_name]
        for n_modules in cfg.module_counts:
            entry = run_configuration(study, n_modules, cfg)
            entries.append(entry)
            report.add_row(
                Table1Row(
                    roof=roof_name,
                    grid_w=study.grid.n_cols,
                    grid_h=study.grid.n_rows,
                    n_valid=study.grid.n_valid,
                    n_modules=n_modules,
                    traditional_mwh=entry.comparison.baseline.annual_energy_mwh,
                    proposed_mwh=entry.comparison.candidate.annual_energy_mwh,
                )
            )
    return Table1Results(entries=entries, report=report, case_studies=studies)


# ---------------------------------------------------------------------------
# Sweep-engine path (the canonical artifact generator)
# ---------------------------------------------------------------------------


def _solar_spec_from_config(config: SolarSimulationConfig) -> SolarSpec:
    """Express a materialised solar configuration as a declarative SolarSpec."""
    if config.store_dtype != "float32":
        raise ConfigurationError(
            "the declarative scenario path stores solar fields as float32; "
            f"cannot express store_dtype={config.store_dtype!r}"
        )
    return SolarSpec(
        sky_model=config.sky_model,
        decomposition_model=config.decomposition_model,
        albedo=config.albedo,
        n_horizon_sectors=config.n_horizon_sectors,
        horizon_max_distance_m=config.horizon_max_distance_m,
        linke_turbidity=tuple(config.linke_turbidity.monthly_values),
    )


def table1_sweep_plan(
    config: Table1Config | None = None,
    roofs: Optional[Iterable[str]] = None,
) -> SweepPlan:
    """The Table I experiment as a declarative roof x N sweep plan.

    The base scenario mirrors the legacy driver's configuration exactly
    (same roofs, weather seed, time base, irradiance options, datasheet and
    solver), and the two axes -- the roof and the module count -- expand in
    the legacy row order (roofs outer, module counts inner).  Running the
    plan through :func:`repro.sweep.run_sweep` therefore reproduces the
    legacy table row-for-row while reusing every cached stage.
    """
    cfg = config if config is not None else Table1Config()
    if not cfg.include_wiring_loss:
        raise ConfigurationError(
            "the scenario pipeline always includes the wiring loss; "
            "include_wiring_loss=False is only supported by the legacy driver"
        )
    case_cfg = cfg.case_study
    roof_specs = case_study_specs(case_cfg.scale)
    selected = list(roofs) if roofs is not None else list(roof_specs)
    if not selected:
        raise ConfigurationError("at least one roof is required")
    unknown = [name for name in selected if name not in roof_specs]
    if unknown:
        raise ConfigurationError(f"unknown case-study roofs: {unknown}")

    base = ScenarioSpec(
        name="table1",
        roof=roof_specs[selected[0]],
        n_modules=cfg.module_counts[0],
        n_series=cfg.series_length,
        module=dataclasses.asdict(cfg.datasheet),
        grid_pitch=case_cfg.grid_pitch,
        dsm_pitch=case_cfg.dsm_pitch,
        time=TimeSpec(
            step_minutes=case_cfg.time_step_minutes, day_stride=case_cfg.day_stride
        ),
        weather=WeatherSpec(seed=case_cfg.weather_seed),
        solar=_solar_spec_from_config(case_cfg.solar),
        solver=SolverSpec(name=cfg.solver, options=dict(cfg.solver_options)),
        description="Paper Table I reproduction (sweep-engine path)",
        tags=("table1",),
    )
    axes = (
        SweepAxis(
            "roof",
            tuple(roof_spec_to_dict(roof_specs[name]) for name in selected),
            labels=tuple(selected),
        ),
        SweepAxis("n_modules", tuple(cfg.module_counts)),
    )
    return SweepPlan(
        name="table1",
        base=base,
        axes=axes,
        mode="grid",
        description="Paper Table I: roof x module-count grid",
    )


@dataclass
class Table1SweepResults:
    """Outcome of the sweep-driven Table I reproduction."""

    sweep: SweepResult
    report: Table1Report


def run_table1_sweep(
    config: Table1Config | None = None,
    roofs: Optional[Iterable[str]] = None,
    cache: object = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    parallel: bool = True,
) -> Table1SweepResults:
    """Reproduce Table I through the declarative sweep engine.

    Expands :func:`table1_sweep_plan` and streams it through the cached
    batch runner; the returned report's rows match the legacy
    :func:`run_table1` output exactly (equivalence-tested), and warm
    re-runs serve every expensive stage from the cache.
    """
    from ..sweep import run_sweep

    plan = table1_sweep_plan(config, roofs)
    sweep = run_sweep(
        plan,
        cache=cache,
        jobs=jobs,
        use_cache=use_cache,
        parallel=parallel,
    )
    report = Table1Report()
    for point in sweep.points:
        result = point.result
        report.add_row(
            Table1Row(
                roof=point.labels["roof"],
                grid_w=result.grid_cols,
                grid_h=result.grid_rows,
                n_valid=result.n_valid_cells,
                n_modules=result.n_modules,
                traditional_mwh=result.baseline_energy_mwh,
                proposed_mwh=result.annual_energy_mwh,
            )
        )
    return Table1SweepResults(sweep=sweep, report=report)


#: The values printed in the paper's Table I, used by EXPERIMENTS.md and by
#: the benchmarks to report paper-vs-measured side by side.
PAPER_TABLE1 = (
    {
        "roof": "roof1",
        "WxL": "287x51",
        "Ng": 9416,
        "N": 16,
        "traditional_mwh": 3.430,
        "proposed_mwh": 4.094,
        "improvement_percent": 19.37,
    },
    {
        "roof": "roof1",
        "WxL": "287x51",
        "Ng": 9416,
        "N": 32,
        "traditional_mwh": 6.729,
        "proposed_mwh": 7.499,
        "improvement_percent": 11.44,
    },
    {
        "roof": "roof2",
        "WxL": "298x51",
        "Ng": 11892,
        "N": 16,
        "traditional_mwh": 2.971,
        "proposed_mwh": 3.619,
        "improvement_percent": 21.85,
    },
    {
        "roof": "roof2",
        "WxL": "298x51",
        "Ng": 11892,
        "N": 32,
        "traditional_mwh": 5.941,
        "proposed_mwh": 7.404,
        "improvement_percent": 23.63,
    },
    {
        "roof": "roof3",
        "WxL": "298x52",
        "Ng": 11672,
        "N": 16,
        "traditional_mwh": 2.957,
        "proposed_mwh": 3.642,
        "improvement_percent": 23.16,
    },
    {
        "roof": "roof3",
        "WxL": "298x52",
        "Ng": 11672,
        "N": 32,
        "traditional_mwh": 5.746,
        "proposed_mwh": 7.405,
        "improvement_percent": 28.86,
    },
)
