"""Text/array renderings of roof maps (irradiance, suitability, placements).

The paper's Figures 6(b) and 7 are colour raster images; in a plotting-free
environment the equivalent artefacts are (i) the underlying numpy arrays,
which the benchmarks dump to disk, and (ii) compact ASCII renderings that
make the spatial structure visible in test logs and example output.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..core.placement import Placement

#: Characters from "dark" to "bright" used by the ASCII renderer.
_SHADES = " .:-=+*#%@"


def downsample_map(values: np.ndarray, max_rows: int = 24, max_cols: int = 72) -> np.ndarray:
    """Block-average a map down to at most ``max_rows x max_cols`` cells.

    NaN cells are ignored inside each block; blocks that are entirely NaN
    stay NaN.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 2:
        raise ReproError("expected a 2D map")
    n_rows, n_cols = array.shape
    row_factor = max(1, int(np.ceil(n_rows / max_rows)))
    col_factor = max(1, int(np.ceil(n_cols / max_cols)))
    out_rows = int(np.ceil(n_rows / row_factor))
    out_cols = int(np.ceil(n_cols / col_factor))
    result = np.full((out_rows, out_cols), np.nan)
    for i in range(out_rows):
        for j in range(out_cols):
            block = array[
                i * row_factor : (i + 1) * row_factor, j * col_factor : (j + 1) * col_factor
            ]
            finite = block[np.isfinite(block)]
            if finite.size:
                result[i, j] = float(np.mean(finite))
    return result


def ascii_heatmap(values: np.ndarray, max_rows: int = 24, max_cols: int = 72) -> str:
    """Render a map as an ASCII heat map (brighter character = larger value).

    Rows are printed north-side-up (the last grid row first) so the output
    matches the usual map orientation.
    """
    reduced = downsample_map(values, max_rows, max_cols)
    finite = reduced[np.isfinite(reduced)]
    if finite.size == 0:
        return "(empty map)"
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    lines = []
    for row in reduced[::-1]:
        chars = []
        for value in row:
            if not np.isfinite(value):
                chars.append(" ")
            else:
                level = int((value - lo) / span * (len(_SHADES) - 1))
                chars.append(_SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def placement_ascii(
    placement: Placement, shape: tuple[int, int], max_rows: int = 24, max_cols: int = 72
) -> str:
    """Render a placement as an ASCII map; letters identify series strings.

    Free cells are '.', cells outside any module keep their marker, and each
    string is drawn with a different letter (A, B, C, ...), mirroring the
    colour coding of the paper's Figure 7.
    """
    strings = placement.string_map(shape).astype(float)
    strings[strings < 0] = np.nan
    reduced = downsample_map(strings, max_rows, max_cols)
    lines = []
    for row in reduced[::-1]:
        chars = []
        for value in row:
            if not np.isfinite(value):
                chars.append(".")
            else:
                chars.append(chr(ord("A") + int(round(value)) % 26))
        lines.append("".join(chars))
    return "\n".join(lines)


def map_statistics(values: np.ndarray) -> dict:
    """Summary statistics of a map, ignoring NaN cells."""
    array = np.asarray(values, dtype=float)
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        raise ReproError("the map has no finite cells")
    return {
        "n_cells": int(finite.size),
        "min": float(finite.min()),
        "max": float(finite.max()),
        "mean": float(finite.mean()),
        "std": float(finite.std()),
        "p25": float(np.percentile(finite, 25)),
        "p50": float(np.percentile(finite, 50)),
        "p75": float(np.percentile(finite, 75)),
    }


def spatial_variation_coefficient(values: np.ndarray) -> float:
    """Coefficient of variation (std/mean) of a map's finite cells.

    The paper links the benefit of the sparse placement to the spatial
    variance of the irradiance map; this is the scalar the ablation and
    sensitivity benchmarks use to quantify it.
    """
    stats = map_statistics(values)
    if stats["mean"] == 0:
        return 0.0
    return stats["std"] / stats["mean"]
