"""Energy accounting helpers.

Small utilities layered on top of the core evaluator: monthly/seasonal
break-downs of a power series, specific yield, performance ratio -- the
quantities a PV installer would quote alongside the paper's yearly MWh
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..solar.time_series import TimeGrid

#: First day of year of each month (non-leap year).
_MONTH_STARTS = np.array([1, 32, 60, 91, 121, 152, 182, 213, 244, 274, 305, 335, 366])

MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


@dataclass(frozen=True)
class MonthlyEnergy:
    """Monthly energy break-down [Wh] of a power series."""

    monthly_wh: np.ndarray

    def __post_init__(self) -> None:
        if np.asarray(self.monthly_wh).shape != (12,):
            raise ReproError("monthly energy must contain 12 values")

    @property
    def total_wh(self) -> float:
        """Yearly total [Wh]."""
        return float(np.sum(self.monthly_wh))

    def as_dict(self) -> dict:
        """Mapping month name -> energy [Wh]."""
        return {name: float(value) for name, value in zip(MONTH_NAMES, self.monthly_wh)}

    def peak_month(self) -> str:
        """Name of the most productive month."""
        return MONTH_NAMES[int(np.argmax(self.monthly_wh))]


def month_of_day(day_of_year: np.ndarray) -> np.ndarray:
    """Month index (0..11) of each day of year."""
    day = np.asarray(day_of_year, dtype=float)
    return np.clip(np.searchsorted(_MONTH_STARTS, day, side="right") - 1, 0, 11)


def monthly_energy(time_grid: TimeGrid, power_w: np.ndarray) -> MonthlyEnergy:
    """Split the energy of a power series into calendar months.

    The day-stride scaling of the time grid is applied so subsampled
    simulations still produce full-month estimates.
    """
    power = np.asarray(power_w, dtype=float)
    if power.shape[0] != time_grid.n_samples:
        raise ReproError("power series length must match the time grid")
    months = month_of_day(time_grid.days_of_year)
    totals = np.zeros(12)
    for month in range(12):
        mask = months == month
        totals[month] = np.sum(power[mask]) * time_grid.step_hours * time_grid.annual_scale
    return MonthlyEnergy(monthly_wh=totals)


def specific_yield_kwh_per_kwp(annual_energy_wh: float, nameplate_w: float) -> float:
    """Specific yield [kWh/kWp/year], the installer's favourite figure of merit."""
    if nameplate_w <= 0:
        raise ReproError("nameplate power must be positive")
    return (annual_energy_wh / 1e3) / (nameplate_w / 1e3)


def performance_ratio(
    annual_energy_wh: float,
    nameplate_w: float,
    annual_poa_insolation_kwh_m2: float,
) -> float:
    """Performance ratio: actual yield over the yield at STC efficiency.

    ``PR = E / (P_stc * H_poa / G_stc)`` with H_poa the plane-of-array
    insolation in kWh/m^2.
    """
    if nameplate_w <= 0 or annual_poa_insolation_kwh_m2 <= 0:
        raise ReproError("nameplate power and insolation must be positive")
    reference_wh = nameplate_w * annual_poa_insolation_kwh_m2
    return annual_energy_wh / reference_wh


def capacity_factor(annual_energy_wh: float, nameplate_w: float) -> float:
    """Capacity factor over one year."""
    if nameplate_w <= 0:
        raise ReproError("nameplate power must be positive")
    return annual_energy_wh / (nameplate_w * 8760.0)
