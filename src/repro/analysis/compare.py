"""Placement-to-placement structural comparisons.

Beyond the energy delta (handled by :mod:`repro.core.evaluation`), the paper
discusses *why* its placements win: they are sparser, they hug the most
irradiated cells, and their strings avoid weak modules.  The metrics in this
module quantify those structural properties so experiments can report them
alongside the energy numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.placement import Placement
from ..core.suitability import SuitabilityMap
from ..errors import ReproError


@dataclass(frozen=True)
class PlacementShapeMetrics:
    """Geometric descriptors of one placement."""

    dispersion_m: float
    bounding_box_area_m2: float
    covered_area_m2: float
    packing_density: float
    mean_footprint_suitability: float
    min_footprint_suitability: float

    def as_dict(self) -> dict:
        """Flat dictionary representation."""
        return {
            "dispersion_m": self.dispersion_m,
            "bounding_box_area_m2": self.bounding_box_area_m2,
            "covered_area_m2": self.covered_area_m2,
            "packing_density": self.packing_density,
            "mean_footprint_suitability": self.mean_footprint_suitability,
            "min_footprint_suitability": self.min_footprint_suitability,
        }


def placement_shape_metrics(
    placement: Placement, suitability: SuitabilityMap
) -> PlacementShapeMetrics:
    """Compute the geometric descriptors of a placement."""
    pitch = placement.grid_pitch
    row_min, col_min, row_max, col_max = placement.bounding_box_cells()
    bbox_area = (row_max - row_min + 1) * (col_max - col_min + 1) * pitch**2
    covered = placement.covered_cells()
    covered_area = covered.shape[0] * pitch**2

    per_module_scores = []
    for cells in placement.covered_cells_by_module():
        values = suitability.values[cells[:, 0], cells[:, 1]]
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            raise ReproError("a module covers only invalid suitability cells")
        per_module_scores.append(float(np.mean(finite)))

    return PlacementShapeMetrics(
        dispersion_m=placement.dispersion_m(),
        bounding_box_area_m2=float(bbox_area),
        covered_area_m2=float(covered_area),
        packing_density=float(covered_area / bbox_area) if bbox_area > 0 else 0.0,
        mean_footprint_suitability=float(np.mean(per_module_scores)),
        min_footprint_suitability=float(np.min(per_module_scores)),
    )


@dataclass(frozen=True)
class StringUniformityMetrics:
    """Irradiance uniformity inside each series string.

    The energy a string extracts is capped by its least irradiated module,
    so the relevant statistic is the per-string ratio between the weakest
    module's suitability and the string mean (1 = perfectly uniform).
    """

    per_string_min_over_mean: tuple
    worst_ratio: float
    mean_ratio: float

    def as_dict(self) -> dict:
        """Flat dictionary representation."""
        return {
            "per_string_min_over_mean": list(self.per_string_min_over_mean),
            "worst_ratio": self.worst_ratio,
            "mean_ratio": self.mean_ratio,
        }


def string_uniformity(
    placement: Placement, suitability: SuitabilityMap
) -> StringUniformityMetrics:
    """Quantify the weak-module exposure of every series string."""
    module_scores = []
    for cells in placement.covered_cells_by_module():
        values = suitability.values[cells[:, 0], cells[:, 1]]
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            raise ReproError("a module covers only invalid suitability cells")
        module_scores.append(float(np.mean(finite)))

    ratios = []
    for string_index in range(placement.topology.n_parallel):
        members = placement.topology.modules_of_string(string_index)
        scores = np.array([module_scores[i] for i in members])
        mean = float(np.mean(scores))
        ratios.append(float(np.min(scores) / mean) if mean > 0 else 0.0)
    return StringUniformityMetrics(
        per_string_min_over_mean=tuple(ratios),
        worst_ratio=float(np.min(ratios)),
        mean_ratio=float(np.mean(ratios)),
    )


def overlap_fraction(first: Placement, second: Placement, shape: tuple[int, int]) -> float:
    """Fraction of the first placement's cells also covered by the second.

    Used to verify the paper's observation that the proposed placements
    "tend to be placed nearby the traditional placements, yet they are
    sparser".
    """
    occupancy_first = first.occupancy_map(shape) >= 0
    occupancy_second = second.occupancy_map(shape) >= 0
    covered_first = int(np.count_nonzero(occupancy_first))
    if covered_first == 0:
        raise ReproError("the first placement covers no cells")
    return float(np.count_nonzero(occupancy_first & occupancy_second)) / covered_first
