"""Analysis and reporting layer: energy break-downs, maps, tables, comparisons."""

from .compare import (
    PlacementShapeMetrics,
    StringUniformityMetrics,
    overlap_fraction,
    placement_shape_metrics,
    string_uniformity,
)
from .energy import (
    MONTH_NAMES,
    MonthlyEnergy,
    capacity_factor,
    monthly_energy,
    month_of_day,
    performance_ratio,
    specific_yield_kwh_per_kwp,
)
from .maps import (
    ascii_heatmap,
    downsample_map,
    map_statistics,
    placement_ascii,
    spatial_variation_coefficient,
)
from .report import Table1Report, Table1Row, format_comparison_table

__all__ = [
    "PlacementShapeMetrics",
    "StringUniformityMetrics",
    "overlap_fraction",
    "placement_shape_metrics",
    "string_uniformity",
    "MONTH_NAMES",
    "MonthlyEnergy",
    "capacity_factor",
    "monthly_energy",
    "month_of_day",
    "performance_ratio",
    "specific_yield_kwh_per_kwp",
    "ascii_heatmap",
    "downsample_map",
    "map_statistics",
    "placement_ascii",
    "spatial_variation_coefficient",
    "Table1Report",
    "Table1Row",
    "format_comparison_table",
]
