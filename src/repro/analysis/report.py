"""Tabular reports in the style of the paper's Table I.

The report builder collects, for each (roof, N) configuration, the yearly
production of the traditional and proposed placements and the relative
improvement, and renders them as an aligned plain-text table or as a list of
dictionaries for programmatic consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import ReproError


@dataclass(frozen=True)
class Table1Row:
    """One row of the Table-I style report."""

    roof: str
    grid_w: int
    grid_h: int
    n_valid: int
    n_modules: int
    traditional_mwh: float
    proposed_mwh: float

    @property
    def improvement_percent(self) -> float:
        """Relative improvement of the proposed placement over the baseline."""
        if self.traditional_mwh <= 0:
            return 0.0
        return 100.0 * (self.proposed_mwh - self.traditional_mwh) / self.traditional_mwh

    def as_dict(self) -> dict:
        """Flat dictionary representation."""
        return {
            "roof": self.roof,
            "WxL": f"{self.grid_w}x{self.grid_h}",
            "Ng": self.n_valid,
            "N": self.n_modules,
            "traditional_mwh": round(self.traditional_mwh, 3),
            "proposed_mwh": round(self.proposed_mwh, 3),
            "improvement_percent": round(self.improvement_percent, 2),
        }


@dataclass
class Table1Report:
    """Collection of Table-I rows with text rendering."""

    rows: List[Table1Row] = field(default_factory=list)

    def add_row(self, row: Table1Row) -> None:
        """Append a configuration row."""
        self.rows.append(row)

    def as_dicts(self) -> List[dict]:
        """All rows as dictionaries (stable order)."""
        return [row.as_dict() for row in self.rows]

    def improvements(self) -> List[float]:
        """Improvement percentages of all rows."""
        return [row.improvement_percent for row in self.rows]

    def render(self) -> str:
        """Aligned plain-text rendering of the table."""
        if not self.rows:
            raise ReproError("the report has no rows")
        header = (
            f"{'Roof':<10} {'WxL':>9} {'Ng':>7} {'N':>4} "
            f"{'Trad MWh':>10} {'Prop MWh':>10} {'Improv %':>9}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.roof:<10} {row.grid_w:>4}x{row.grid_h:<4} {row.n_valid:>7} "
                f"{row.n_modules:>4} {row.traditional_mwh:>10.3f} "
                f"{row.proposed_mwh:>10.3f} {row.improvement_percent:>8.2f}%"
            )
        return "\n".join(lines)


def format_comparison_table(
    labels: Sequence[str], values: Sequence[Sequence[float]], columns: Sequence[str]
) -> str:
    """Generic aligned table used by the ablation and sensitivity benches."""
    if len(labels) != len(values):
        raise ReproError("labels and value rows must have the same length")
    widths = [max(12, len(c) + 2) for c in columns]
    header = f"{'config':<24}" + "".join(f"{c:>{w}}" for c, w in zip(columns, widths))
    lines = [header, "-" * len(header)]
    for label, row in zip(labels, values):
        if len(row) != len(columns):
            raise ReproError("each value row must match the number of columns")
        cells = "".join(f"{v:>{w}.3f}" for v, w in zip(row, widths))
        lines.append(f"{label:<24}" + cells)
    return "\n".join(lines)
