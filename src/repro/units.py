"""Small unit-conversion helpers.

The library works internally in SI units (metres, watts, seconds, degrees
Celsius for temperatures, W/m^2 for irradiance).  These helpers exist so that
conversions are explicit and named at call sites instead of scattered
arithmetic.
"""

from __future__ import annotations

import math

from .constants import KELVIN_OFFSET, SECONDS_PER_HOUR


def celsius_to_kelvin(t_celsius: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return t_celsius + KELVIN_OFFSET


def kelvin_to_celsius(t_kelvin: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return t_kelvin - KELVIN_OFFSET


def degrees_to_radians(angle_deg: float) -> float:
    """Convert an angle from degrees to radians."""
    return math.radians(angle_deg)


def radians_to_degrees(angle_rad: float) -> float:
    """Convert an angle from radians to degrees."""
    return math.degrees(angle_rad)


def wh_to_joules(energy_wh: float) -> float:
    """Convert an energy from watt-hours to joules."""
    return energy_wh * SECONDS_PER_HOUR


def joules_to_wh(energy_j: float) -> float:
    """Convert an energy from joules to watt-hours."""
    return energy_j / SECONDS_PER_HOUR


def wh_to_kwh(energy_wh: float) -> float:
    """Convert an energy from watt-hours to kilowatt-hours."""
    return energy_wh / 1e3


def wh_to_mwh(energy_wh: float) -> float:
    """Convert an energy from watt-hours to megawatt-hours."""
    return energy_wh / 1e6


def kwh_to_wh(energy_kwh: float) -> float:
    """Convert an energy from kilowatt-hours to watt-hours."""
    return energy_kwh * 1e3


def mwh_to_wh(energy_mwh: float) -> float:
    """Convert an energy from megawatt-hours to watt-hours."""
    return energy_mwh * 1e6


def metres_to_centimetres(length_m: float) -> float:
    """Convert a length from metres to centimetres."""
    return length_m * 100.0


def centimetres_to_metres(length_cm: float) -> float:
    """Convert a length from centimetres to metres."""
    return length_cm / 100.0


def minutes_to_hours(minutes: float) -> float:
    """Convert a duration from minutes to hours."""
    return minutes / 60.0


def hours_to_minutes(hours: float) -> float:
    """Convert a duration from hours to minutes."""
    return hours * 60.0


def percent(fraction: float) -> float:
    """Express a fraction (0..1) as a percentage (0..100)."""
    return fraction * 100.0


def fraction(percentage: float) -> float:
    """Express a percentage (0..100) as a fraction (0..1)."""
    return percentage / 100.0
