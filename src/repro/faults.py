"""Deterministic, seedable fault injection for chaos testing.

Proving that the campaign substrate *recovers* from worker deaths, hangs,
corrupt cache entries and flaky stores requires injecting those faults on
demand -- waiting for a real OOM kill is not a test plan.  This module is
the single switchboard: production code calls :func:`fire` at a handful of
*fault sites* and the call is a no-op (one attribute load and a falsy
check) unless the ``REPRO_FAULTS`` environment variable arms a plan.  The
disabled path is benchmark-asserted to be free, exactly like telemetry's
null span (``benchmarks/test_bench_faults.py``).

Spec grammar
------------
``REPRO_FAULTS`` holds ``;``-separated injector clauses::

    REPRO_FAULTS="worker.crash:match=fleet-*,times=1;solver.error:times=2"

Each clause is ``site[:param=value[,param=value...]]`` with parameters:

``times=N``
    Fire on the first ``N`` matching calls (default 1).  With a state
    directory (below) the count is shared across processes, so a fault
    that kills its worker does not re-arm in the replacement worker.
``match=GLOB``
    Only fire when the call-site key (scenario name, stage name, campaign
    name -- whatever identifies the unit of work at that site) matches the
    :mod:`fnmatch` pattern.  Default: match everything.
``after=N``
    Skip the first ``N`` matching calls before starting to fire.
``p=F`` / ``seed=N``
    Fire each matching call with probability ``F`` from a dedicated
    ``random.Random(seed)`` stream (deterministic per process).
``sleep=S``
    ``worker.hang`` only: how long the injected hang sleeps (default 3600
    seconds -- the parent watchdog is expected to kill it long before).

Fault sites
-----------
``worker.crash``
    Hard-kills the worker process (``os._exit``), modelling an OOM kill or
    segfault.  Only armed inside batch worker processes.
``worker.hang``
    Sleeps inside the worker, modelling a hung solve; the parent-side
    watchdog must terminate it within the point's ``timeout_s``.
``solver.error``
    Raises :class:`InjectedFault` from the solver adapter, modelling a
    transient solver crash (retries / fallback chains must absorb it).
``cache.corrupt``
    Truncates a just-written stage-cache entry, modelling on-disk
    corruption (the checksum layer must quarantine it into a miss).
``store.io``
    Raises ``sqlite3.OperationalError`` from a result-store write,
    modelling a locked/flaky database (the store's retry loop absorbs it).

Cross-process state
-------------------
``times``/``after`` counters default to per-process memory.  Pointing
``REPRO_FAULTS_STATE`` at a directory makes claims atomic *across*
processes: firing slot ``k`` creates ``<dir>/<injector>.<k>`` with
``O_CREAT|O_EXCL``, so exactly ``times`` firings happen fleet-wide no
matter how many workers (or respawned workers) race for them.
"""

from __future__ import annotations

import fnmatch
import os
import random
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .errors import ConfigurationError

#: Environment variable holding the fault plan (empty/unset: disabled).
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable naming the shared cross-process counter directory.
FAULTS_STATE_ENV = "REPRO_FAULTS_STATE"

#: The known fault sites (site -> short description), the authoritative list
#: for spec validation and the docs.
FAULT_SITES = {
    "worker.crash": "hard-kill the batch worker process",
    "worker.hang": "sleep inside the worker until the watchdog intervenes",
    "solver.error": "raise a transient error from the solver adapter",
    "cache.corrupt": "truncate a just-written stage-cache entry",
    "store.io": "raise sqlite3.OperationalError from a store write",
}

#: Exit status of an injected worker crash (visible in waitpid diagnostics).
CRASH_EXIT_CODE = 13


class InjectedFault(RuntimeError):
    """A deliberately injected transient failure.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected faults
    must travel the same unhandled-exception paths a real solver crash
    would, so recovery is tested against the production machinery.
    """


@dataclass
class FaultSpec:
    """One parsed injector clause of the ``REPRO_FAULTS`` plan."""

    site: str
    times: int = 1
    match: str = "*"
    after: int = 0
    p: Optional[float] = None
    seed: int = 0
    sleep_s: float = 3600.0
    #: Position within the plan; disambiguates two clauses on the same site.
    index: int = 0
    _calls: int = 0
    _fired: int = 0
    _rng: Optional[random.Random] = field(default=None, repr=False)

    @property
    def injector_id(self) -> str:
        """Stable identifier used for cross-process state files."""
        return f"{self.site}.{self.index}"

    def matches(self, key: str) -> bool:
        return fnmatch.fnmatchcase(key, self.match)

    def should_fire(self, key: str, state_dir: Optional[Path]) -> bool:
        """Decide (and record) whether this call fires the fault."""
        if not self.matches(key):
            return False
        self._calls += 1
        if self._calls <= self.after:
            return False
        if self.p is not None:
            if self._rng is None:
                self._rng = random.Random(self.seed)
            if self._rng.random() >= self.p:
                return False
        if state_dir is not None:
            return self._claim_shared(state_dir)
        if self._fired >= self.times:
            return False
        self._fired += 1
        return True

    def _claim_shared(self, state_dir: Path) -> bool:
        """Atomically claim one of the ``times`` firing slots fleet-wide."""
        state_dir.mkdir(parents=True, exist_ok=True)
        for slot in range(self.times):
            path = state_dir / f"{self.injector_id}.{slot}"
            try:
                fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"pid={os.getpid()} key-slot claimed\n")
            return True
        return False


@dataclass
class FaultPlan:
    """The parsed ``REPRO_FAULTS`` plan: a list of armed injectors."""

    specs: List[FaultSpec]
    state_dir: Optional[Path] = None

    def should_fire(self, site: str, key: str) -> Optional[FaultSpec]:
        """The first armed injector of ``site`` that fires for ``key``."""
        for spec in self.specs:
            if spec.site == site and spec.should_fire(key, self.state_dir):
                return spec
        return None


def parse_plan(
    text: str, state_dir: "str | Path | None" = None
) -> Optional[FaultPlan]:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Returns ``None`` for an empty/blank spec.  Raises
    :class:`~repro.errors.ConfigurationError` on unknown sites or
    malformed parameters -- a typo in a chaos run must fail loudly, not
    silently disarm the fault.
    """
    clauses = [clause.strip() for clause in text.split(";") if clause.strip()]
    if not clauses:
        return None
    specs: List[FaultSpec] = []
    for index, clause in enumerate(clauses):
        site, _, params_text = clause.partition(":")
        site = site.strip()
        if site not in FAULT_SITES:
            known = ", ".join(sorted(FAULT_SITES))
            raise ConfigurationError(
                f"unknown fault site {site!r} in {FAULTS_ENV}; known: {known}"
            )
        spec = FaultSpec(site=site, index=index)
        for param in params_text.split(","):
            param = param.strip()
            if not param:
                continue
            name, sep, value = param.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"malformed fault parameter {param!r} in clause {clause!r}"
                )
            try:
                if name == "times":
                    spec.times = int(value)
                elif name == "match":
                    spec.match = value
                elif name == "after":
                    spec.after = int(value)
                elif name == "p":
                    spec.p = float(value)
                elif name == "seed":
                    spec.seed = int(value)
                elif name == "sleep":
                    spec.sleep_s = float(value)
                else:
                    raise ConfigurationError(
                        f"unknown fault parameter {name!r} in clause {clause!r}"
                    )
            except ValueError as exc:
                raise ConfigurationError(
                    f"invalid fault parameter {param!r} in clause {clause!r}: {exc}"
                ) from exc
        if spec.times < 1:
            raise ConfigurationError(f"fault clause {clause!r}: times must be >= 1")
        if spec.p is not None and not 0.0 <= spec.p <= 1.0:
            raise ConfigurationError(f"fault clause {clause!r}: p must be in [0, 1]")
        specs.append(spec)
    return FaultPlan(
        specs=specs, state_dir=None if state_dir is None else Path(state_dir)
    )


# ---------------------------------------------------------------------------
# Process-wide switchboard
# ---------------------------------------------------------------------------

#: The armed plan of this process (None: everything below is a no-op).
_PLAN: Optional[FaultPlan] = None

#: The ``(spec, state_dir)`` pair the current plan was armed from, so
#: :func:`configure_from_env` re-arms only when the environment changes.
_CONFIGURED_FROM: Optional[Tuple[str, Optional[str]]] = None


def configure(
    spec: Optional[str], state_dir: "str | Path | None" = None
) -> Optional[FaultPlan]:
    """Arm (or with ``None``/empty, disarm) fault injection in this process."""
    global _PLAN, _CONFIGURED_FROM
    _PLAN = None if not spec else parse_plan(spec, state_dir=state_dir)
    _CONFIGURED_FROM = (
        None if not spec else (spec, None if state_dir is None else str(state_dir))
    )
    return _PLAN


def configure_from_env() -> Optional[FaultPlan]:
    """Arm fault injection from ``$REPRO_FAULTS`` (worker entry point).

    Idempotent per process -- reconfiguring from an *unchanged* environment
    keeps the existing counters instead of re-arming spent injectors, but a
    changed (or cleared) ``$REPRO_FAULTS`` / ``$REPRO_FAULTS_STATE`` always
    re-arms (or disarms).
    """
    spec = os.environ.get(FAULTS_ENV, "")
    state_dir = os.environ.get(FAULTS_STATE_ENV) or None
    if not spec:
        if _PLAN is not None:
            configure(None)
        return None
    if _PLAN is not None and _CONFIGURED_FROM == (spec, state_dir):
        return _PLAN
    return configure(spec, state_dir=state_dir)


def faults_enabled() -> bool:
    """Whether a fault plan is armed in this process."""
    return _PLAN is not None


def fire(site: str, key: str = "") -> bool:
    """Fault site hook: perform the armed fault's action, if any fires.

    The disabled path is a single falsy check.  Actions: ``worker.crash``
    never returns (``os._exit``), ``worker.hang`` sleeps, ``solver.error``
    and ``store.io`` raise; ``cache.corrupt`` returns True so the call
    site -- which owns the file handles -- performs the corruption itself.
    """
    if _PLAN is None:
        return False
    spec = _PLAN.should_fire(site, key)
    if spec is None:
        return False
    if site == "worker.crash":
        # Flush nothing, skip atexit/finally blocks: a real OOM kill does.
        os._exit(CRASH_EXIT_CODE)
    if site == "worker.hang":
        time.sleep(spec.sleep_s)
        return True
    if site == "solver.error":
        raise InjectedFault(f"injected transient solver error (key {key!r})")
    if site == "store.io":
        raise sqlite3.OperationalError(f"injected store I/O error (key {key!r})")
    # cache.corrupt: the cache layer truncates its own just-written entry.
    return True


def describe_plan() -> List[Tuple[str, Dict[str, object]]]:
    """The armed injectors as ``(site, params)`` rows (for diagnostics)."""
    if _PLAN is None:
        return []
    rows: List[Tuple[str, Dict[str, object]]] = []
    for spec in _PLAN.specs:
        rows.append(
            (
                spec.site,
                {
                    "times": spec.times,
                    "match": spec.match,
                    "after": spec.after,
                    "p": spec.p,
                    "seed": spec.seed,
                    "sleep_s": spec.sleep_s,
                },
            )
        )
    return rows
