"""Energy evaluation of a placement.

Evaluation is where the paper's central modelling choice lives: the energy
of a floorplan is *not* the sum of the individual module energies; every
time step is aggregated through the series/parallel panel model, so a string
containing one poorly irradiated module is throttled to that module's
current (the "weak module" bottleneck discussed in Section V-B).  Wiring
losses of the sparse placement are accounted for by dissipating each
string's extra cable resistance at the string's instantaneous current.

The hot path is :class:`PlacementEvaluator`: it precomputes every
per-problem invariant once (cells-to-column lookup, per-orientation
substring grouping, the ambient-only parts of the module temperature
factors) and evaluates each placement with a single gather + reduction over
*all* modules, so the exhaustive and ablation flows that score hundreds of
placements on one problem pay the setup cost once.  The module-level
functions (:func:`evaluate_placement`, :func:`compare_placements`,
:func:`module_irradiance_series`) are thin wrappers that build a throwaway
evaluator; the original per-module loop implementations are kept as
``*_reference`` ground truths for the equivalence tests and the speedup
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..constants import STC_IRRADIANCE, STC_TEMPERATURE
from ..errors import PlacementError
from ..pv.module import EmpiricalModuleModel
from ..pv.mppt import MPPTModel
from ..pv.thermal import CellTemperatureModel
from ..pv.wiring import WiringSpec, string_extra_length, wiring_overhead_report
from ..units import wh_to_mwh
from .placement import ModuleFootprint, Placement
from .problem import FloorplanProblem


@dataclass(frozen=True)
class PlacementEvaluation:
    """Energy accounting of one placement over the simulated year."""

    placement_label: str
    annual_energy_wh: float
    gross_energy_wh: float
    wiring_loss_wh: float
    wiring_extra_length_m: float
    wiring_extra_cost: float
    mean_mismatch_loss: float
    peak_power_w: float
    capacity_factor: float
    power_series_w: Optional[np.ndarray] = None

    @property
    def annual_energy_mwh(self) -> float:
        """Net yearly energy in MWh (the unit of the paper's Table I)."""
        return wh_to_mwh(self.annual_energy_wh)

    @property
    def wiring_loss_fraction(self) -> float:
        """Wiring loss as a fraction of the gross yearly energy."""
        if self.gross_energy_wh <= 0:
            return 0.0
        return self.wiring_loss_wh / self.gross_energy_wh

    def summary(self) -> dict:
        """Flat dictionary for reports."""
        return {
            "placement": self.placement_label,
            "annual_energy_mwh": self.annual_energy_mwh,
            "gross_energy_mwh": wh_to_mwh(self.gross_energy_wh),
            "wiring_loss_wh": self.wiring_loss_wh,
            "wiring_loss_fraction": self.wiring_loss_fraction,
            "wiring_extra_length_m": self.wiring_extra_length_m,
            "wiring_extra_cost": self.wiring_extra_cost,
            "mean_mismatch_loss": self.mean_mismatch_loss,
            "peak_power_w": self.peak_power_w,
            "capacity_factor": self.capacity_factor,
        }


# ---------------------------------------------------------------------------
# Precomputed evaluation context
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _OrientationGather:
    """Per-orientation gather pattern of the cells covered by a module.

    The offsets are permuted so the cells of each bypass-diode substring are
    contiguous, which turns the per-substring means into one
    ``np.add.reduceat`` over the cell axis.
    """

    offset_rows: np.ndarray  # (k,) anchor-relative row of each covered cell
    offset_cols: np.ndarray  # (k,)
    group_starts: np.ndarray  # (g,) start of each substring within the k cells
    group_counts: np.ndarray  # (g,) cells per substring
    cells_h: int
    cells_w: int


def _orientation_gather(
    base: ModuleFootprint, rotated: bool, n_substrings: int
) -> _OrientationGather:
    footprint = base.rotated() if rotated else base
    grid_r, grid_c = np.meshgrid(
        np.arange(footprint.cells_h), np.arange(footprint.cells_w), indexing="ij"
    )
    offset_rows = grid_r.ravel()
    offset_cols = grid_c.ravel()
    # Substrings run along the module's long side (same rule as the
    # reference implementation below).
    if footprint.cells_w >= footprint.cells_h:
        long_coord = offset_cols
        n_long = footprint.cells_w
    else:
        long_coord = offset_rows
        n_long = footprint.cells_h
    groups = np.minimum(
        (long_coord * n_substrings) // max(n_long, 1), n_substrings - 1
    )
    order = np.argsort(groups, kind="stable")
    _, counts = np.unique(groups[order], return_counts=True)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return _OrientationGather(
        offset_rows=offset_rows[order],
        offset_cols=offset_cols[order],
        group_starts=starts.astype(np.intp),
        group_counts=counts.astype(np.intp),
        cells_h=footprint.cells_h,
        cells_w=footprint.cells_w,
    )


class PlacementEvaluator:
    """Vectorised evaluation context bound to one floorplanning problem.

    Construction precomputes everything that does not depend on the
    placement being scored:

    * the full-grid cells-to-irradiance-column lookup,
    * the covered-cell gather pattern and substring grouping of both module
      orientations,
    * the ambient-only parts of the module model's temperature factors
      (the irradiance-dependent parts are a rank-1 correction applied per
      evaluation).

    ``evaluate`` then scores a placement with one fancy-indexed gather over
    all modules, one substring reduction, and a *single* module operating
    point computation shared by the panel aggregation and the mismatch-loss
    figure (the reference implementation computed it three times).
    Energies agree with :func:`evaluate_placement_reference` to well within
    1e-9 relative.

    Example
    -------
    Hold one evaluator per problem and score as many placements as needed
    through it (ablations, custom searches, solver comparisons):

    >>> from repro import TimeGrid
    >>> from repro.core import PlacementEvaluator
    >>> from repro.gis import RoofSpec
    >>> from repro.runner import solve
    >>> from repro.runner.stages import prepare_problem
    >>> roof = RoofSpec(name="doc-roof", width_m=6.0, depth_m=4.0,
    ...                 tilt_deg=30.0, azimuth_deg=0.0)
    >>> problem, _, _ = prepare_problem(roof, n_modules=2, n_series=2,
    ...     grid_pitch=0.4, time_grid=TimeGrid(step_minutes=240.0, day_stride=45))
    >>> evaluator = PlacementEvaluator(problem)   # precomputation happens here
    >>> baseline = solve(problem, "traditional")
    >>> proposed = solve(problem, "greedy", suitability=baseline.suitability)
    >>> comparison = evaluator.compare(baseline.placement, proposed.placement)
    >>> comparison.baseline.annual_energy_mwh > 0
    True
    """

    def __init__(
        self,
        problem: FloorplanProblem,
        include_wiring_loss: bool = True,
        mppt: MPPTModel | None = None,
        wiring_spec: WiringSpec | None = None,
        module_aggregation: str = "substring-min",
        n_substrings: int = 2,
    ):
        if module_aggregation not in ("substring-min", "mean"):
            raise PlacementError(f"unknown module aggregation {module_aggregation!r}")
        if n_substrings < 1:
            raise PlacementError("n_substrings must be >= 1")
        self.problem = problem
        self.include_wiring_loss = include_wiring_loss
        self.module_aggregation = module_aggregation
        self.n_substrings = n_substrings
        self.array = problem.array
        self.tracker = mppt if mppt is not None else MPPTModel()
        self.wiring = wiring_spec if wiring_spec is not None else WiringSpec()

        solar = problem.solar
        self._solar = solar
        # All per-time work runs on the field's storage axis: for a
        # daylight-compressed field that is the kept (sun-up) rows only --
        # the dropped rows have zero irradiance, hence zero module power,
        # zero string current and zero wiring loss, so they contribute
        # nothing to any figure this evaluator reports.  ``time_axis``
        # integrates storage-aligned series with the full-year quadrature.
        self._time_axis = solar.time_axis
        self._lookup = solar.cell_column_lookup
        self._irradiance = solar.irradiance  # stored dtype, typically float32
        self._ambient = solar.axis_temperature
        self._gathers: Dict[bool, _OrientationGather] = {
            rotated: _orientation_gather(problem.footprint, rotated, n_substrings)
            for rotated in (False, True)
        }
        # A module's effective irradiance depends only on its own anchor and
        # orientation, so the per-anchor series is memoised: flows that score
        # many overlapping placements on one problem (exhaustive search,
        # baseline comparisons, ablations) reuse almost every anchor.  The
        # cache is capped at ~32 MB so long-running evaluators on fine time
        # grids cannot grow without bound.
        self._series_cache: Dict[Tuple[int, int, bool], np.ndarray] = {}
        n_time = max(int(self._irradiance.shape[0]), 1)
        self._series_cache_cap = max(2 * problem.n_modules, 33_554_432 // (8 * n_time))

        # Fused module operating point: for the standard empirical model with
        # the linear thermal model, power and voltage are affine-in-G
        # corrections of precomputable ambient-only factors:
        #   P(G) = max(G * (pa(t) + pb * G), 0)
        #   V(G) = max((va(t) + vb * G) * (c0 + c1 * G), 0)  where G > 0
        # with pa, va depending on the ambient temperature series only.
        model = problem.module_model
        self._model = model
        # Strict type checks: subclasses may override the closed forms the
        # fused path re-derives, in which case the generic path is used.
        self._fused = (
            type(model) is EmpiricalModuleModel
            and type(model.thermal) is CellTemperatureModel
        )
        if self._fused:
            sheet = model.datasheet
            k_thermal = model.thermal.k
            ambient_delta = self._ambient - STC_TEMPERATURE
            self._power_base = (sheet.p_max_ref / STC_IRRADIANCE) * (
                1.0 + sheet.gamma_p_per_k * ambient_delta
            )
            self._power_slope = (sheet.p_max_ref / STC_IRRADIANCE) * (
                sheet.gamma_p_per_k * k_thermal
            )
            self._voltage_base = sheet.v_mpp_ref * (
                1.0 + sheet.beta_voc_per_k * ambient_delta
            )
            self._voltage_slope = sheet.v_mpp_ref * sheet.beta_voc_per_k * k_thermal

    # -- placement decomposition -------------------------------------------------

    def _placement_arrays(
        self, placement: Placement
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        modules = sorted(placement.modules, key=lambda m: m.module_index)
        n = len(modules)
        rows = np.fromiter((m.row for m in modules), dtype=np.intp, count=n)
        cols = np.fromiter((m.col for m in modules), dtype=np.intp, count=n)
        rotated = np.fromiter((m.rotated for m in modules), dtype=bool, count=n)
        return rows, cols, rotated

    def _validated_columns(
        self, placement: Placement
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Covered-cell irradiance columns per module, shape ``(N, k)``.

        Performs the full placement validation (bounds, valid cells, module
        overlaps) with vectorised checks equivalent to
        :meth:`Placement.validate`, raising the same :class:`PlacementError`
        categories.
        """
        if placement.footprint != self.problem.footprint:
            # The gather patterns are precomputed from the problem's module
            # footprint; silently evaluating a placement defined on another
            # footprint would return wrong energies.
            raise PlacementError(
                f"placement footprint {placement.footprint} does not match "
                f"the problem's module footprint {self.problem.footprint}"
            )
        rows, cols, rotated = self._placement_arrays(placement)
        n_rows, n_cols = self.problem.grid.shape
        n_modules = rows.shape[0]
        k = self.problem.footprint.n_cells
        columns = np.empty((n_modules, k), dtype=np.intp)
        for orientation in (False, True):
            selected = np.nonzero(rotated == orientation)[0]
            if selected.size == 0:
                continue
            gather = self._gathers[orientation]
            sel_rows = rows[selected]
            sel_cols = cols[selected]
            out_of_bounds = (
                (sel_rows < 0)
                | (sel_cols < 0)
                | (sel_rows + gather.cells_h > n_rows)
                | (sel_cols + gather.cells_w > n_cols)
            )
            if np.any(out_of_bounds):
                offender = int(selected[int(np.argmax(out_of_bounds))])
                raise PlacementError(f"module {offender} exceeds the grid bounds")
            columns[selected] = self._lookup[
                sel_rows[:, None] + gather.offset_rows[None, :],
                sel_cols[:, None] + gather.offset_cols[None, :],
            ]
        invalid = columns < 0
        if np.any(invalid):
            offender = int(np.argmax(np.any(invalid, axis=1)))
            raise PlacementError(
                f"module {offender} covers invalid (unsuitable) cells"
            )
        flat = columns.ravel()
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        duplicate = sorted_flat[1:] == sorted_flat[:-1]
        if np.any(duplicate):
            # First module (in index order) that covers an already-used cell.
            offender = int(np.min(order[1:][duplicate]) // k)
            raise PlacementError(
                f"module {offender} overlaps a previously placed module"
            )
        return columns, rows, cols, rotated

    # -- per-module irradiance ---------------------------------------------------

    def module_irradiance_series(self, placement: Placement) -> np.ndarray:
        """Per-module effective irradiance, shape ``(n_time, N)``, float64.

        Vectorised equivalent of :func:`module_irradiance_series_reference`:
        one gather over every covered cell of every module, then either a
        plain mean or a per-substring ``add.reduceat`` + min, grouped per
        orientation.  The gather stays in the solar field's storage dtype
        (typically float32); reductions accumulate in float64 and the result
        is cast exactly once, so no full-precision copy of the irradiance
        block is ever materialised.  On a daylight-compressed field the
        reduction runs on the kept rows and the result is expanded back to
        the full axis (the dropped rows reduce to exact zeros).
        """
        columns, rows, cols, rotated = self._validated_columns(placement)
        series = self._series_from_columns(columns, rows, cols, rotated)
        return self._solar.expand_axis(series)

    def _series_from_columns(
        self,
        columns: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        rotated: np.ndarray,
    ) -> np.ndarray:
        n_time = self._irradiance.shape[0]
        n_modules = columns.shape[0]
        series = np.empty((n_time, n_modules), dtype=float)
        cache = self._series_cache
        missing = []
        for index in range(n_modules):
            key = (int(rows[index]), int(cols[index]), bool(rotated[index]))
            cached = cache.get(key)
            if cached is None:
                missing.append((index, key))
            else:
                series[:, index] = cached
        if missing:
            miss_idx = np.array([index for index, _ in missing], dtype=np.intp)
            self._compute_series(columns[miss_idx], rotated[miss_idx], series, miss_idx)
            for index, key in missing:
                if len(cache) >= self._series_cache_cap:
                    break
                cache[key] = series[:, index].copy()
        return series

    def _compute_series(
        self,
        columns: np.ndarray,
        rotated: np.ndarray,
        series: np.ndarray,
        out_indices: np.ndarray,
    ) -> None:
        """Vectorised gather + reduction of the uncached modules."""
        n_time = self._irradiance.shape[0]
        k = columns.shape[1]
        for orientation in (False, True):
            selected = np.nonzero(rotated == orientation)[0]
            if selected.size == 0:
                continue
            gather = self._gathers[orientation]
            n_selected = selected.size
            n_groups = gather.group_starts.shape[0]
            block = self._irradiance[:, columns[selected].ravel()]
            if self.module_aggregation == "mean" or self.n_substrings == 1:
                values = block.reshape(n_time, n_selected, k).mean(
                    axis=2, dtype=np.float64
                )
            elif np.all(gather.group_counts == gather.group_counts[0]):
                # Equal-sized substrings (the common case): the grouped means
                # are a plain reshape + mean, cheaper than a reduceat.
                group_size = int(gather.group_counts[0])
                values = block.reshape(n_time, n_selected, n_groups, group_size).mean(
                    axis=3, dtype=np.float64
                ).min(axis=2)
            else:
                boundaries = (
                    np.arange(n_selected, dtype=np.intp)[:, None] * k
                    + gather.group_starts[None, :]
                ).ravel()
                sums = np.add.reduceat(block, boundaries, axis=1, dtype=np.float64)
                means = sums / np.tile(gather.group_counts, n_selected)[None, :]
                values = means.reshape(n_time, n_selected, n_groups).min(axis=2)
            series[:, out_indices[selected]] = values

    # -- module operating point --------------------------------------------------

    def _module_operating_point(
        self, irradiance: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-module (power, voltage, current) over time, computed once."""
        if not self._fused:
            point = self._model.operating_point(irradiance, self._ambient[:, None])
            return point.power_w, point.voltage_v, point.current_a
        g = irradiance
        power = np.maximum((self._power_base[:, None] + self._power_slope * g) * g, 0.0)
        irradiance_factor = (
            self._model.voltage_irradiance_intercept
            + self._model.voltage_irradiance_slope * g
        )
        voltage = (self._voltage_base[:, None] + self._voltage_slope * g) * irradiance_factor
        voltage = np.where(g > 0.0, np.maximum(voltage, 0.0), 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            current = np.where(voltage > 1e-9, power / np.maximum(voltage, 1e-9), 0.0)
        return power, voltage, current

    # -- evaluation ---------------------------------------------------------------

    def evaluate(
        self, placement: Placement, store_power_series: bool = False
    ) -> PlacementEvaluation:
        """Compute the yearly energy of a placement on the bound problem."""
        if placement.n_modules != self.problem.n_modules:
            raise PlacementError(
                "placement and problem disagree on the number of modules "
                f"({placement.n_modules} vs {self.problem.n_modules})"
            )
        columns, rows, cols, rotated = self._validated_columns(placement)
        irradiance = self._series_from_columns(columns, rows, cols, rotated)

        module_power, module_voltage, module_current = self._module_operating_point(
            irradiance
        )
        panel = self.array.aggregate(module_voltage, module_current)
        gross_power = self.tracker.extracted_power(panel.power_w)

        # Wiring loss: each string dissipates R * L_extra * I_string(t)^2.
        string_positions = placement.string_positions()
        extra_lengths = np.array(
            [string_extra_length(positions, self.wiring) for positions in string_positions]
        )
        loss_power = np.sum(
            self.wiring.resistance_per_m
            * extra_lengths[None, :]
            * panel.string_currents_a**2,
            axis=1,
        )
        if self.include_wiring_loss:
            net_power = np.maximum(gross_power - loss_power, 0.0)
        else:
            net_power = gross_power

        time_axis = self._time_axis
        gross_energy = time_axis.integrate_energy_wh(gross_power)
        net_energy = time_axis.integrate_energy_wh(net_power)
        wiring_loss = (
            time_axis.integrate_energy_wh(loss_power) if self.include_wiring_loss else 0.0
        )

        # Mismatch loss from the same operating point (the reference path
        # recomputed both the ideal and the aggregate a second time).
        ideal_power = np.sum(module_power, axis=-1)
        with np.errstate(divide="ignore", invalid="ignore"):
            mismatch = np.where(
                ideal_power > 1e-9,
                1.0 - panel.power_w / np.maximum(ideal_power, 1e-9),
                0.0,
            )
        daylight = panel.power_w > 1.0
        mean_mismatch = float(np.mean(mismatch[daylight])) if np.any(daylight) else 0.0

        peak_power = float(np.max(net_power)) if net_power.size else 0.0
        hours_per_year = 8760.0
        capacity_factor = (
            net_energy / (self.problem.nameplate_power_w * hours_per_year)
            if self.problem.nameplate_power_w > 0
            else 0.0
        )

        overhead = wiring_overhead_report(string_positions, spec=self.wiring)

        return PlacementEvaluation(
            placement_label=placement.label,
            annual_energy_wh=float(net_energy),
            gross_energy_wh=float(gross_energy),
            wiring_loss_wh=float(wiring_loss),
            wiring_extra_length_m=float(overhead.total_extra_m),
            wiring_extra_cost=float(overhead.extra_cost),
            mean_mismatch_loss=mean_mismatch,
            peak_power_w=peak_power,
            capacity_factor=float(capacity_factor),
            power_series_w=(
                self._solar.expand_axis(net_power) if store_power_series else None
            ),
        )

    def compare(
        self, baseline: Placement, candidate: Placement
    ) -> "PlacementComparison":
        """Evaluate two placements through the shared context and compare."""
        return PlacementComparison(
            baseline=self.evaluate(baseline), candidate=self.evaluate(candidate)
        )


# ---------------------------------------------------------------------------
# Module-level convenience wrappers
# ---------------------------------------------------------------------------


def module_irradiance_series(
    problem: FloorplanProblem,
    placement: Placement,
    aggregation: str = "substring-min",
    n_substrings: int = 2,
) -> np.ndarray:
    """Per-module *effective* plane-of-array irradiance, shape ``(n_time, N)``.

    A module covers k1 x k2 grid cells whose irradiance may differ (shadow
    trails of vents, pipes and neighbouring volumes).  How those cell values
    combine into the module's effective irradiance is governed by
    ``aggregation``:

    * ``"substring-min"`` (default) -- the module's cells are grouped into
      ``n_substrings`` bypass-diode substrings along the module's long side;
      the effective irradiance is the *minimum* of the substring means.
      This models the series-cell mismatch the paper's background section
      describes (Section II-B: non-uniform irradiance on the cells limits
      the module output): a shadow trail crossing part of a module throttles
      the whole module to its worst substring.
    * ``"mean"`` -- simple average of the covered cells; optimistic (assumes
      perfect intra-module mixing) and used by the ablation benchmarks.

    One-shot wrapper over :class:`PlacementEvaluator`; callers scoring many
    placements on the same problem should hold an evaluator instead.
    """
    evaluator = PlacementEvaluator(
        problem, module_aggregation=aggregation, n_substrings=n_substrings
    )
    return evaluator.module_irradiance_series(placement)


def evaluate_placement(
    problem: FloorplanProblem,
    placement: Placement,
    include_wiring_loss: bool = True,
    mppt: MPPTModel | None = None,
    wiring_spec: WiringSpec | None = None,
    store_power_series: bool = False,
    module_aggregation: str = "substring-min",
) -> PlacementEvaluation:
    """Compute the yearly energy of a placement on a problem instance.

    Parameters
    ----------
    problem:
        The floorplanning instance (grid, solar data, module, topology).
    placement:
        The floorplan to evaluate; it is validated against the grid first.
    include_wiring_loss:
        Subtract the resistive loss of the extra string cabling.
    mppt:
        Optional MPPT/conversion efficiency applied to the panel power.
    wiring_spec:
        Cable characteristics for the wiring-loss model.
    store_power_series:
        Keep the full panel power series in the result (memory permitting).
    module_aggregation:
        How the cells covered by a module combine into its effective
        irradiance (see :func:`module_irradiance_series`).

    One-shot wrapper over :class:`PlacementEvaluator`; callers scoring many
    placements on the same problem should hold an evaluator instead.
    """
    evaluator = PlacementEvaluator(
        problem,
        include_wiring_loss=include_wiring_loss,
        mppt=mppt,
        wiring_spec=wiring_spec,
        module_aggregation=module_aggregation,
    )
    return evaluator.evaluate(placement, store_power_series=store_power_series)


@dataclass(frozen=True)
class PlacementComparison:
    """Side-by-side comparison of two placements on the same problem."""

    baseline: PlacementEvaluation
    candidate: PlacementEvaluation

    @property
    def energy_gain_wh(self) -> float:
        """Absolute yearly energy gain of the candidate over the baseline."""
        return self.candidate.annual_energy_wh - self.baseline.annual_energy_wh

    @property
    def improvement_percent(self) -> float:
        """Relative improvement in percent (the paper's Table I last column)."""
        if self.baseline.annual_energy_wh <= 0:
            return 0.0
        return 100.0 * self.energy_gain_wh / self.baseline.annual_energy_wh

    def summary(self) -> dict:
        """Flat dictionary for reports."""
        return {
            "baseline_mwh": self.baseline.annual_energy_mwh,
            "candidate_mwh": self.candidate.annual_energy_mwh,
            "improvement_percent": self.improvement_percent,
        }


def compare_placements(
    problem: FloorplanProblem,
    baseline: Placement,
    candidate: Placement,
    include_wiring_loss: bool = True,
    module_aggregation: str = "substring-min",
) -> PlacementComparison:
    """Evaluate two placements under identical conditions and compare them."""
    evaluator = PlacementEvaluator(
        problem,
        include_wiring_loss=include_wiring_loss,
        module_aggregation=module_aggregation,
    )
    return evaluator.compare(baseline, candidate)


# ---------------------------------------------------------------------------
# Reference implementations (kept for equivalence tests and benchmarks)
# ---------------------------------------------------------------------------


def module_irradiance_series_reference(
    problem: FloorplanProblem,
    placement: Placement,
    aggregation: str = "substring-min",
    n_substrings: int = 2,
) -> np.ndarray:
    """Original per-module-loop irradiance aggregation (ground truth).

    Kept verbatim so the equivalence tests can check the vectorised
    :meth:`PlacementEvaluator.module_irradiance_series` against it and the
    evaluator benchmark can measure the speedup.
    """
    if aggregation not in ("substring-min", "mean"):
        raise PlacementError(f"unknown module aggregation {aggregation!r}")
    if n_substrings < 1:
        raise PlacementError("n_substrings must be >= 1")
    solar = problem.solar
    series = np.empty((solar.n_time, placement.n_modules), dtype=float)
    for module in placement:
        cells = module.covered_cells(placement.footprint)
        cell_series = solar.irradiance_for_cells(cells)
        if aggregation == "mean" or n_substrings == 1:
            series[:, module.module_index] = np.mean(cell_series, axis=1)
            continue
        # Split the cells into substrings along the module's long side.  The
        # covered_cells array enumerates rows x cols of the footprint in
        # C-order, so grouping by the long-axis coordinate is a reshape.
        footprint = module.footprint(placement.footprint)
        long_axis_is_cols = footprint.cells_w >= footprint.cells_h
        if long_axis_is_cols:
            long_coord = cells[:, 1] - cells[:, 1].min()
            n_long = footprint.cells_w
        else:
            long_coord = cells[:, 0] - cells[:, 0].min()
            n_long = footprint.cells_h
        groups = np.minimum(
            (long_coord * n_substrings) // max(n_long, 1), n_substrings - 1
        )
        substring_means = np.stack(
            [
                np.mean(cell_series[:, groups == g], axis=1)
                for g in range(n_substrings)
                if np.any(groups == g)
            ],
            axis=1,
        )
        series[:, module.module_index] = np.min(substring_means, axis=1)
    return series


def evaluate_placement_reference(
    problem: FloorplanProblem,
    placement: Placement,
    include_wiring_loss: bool = True,
    mppt: MPPTModel | None = None,
    wiring_spec: WiringSpec | None = None,
    store_power_series: bool = False,
    module_aggregation: str = "substring-min",
) -> PlacementEvaluation:
    """Original evaluation flow (ground truth for the vectorised evaluator).

    Recomputes the module operating point three times (panel aggregation +
    both sides of the mismatch figure), exactly like the seed implementation
    did; :meth:`PlacementEvaluator.evaluate` must agree with it to within
    1e-9 relative on every reported figure.
    """
    placement.validate(problem.grid)
    if placement.n_modules != problem.n_modules:
        raise PlacementError(
            "placement and problem disagree on the number of modules "
            f"({placement.n_modules} vs {problem.n_modules})"
        )

    array = problem.array
    tracker = mppt if mppt is not None else MPPTModel()
    wiring = wiring_spec if wiring_spec is not None else WiringSpec()
    time_grid = problem.solar.time_grid

    irradiance = module_irradiance_series_reference(
        problem, placement, aggregation=module_aggregation
    )
    ambient = problem.solar.temperature

    operating = array.operating_point_from_conditions(irradiance, ambient)
    gross_power = tracker.extracted_power(operating.power_w)

    string_positions = placement.string_positions()
    extra_lengths = np.array(
        [string_extra_length(positions, wiring) for positions in string_positions]
    )
    string_currents = operating.string_currents_a  # (n_time, n_parallel)
    loss_power = np.sum(
        wiring.resistance_per_m * extra_lengths[None, :] * string_currents**2, axis=1
    )
    if include_wiring_loss:
        net_power = np.maximum(gross_power - loss_power, 0.0)
    else:
        net_power = gross_power

    gross_energy = time_grid.integrate_energy_wh(gross_power)
    net_energy = time_grid.integrate_energy_wh(net_power)
    wiring_loss = time_grid.integrate_energy_wh(loss_power) if include_wiring_loss else 0.0

    mismatch = array.mismatch_loss_fraction(irradiance, ambient)
    daylight = operating.power_w > 1.0
    mean_mismatch = float(np.mean(mismatch[daylight])) if np.any(daylight) else 0.0

    peak_power = float(np.max(net_power)) if net_power.size else 0.0
    hours_per_year = 8760.0
    capacity_factor = (
        net_energy / (problem.nameplate_power_w * hours_per_year)
        if problem.nameplate_power_w > 0
        else 0.0
    )

    overhead = wiring_overhead_report(string_positions, spec=wiring)

    return PlacementEvaluation(
        placement_label=placement.label,
        annual_energy_wh=float(net_energy),
        gross_energy_wh=float(gross_energy),
        wiring_loss_wh=float(wiring_loss),
        wiring_extra_length_m=float(overhead.total_extra_m),
        wiring_extra_cost=float(overhead.extra_cost),
        mean_mismatch_loss=mean_mismatch,
        peak_power_w=peak_power,
        capacity_factor=float(capacity_factor),
        power_series_w=net_power if store_power_series else None,
    )
