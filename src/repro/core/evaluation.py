"""Energy evaluation of a placement.

Evaluation is where the paper's central modelling choice lives: the energy
of a floorplan is *not* the sum of the individual module energies; every
time step is aggregated through the series/parallel panel model, so a string
containing one poorly irradiated module is throttled to that module's
current (the "weak module" bottleneck discussed in Section V-B).  Wiring
losses of the sparse placement are accounted for by dissipating each
string's extra cable resistance at the string's instantaneous current.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import PlacementError
from ..pv.mppt import MPPTModel
from ..pv.wiring import WiringSpec, string_extra_length, wiring_overhead_report
from ..units import wh_to_mwh
from .placement import Placement
from .problem import FloorplanProblem


@dataclass(frozen=True)
class PlacementEvaluation:
    """Energy accounting of one placement over the simulated year."""

    placement_label: str
    annual_energy_wh: float
    gross_energy_wh: float
    wiring_loss_wh: float
    wiring_extra_length_m: float
    wiring_extra_cost: float
    mean_mismatch_loss: float
    peak_power_w: float
    capacity_factor: float
    power_series_w: Optional[np.ndarray] = None

    @property
    def annual_energy_mwh(self) -> float:
        """Net yearly energy in MWh (the unit of the paper's Table I)."""
        return wh_to_mwh(self.annual_energy_wh)

    @property
    def wiring_loss_fraction(self) -> float:
        """Wiring loss as a fraction of the gross yearly energy."""
        if self.gross_energy_wh <= 0:
            return 0.0
        return self.wiring_loss_wh / self.gross_energy_wh

    def summary(self) -> dict:
        """Flat dictionary for reports."""
        return {
            "placement": self.placement_label,
            "annual_energy_mwh": self.annual_energy_mwh,
            "gross_energy_mwh": wh_to_mwh(self.gross_energy_wh),
            "wiring_loss_wh": self.wiring_loss_wh,
            "wiring_loss_fraction": self.wiring_loss_fraction,
            "wiring_extra_length_m": self.wiring_extra_length_m,
            "wiring_extra_cost": self.wiring_extra_cost,
            "mean_mismatch_loss": self.mean_mismatch_loss,
            "peak_power_w": self.peak_power_w,
            "capacity_factor": self.capacity_factor,
        }


def module_irradiance_series(
    problem: FloorplanProblem,
    placement: Placement,
    aggregation: str = "substring-min",
    n_substrings: int = 2,
) -> np.ndarray:
    """Per-module *effective* plane-of-array irradiance, shape ``(n_time, N)``.

    A module covers k1 x k2 grid cells whose irradiance may differ (shadow
    trails of vents, pipes and neighbouring volumes).  How those cell values
    combine into the module's effective irradiance is governed by
    ``aggregation``:

    * ``"substring-min"`` (default) -- the module's cells are grouped into
      ``n_substrings`` bypass-diode substrings along the module's long side;
      the effective irradiance is the *minimum* of the substring means.
      This models the series-cell mismatch the paper's background section
      describes (Section II-B: non-uniform irradiance on the cells limits
      the module output): a shadow trail crossing part of a module throttles
      the whole module to its worst substring.
    * ``"mean"`` -- simple average of the covered cells; optimistic (assumes
      perfect intra-module mixing) and used by the ablation benchmarks.
    """
    if aggregation not in ("substring-min", "mean"):
        raise PlacementError(f"unknown module aggregation {aggregation!r}")
    if n_substrings < 1:
        raise PlacementError("n_substrings must be >= 1")
    solar = problem.solar
    series = np.empty((solar.n_time, placement.n_modules), dtype=float)
    for module in placement:
        cells = module.covered_cells(placement.footprint)
        cell_series = solar.irradiance_for_cells(cells)
        if aggregation == "mean" or n_substrings == 1:
            series[:, module.module_index] = np.mean(cell_series, axis=1)
            continue
        # Split the cells into substrings along the module's long side.  The
        # covered_cells array enumerates rows x cols of the footprint in
        # C-order, so grouping by the long-axis coordinate is a reshape.
        footprint = module.footprint(placement.footprint)
        long_axis_is_cols = footprint.cells_w >= footprint.cells_h
        if long_axis_is_cols:
            long_coord = cells[:, 1] - cells[:, 1].min()
            n_long = footprint.cells_w
        else:
            long_coord = cells[:, 0] - cells[:, 0].min()
            n_long = footprint.cells_h
        groups = np.minimum(
            (long_coord * n_substrings) // max(n_long, 1), n_substrings - 1
        )
        substring_means = np.stack(
            [
                np.mean(cell_series[:, groups == g], axis=1)
                for g in range(n_substrings)
                if np.any(groups == g)
            ],
            axis=1,
        )
        series[:, module.module_index] = np.min(substring_means, axis=1)
    return series


def evaluate_placement(
    problem: FloorplanProblem,
    placement: Placement,
    include_wiring_loss: bool = True,
    mppt: MPPTModel | None = None,
    wiring_spec: WiringSpec | None = None,
    store_power_series: bool = False,
    module_aggregation: str = "substring-min",
) -> PlacementEvaluation:
    """Compute the yearly energy of a placement on a problem instance.

    Parameters
    ----------
    problem:
        The floorplanning instance (grid, solar data, module, topology).
    placement:
        The floorplan to evaluate; it is validated against the grid first.
    include_wiring_loss:
        Subtract the resistive loss of the extra string cabling.
    mppt:
        Optional MPPT/conversion efficiency applied to the panel power.
    wiring_spec:
        Cable characteristics for the wiring-loss model.
    store_power_series:
        Keep the full panel power series in the result (memory permitting).
    module_aggregation:
        How the cells covered by a module combine into its effective
        irradiance (see :func:`module_irradiance_series`).
    """
    placement.validate(problem.grid)
    if placement.n_modules != problem.n_modules:
        raise PlacementError(
            "placement and problem disagree on the number of modules "
            f"({placement.n_modules} vs {problem.n_modules})"
        )

    array = problem.array
    tracker = mppt if mppt is not None else MPPTModel()
    wiring = wiring_spec if wiring_spec is not None else WiringSpec()
    time_grid = problem.solar.time_grid

    irradiance = module_irradiance_series(problem, placement, aggregation=module_aggregation)
    ambient = problem.solar.temperature

    operating = array.operating_point_from_conditions(irradiance, ambient)
    gross_power = tracker.extracted_power(operating.power_w)

    # Wiring loss: each string dissipates R * L_extra * I_string(t)^2.
    string_positions = placement.string_positions()
    extra_lengths = np.array(
        [string_extra_length(positions, wiring) for positions in string_positions]
    )
    string_currents = operating.string_currents_a  # (n_time, n_parallel)
    loss_power = np.sum(
        wiring.resistance_per_m * extra_lengths[None, :] * string_currents**2, axis=1
    )
    if include_wiring_loss:
        net_power = np.maximum(gross_power - loss_power, 0.0)
    else:
        net_power = gross_power

    gross_energy = time_grid.integrate_energy_wh(gross_power)
    net_energy = time_grid.integrate_energy_wh(net_power)
    wiring_loss = time_grid.integrate_energy_wh(loss_power) if include_wiring_loss else 0.0

    mismatch = array.mismatch_loss_fraction(irradiance, ambient)
    daylight = operating.power_w > 1.0
    mean_mismatch = float(np.mean(mismatch[daylight])) if np.any(daylight) else 0.0

    peak_power = float(np.max(net_power)) if net_power.size else 0.0
    hours_per_year = 8760.0
    capacity_factor = (
        net_energy / (problem.nameplate_power_w * hours_per_year)
        if problem.nameplate_power_w > 0
        else 0.0
    )

    overhead = wiring_overhead_report(string_positions, spec=wiring)

    return PlacementEvaluation(
        placement_label=placement.label,
        annual_energy_wh=float(net_energy),
        gross_energy_wh=float(gross_energy),
        wiring_loss_wh=float(wiring_loss),
        wiring_extra_length_m=float(overhead.total_extra_m),
        wiring_extra_cost=float(overhead.extra_cost),
        mean_mismatch_loss=mean_mismatch,
        peak_power_w=peak_power,
        capacity_factor=float(capacity_factor),
        power_series_w=net_power if store_power_series else None,
    )


@dataclass(frozen=True)
class PlacementComparison:
    """Side-by-side comparison of two placements on the same problem."""

    baseline: PlacementEvaluation
    candidate: PlacementEvaluation

    @property
    def energy_gain_wh(self) -> float:
        """Absolute yearly energy gain of the candidate over the baseline."""
        return self.candidate.annual_energy_wh - self.baseline.annual_energy_wh

    @property
    def improvement_percent(self) -> float:
        """Relative improvement in percent (the paper's Table I last column)."""
        if self.baseline.annual_energy_wh <= 0:
            return 0.0
        return 100.0 * self.energy_gain_wh / self.baseline.annual_energy_wh

    def summary(self) -> dict:
        """Flat dictionary for reports."""
        return {
            "baseline_mwh": self.baseline.annual_energy_mwh,
            "candidate_mwh": self.candidate.annual_energy_mwh,
            "improvement_percent": self.improvement_percent,
        }


def compare_placements(
    problem: FloorplanProblem,
    baseline: Placement,
    candidate: Placement,
    include_wiring_loss: bool = True,
    module_aggregation: str = "substring-min",
) -> PlacementComparison:
    """Evaluate two placements under identical conditions and compare them."""
    return PlacementComparison(
        baseline=evaluate_placement(
            problem, baseline, include_wiring_loss, module_aggregation=module_aggregation
        ),
        candidate=evaluate_placement(
            problem, candidate, include_wiring_loss, module_aggregation=module_aggregation
        ),
    )
