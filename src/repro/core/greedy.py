"""The paper's greedy PV floorplanning algorithm (Section III-C, Figure 5).

Exhaustively enumerating placements is hopeless (O(Ng^N) candidate sets), so
the paper allocates modules greedily in decreasing order of a per-cell
*suitability* metric:

1. compute the suitability matrix S from the G/T traces (75th percentile of
   G with a temperature correction factor);
2. rank candidate grid positions by non-increasing suitability, breaking
   ties in favour of positions closer to the modules already placed;
3. iterate over the N modules *series-first* (all modules of a string are
   placed before moving to the next string) and assign each the best-ranked
   position that (a) still fits -- a module covers k1 x k2 cells, which are
   then removed from the candidate list -- and (b) does not exceed the
   dispersion threshold (twice the average distance of the already placed
   modules).

The implementation mirrors that structure; the only liberty taken is that a
candidate violating the distance threshold is skipped (the scan moves to the
next candidate) rather than dropping the module altogether, and the
threshold is relaxed if no candidate at all satisfies it -- both required
for the algorithm to always place exactly N modules.

Candidate maintenance is *incremental*: the feasible-anchor set and the
per-anchor scores/centres are materialised once, and placing a module only
removes the candidates whose window intersects the new footprint (a
``(k1+k2-1)``-sized neighbourhood) instead of rebuilding full-grid masks per
module.  :func:`greedy_floorplan_reference` keeps the original
rebuild-everything flow as the ground truth: both must produce *identical*
placements module for module.

Warm starts exploit the algorithm's *prefix property*: the choice at step
``i`` depends only on the modules placed at steps ``0..i-1`` (``n_modules``
merely bounds the loop), so the solution for ``n`` modules is literally the
first ``n`` rows of the solution for any larger instance of the same roof.
When a caller passes a ``warm_start`` whose ``exact_prefix`` flag promises
the hint came from the same problem with a smaller ``n_modules``, the
placer validates the hinted prefix (bounds, validity, overlap -- a lying
hint falls back to a cold solve) and resumes selection at module ``k``,
skipping the per-module argmax scans for the replayed prefix entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner -> core)
    from ..runner.solvers import WarmStart

from ..errors import InfeasiblePlacementError
from ..geometry import Point2D
from ..telemetry import trace_event, tracing_enabled
from .constraints import (
    DistanceThreshold,
    anchor_center,
    anchors_overlapping_placement,
    feasible_anchor_mask,
    mark_occupied,
    sliding_window_sum,
)
from .placement import ModuleFootprint, ModulePlacement, Placement
from .problem import FloorplanProblem
from .suitability import SuitabilityConfig, SuitabilityMap, compute_suitability


@dataclass(frozen=True)
class GreedyConfig:
    """Tunables of the greedy floorplanner.

    ``tie_tolerance`` is the relative suitability band within which two
    candidates are considered "identical" so the distance tie-breaker of the
    paper's ranking kicks in (1 % by default): it is what keeps the sparse
    placement *local* -- among near-equivalent cells the one closest to the
    modules already placed wins, so the wiring overhead stays in the tens of
    metres the paper reports instead of spreading across the whole roof.
    """

    footprint_aggregate: str = "mean"
    tie_tolerance: float = 0.01
    respect_distance_threshold: bool = True

    def __post_init__(self) -> None:
        if self.footprint_aggregate not in ("mean", "min", "anchor"):
            raise InfeasiblePlacementError(
                f"unknown footprint aggregate {self.footprint_aggregate!r}"
            )
        if self.tie_tolerance < 0:
            raise InfeasiblePlacementError("tie_tolerance must be non-negative")


@dataclass(frozen=True)
class GreedyResult:
    """Outcome of a greedy floorplanning run.

    ``warm_modules`` counts the modules replayed from a validated
    warm-start prefix (0 = cold solve or rejected hint).
    """

    placement: Placement
    suitability: SuitabilityMap
    runtime_s: float
    relaxed_threshold_count: int
    warm_modules: int = 0


def _footprint_score_map(
    suitability: SuitabilityMap, cells_h: int, cells_w: int, aggregate: str
) -> np.ndarray:
    """Score of every anchor = aggregate suitability over the module footprint.

    Anchors whose footprint exits the grid or touches an invalid cell get
    ``-inf``.  Vectorised with a sliding-window sum over the value map.
    """
    values = suitability.values
    n_rows, n_cols = values.shape
    scores = np.full((n_rows, n_cols), -np.inf)
    if cells_h > n_rows or cells_w > n_cols:
        return scores

    finite = np.nan_to_num(values, nan=0.0)
    invalid = np.isnan(values).astype(np.int64)

    sums = sliding_window_sum(finite, cells_h, cells_w)
    bad = sliding_window_sum(invalid.astype(float), cells_h, cells_w) > 0.5
    n_cells = cells_h * cells_w

    if aggregate == "mean":
        window_scores = sums / n_cells
    elif aggregate == "anchor":
        window_scores = values[: n_rows - cells_h + 1, : n_cols - cells_w + 1].copy()
        window_scores = np.nan_to_num(window_scores, nan=-np.inf)
    else:  # "min": fall back to an explicit window minimum (rarely used)
        window_scores = np.full((n_rows - cells_h + 1, n_cols - cells_w + 1), np.inf)
        for dr in range(cells_h):
            for dc in range(cells_w):
                window_scores = np.minimum(
                    window_scores,
                    np.nan_to_num(
                        values[dr : dr + n_rows - cells_h + 1, dc : dc + n_cols - cells_w + 1],
                        nan=-np.inf,
                    ),
                )
    window_scores = np.where(bad, -np.inf, window_scores)
    scores[: n_rows - cells_h + 1, : n_cols - cells_w + 1] = window_scores
    return scores


class _CandidateSet:
    """Feasible anchors of one orientation, maintained incrementally.

    The arrays stay in the row-major order ``np.nonzero`` produced them in,
    and placing a module only *filters* them (boolean keep-mask), so every
    argmax/argmin tie is broken exactly like the full-rebuild reference --
    the two implementations yield identical placements module for module.
    """

    def __init__(self, problem: FloorplanProblem, fp: ModuleFootprint, rotated: bool,
                 score_map: np.ndarray, occupied: np.ndarray | None = None):
        self.fp = fp
        self.rotated = rotated
        if occupied is None:
            occupied = np.zeros(problem.grid.shape, dtype=bool)
        feasible = feasible_anchor_mask(problem.grid.valid_mask, occupied, fp)
        candidates = feasible & np.isfinite(score_map)
        rows, cols = np.nonzero(candidates)
        self.rows = rows
        self.cols = cols
        self.values = score_map[rows, cols]
        pitch = problem.grid.pitch
        self.centers_u = (cols + fp.cells_w / 2.0) * pitch
        self.centers_v = (rows + fp.cells_h / 2.0) * pitch

    def remove_overlapping(self, row: int, col: int, placed_fp: ModuleFootprint) -> None:
        """Drop the anchors whose window intersects a just-placed module."""
        drop = anchors_overlapping_placement(
            self.rows, self.cols, self.fp, row, col, placed_fp
        )
        if not np.any(drop):
            return
        keep = ~drop
        self.rows = self.rows[keep]
        self.cols = self.cols[keep]
        self.values = self.values[keep]
        self.centers_u = self.centers_u[keep]
        self.centers_v = self.centers_v[keep]


def greedy_floorplan(
    problem: FloorplanProblem,
    suitability: SuitabilityMap | None = None,
    config: GreedyConfig | None = None,
    warm_start: "WarmStart | None" = None,
) -> GreedyResult:
    """Run the paper's greedy placement algorithm on a problem instance.

    ``warm_start`` resumes placement after a validated prefix replay (see
    the module docstring); a hint without ``exact_prefix`` or one that
    fails validation is ignored and the solve runs cold, so passing a
    stale or foreign hint can never change the answer -- only the time it
    takes to reach it.
    """
    cfg = config if config is not None else GreedyConfig()
    start = time.perf_counter()

    if suitability is None:
        suitability = compute_suitability(
            problem.solar,
            SuitabilityConfig(percentile=problem.suitability_percentile),
            problem.module_model,
        )

    footprint = problem.footprint
    orientations = [(footprint, False)]
    if problem.allow_rotation and footprint.cells_w != footprint.cells_h:
        orientations.append((footprint.rotated(), True))

    score_maps = {
        rotated: _footprint_score_map(
            suitability, fp.cells_h, fp.cells_w, cfg.footprint_aggregate
        )
        for fp, rotated in orientations
    }

    warm = (
        _validated_warm_prefix(problem, warm_start, score_maps, orientations)
        if warm_start is not None
        else None
    )
    if warm is not None:
        placed, placed_centers, occupied, relaxed = warm
    else:
        placed, placed_centers, occupied, relaxed = [], [], None, 0
    warm_modules = len(placed)

    # Rebuilding the candidate sets against the prefix's occupied mask gives
    # exactly the state the incremental removals would have left behind (same
    # feasibility criterion, same row-major order), at one sliding-window
    # pass instead of one removal scan per replayed module.
    candidate_sets = [
        _CandidateSet(problem, fp, rotated, score_maps[rotated], occupied=occupied)
        for fp, rotated in orientations
    ]

    module_diagonal = problem.grid.pitch * float(
        np.hypot(footprint.cells_w, footprint.cells_h)
    )
    threshold = DistanceThreshold(
        factor=problem.distance_threshold_factor,
        min_radius_m=max(5.0 * module_diagonal, 6.0),
    )
    traced = tracing_enabled()
    if traced and warm_modules:
        trace_event(
            "greedy.warm_start",
            modules=warm_modules,
            source=getattr(warm_start, "source", None),
        )

    for module_index in range(warm_modules, problem.n_modules):
        relaxed_before = relaxed
        best = _select_candidate(cfg, candidate_sets, placed_centers, threshold)
        if best is None:
            # No candidate satisfies the dispersion filter: relax it once.
            relaxed += 1
            best = _select_candidate(cfg, candidate_sets, placed_centers, None)
        if best is None:
            raise InfeasiblePlacementError(
                f"could not place module {module_index}: no feasible anchor remains"
            )
        row, col, rotated, fp = best
        placed.append(
            ModulePlacement(module_index=module_index, row=row, col=col, rotated=rotated)
        )
        placed_centers.append(anchor_center(row, col, fp, problem.grid.pitch))
        for candidate_set in candidate_sets:
            candidate_set.remove_overlapping(row, col, fp)
        if traced:
            # Per-placement accounting: how fast the candidate sets shrink
            # and whether the dispersion threshold had to be relaxed.
            trace_event(
                "greedy.step",
                module=module_index,
                row=row,
                col=col,
                candidates_left=int(sum(cs.rows.size for cs in candidate_sets)),
                relaxed=relaxed > relaxed_before,
            )

    runtime = time.perf_counter() - start
    placement = Placement(
        modules=tuple(placed),
        footprint=footprint,
        topology=problem.topology,
        grid_pitch=problem.grid.pitch,
        label="greedy",
        metadata={
            "algorithm": "greedy",
            "runtime_s": runtime,
            "suitability_percentile": suitability.config.percentile,
            "relaxed_threshold_count": relaxed,
        },
    )
    return GreedyResult(
        placement=placement,
        suitability=suitability,
        runtime_s=runtime,
        relaxed_threshold_count=relaxed,
        warm_modules=warm_modules,
    )


def _validated_warm_prefix(
    problem: FloorplanProblem,
    warm_start: "WarmStart",
    score_maps: dict,
    orientations,
):
    """Validate a warm-start hint as this problem's own greedy prefix.

    Returns ``(placed, placed_centers, occupied, relaxed)`` when the hint is
    usable, ``None`` otherwise.  The checks are deliberately cheap -- O(k)
    in the prefix length, never touching the candidate arrays: a finite
    score at the hinted anchor already proves the footprint is in bounds and
    clear of invalid cells, so only mutual overlap needs tracking.
    """
    hint = getattr(warm_start, "placement", None)
    if hint is None or not getattr(warm_start, "exact_prefix", False):
        return None
    if not hint.modules or len(hint.modules) > problem.n_modules:
        return None
    if hint.metadata.get("algorithm") != "greedy":
        return None
    footprint = problem.footprint
    if (hint.footprint.cells_w, hint.footprint.cells_h) != (
        footprint.cells_w,
        footprint.cells_h,
    ):
        return None
    if abs(hint.grid_pitch - problem.grid.pitch) > 1e-9:
        return None

    footprint_by_rotation = {rotated: fp for fp, rotated in orientations}
    occupied = np.zeros(problem.grid.shape, dtype=bool)
    placed: list[ModulePlacement] = []
    placed_centers: list[Point2D] = []
    for expected_index, module in enumerate(hint.modules):
        if module.module_index != expected_index:
            return None
        fp = footprint_by_rotation.get(module.rotated)
        if fp is None:
            return None
        score_map = score_maps[module.rotated]
        row, col = module.row, module.col
        if not (0 <= row < score_map.shape[0] and 0 <= col < score_map.shape[1]):
            return None
        if not np.isfinite(score_map[row, col]):
            return None
        if occupied[row : row + fp.cells_h, col : col + fp.cells_w].any():
            return None
        placed.append(
            ModulePlacement(
                module_index=expected_index, row=row, col=col, rotated=module.rotated
            )
        )
        placed_centers.append(anchor_center(row, col, fp, problem.grid.pitch))
        mark_occupied(occupied, row, col, fp)

    # The hint's own relax tally *is* the cold solve's tally over the same
    # prefix: identical algorithm, identical decisions.
    relaxed = int(hint.metadata.get("relaxed_threshold_count", 0))
    return placed, placed_centers, occupied, relaxed


def _select_candidate(
    cfg: GreedyConfig,
    candidate_sets: list[_CandidateSet],
    placed_centers: list[Point2D],
    threshold: DistanceThreshold | None,
):
    """Pick the best feasible anchor across the allowed orientations.

    Returns ``(row, col, rotated, footprint)`` or ``None`` when nothing fits.
    """
    best_tuple = None
    best_score = -np.inf
    best_distance = np.inf

    apply_threshold = (
        threshold is not None and cfg.respect_distance_threshold and placed_centers
    )

    if placed_centers:
        centroid = Point2D(
            float(np.mean([p.x for p in placed_centers])),
            float(np.mean([p.y for p in placed_centers])),
        )
        limit = threshold.threshold_for(placed_centers) if apply_threshold else np.inf
    else:
        centroid = None
        limit = np.inf

    for candidate_set in candidate_sets:
        if candidate_set.rows.size == 0:
            continue
        rows = candidate_set.rows
        cols = candidate_set.cols
        values = candidate_set.values

        if centroid is not None:
            distances = np.hypot(
                candidate_set.centers_u - centroid.x,
                candidate_set.centers_v - centroid.y,
            )
        else:
            distances = np.zeros_like(values)

        if apply_threshold and np.isfinite(limit):
            within = distances <= limit
            if not np.any(within):
                continue
            rows, cols, values, distances = (
                rows[within],
                cols[within],
                values[within],
                distances[within],
            )

        top = float(np.max(values))
        near_top = values >= top - cfg.tie_tolerance * max(abs(top), 1.0)
        tie_rows, tie_cols = rows[near_top], cols[near_top]
        tie_distances = distances[near_top]
        pick = int(np.argmin(tie_distances))
        score = top
        distance = float(tie_distances[pick])

        better = score > best_score + 1e-15 or (
            abs(score - best_score) <= cfg.tie_tolerance * max(abs(score), 1.0)
            and distance < best_distance
        )
        if better:
            best_score = score
            best_distance = distance
            best_tuple = (
                int(tie_rows[pick]),
                int(tie_cols[pick]),
                candidate_set.rotated,
                candidate_set.fp,
            )

    return best_tuple


# ---------------------------------------------------------------------------
# Reference implementation (kept for equivalence tests and benchmarks)
# ---------------------------------------------------------------------------


def greedy_floorplan_reference(
    problem: FloorplanProblem,
    suitability: SuitabilityMap | None = None,
    config: GreedyConfig | None = None,
) -> GreedyResult:
    """Original greedy flow rebuilding full-grid masks per module.

    Ground truth for the incremental :func:`greedy_floorplan`: the two must
    return identical placements module for module (the equivalence test
    checks this on the scenario catalog).
    """
    cfg = config if config is not None else GreedyConfig()
    start = time.perf_counter()

    if suitability is None:
        suitability = compute_suitability(
            problem.solar,
            SuitabilityConfig(percentile=problem.suitability_percentile),
            problem.module_model,
        )

    footprint = problem.footprint
    orientations = [(footprint, False)]
    if problem.allow_rotation and footprint.cells_w != footprint.cells_h:
        orientations.append((footprint.rotated(), True))

    score_maps = {
        rotated: _footprint_score_map(
            suitability, fp.cells_h, fp.cells_w, cfg.footprint_aggregate
        )
        for fp, rotated in orientations
    }

    occupied = np.zeros(problem.grid.shape, dtype=bool)
    module_diagonal = problem.grid.pitch * float(
        np.hypot(footprint.cells_w, footprint.cells_h)
    )
    threshold = DistanceThreshold(
        factor=problem.distance_threshold_factor,
        min_radius_m=max(5.0 * module_diagonal, 6.0),
    )
    placed: list[ModulePlacement] = []
    placed_centers: list[Point2D] = []
    relaxed = 0

    for module_index in range(problem.n_modules):
        best = _select_candidate_reference(
            problem, cfg, orientations, score_maps, occupied, placed_centers, threshold
        )
        if best is None:
            relaxed += 1
            best = _select_candidate_reference(
                problem, cfg, orientations, score_maps, occupied, placed_centers, None
            )
        if best is None:
            raise InfeasiblePlacementError(
                f"could not place module {module_index}: no feasible anchor remains"
            )
        row, col, rotated, fp = best
        placed.append(
            ModulePlacement(module_index=module_index, row=row, col=col, rotated=rotated)
        )
        placed_centers.append(anchor_center(row, col, fp, problem.grid.pitch))
        mark_occupied(occupied, row, col, fp)

    runtime = time.perf_counter() - start
    placement = Placement(
        modules=tuple(placed),
        footprint=footprint,
        topology=problem.topology,
        grid_pitch=problem.grid.pitch,
        label="greedy",
        metadata={
            "algorithm": "greedy",
            "runtime_s": runtime,
            "suitability_percentile": suitability.config.percentile,
            "relaxed_threshold_count": relaxed,
        },
    )
    return GreedyResult(
        placement=placement,
        suitability=suitability,
        runtime_s=runtime,
        relaxed_threshold_count=relaxed,
    )


def _select_candidate_reference(
    problem: FloorplanProblem,
    cfg: GreedyConfig,
    orientations,
    score_maps,
    occupied: np.ndarray,
    placed_centers: list[Point2D],
    threshold: DistanceThreshold | None,
):
    """Full-rebuild candidate selection of the reference greedy flow."""
    best_tuple = None
    best_score = -np.inf
    best_distance = np.inf

    apply_threshold = (
        threshold is not None and cfg.respect_distance_threshold and placed_centers
    )

    if placed_centers:
        centroid = Point2D(
            float(np.mean([p.x for p in placed_centers])),
            float(np.mean([p.y for p in placed_centers])),
        )
        limit = threshold.threshold_for(placed_centers) if apply_threshold else np.inf
    else:
        centroid = None
        limit = np.inf

    for fp, rotated in orientations:
        feasible = feasible_anchor_mask(problem.grid.valid_mask, occupied, fp)
        scores = score_maps[rotated]
        candidate_scores = np.where(feasible, scores, -np.inf)
        if not np.any(np.isfinite(candidate_scores)):
            continue

        rows, cols = np.nonzero(np.isfinite(candidate_scores))
        values = candidate_scores[rows, cols]

        if centroid is not None:
            centers_u = (cols + fp.cells_w / 2.0) * problem.grid.pitch
            centers_v = (rows + fp.cells_h / 2.0) * problem.grid.pitch
            distances = np.hypot(centers_u - centroid.x, centers_v - centroid.y)
        else:
            distances = np.zeros_like(values)

        if apply_threshold and np.isfinite(limit):
            within = distances <= limit
            if not np.any(within):
                continue
            rows, cols, values, distances = (
                rows[within],
                cols[within],
                values[within],
                distances[within],
            )

        top = float(np.max(values))
        near_top = values >= top - cfg.tie_tolerance * max(abs(top), 1.0)
        tie_rows, tie_cols = rows[near_top], cols[near_top]
        tie_distances = distances[near_top]
        pick = int(np.argmin(tie_distances))
        score = top
        distance = float(tie_distances[pick])

        better = score > best_score + 1e-15 or (
            abs(score - best_score) <= cfg.tie_tolerance * max(abs(score), 1.0)
            and distance < best_distance
        )
        if better:
            best_score = score
            best_distance = distance
            best_tuple = (int(tie_rows[pick]), int(tie_cols[pick]), rotated, fp)

    return best_tuple
