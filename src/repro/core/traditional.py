"""Traditional (compact) placement baseline.

The paper compares its sparse floorplans against the conventional practice:
the N modules are packed tightly together, and the whole block is put on the
most irradiated part of the roof ("notice that these placements are
determined using accurate spatio-temporal irradiance information that are
not normally available to installators.  Therefore, we are comparing our
solution to a particularly good reference").

The baseline implemented here follows that description:

1. the N modules are arranged as a compact block of ``n_parallel`` rows
   (one per string) of ``n_series`` modules each;
2. the block is anchored at the feasible position maximising the total
   suitability of the covered cells (i.e. the most irradiated area);
3. when obstacles prevent the full block from fitting anywhere, the block
   degrades gracefully: first string-rows are placed as contiguous units
   packed as close to each other as possible, and as a last resort modules
   are packed one by one around the best seed position.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import InfeasiblePlacementError
from ..geometry import Point2D
from .constraints import (
    anchor_center,
    feasible_anchor_mask,
    mark_occupied,
    sliding_window_sum,
)
from .placement import ModuleFootprint, ModulePlacement, Placement
from .problem import FloorplanProblem
from .suitability import SuitabilityConfig, SuitabilityMap, compute_suitability


@dataclass(frozen=True)
class TraditionalConfig:
    """Tunables of the compact baseline."""

    modules_per_row: int | None = None
    gap_cells: int = 0

    def __post_init__(self) -> None:
        if self.modules_per_row is not None and self.modules_per_row < 1:
            raise InfeasiblePlacementError("modules_per_row must be positive")
        if self.gap_cells < 0:
            raise InfeasiblePlacementError("gap_cells must be non-negative")


@dataclass(frozen=True)
class TraditionalResult:
    """Outcome of the compact-baseline placement."""

    placement: Placement
    suitability: SuitabilityMap
    runtime_s: float
    strategy: str


def _window_score(values: np.ndarray, cells_h: int, cells_w: int) -> np.ndarray:
    """Sliding-window sum of suitability (NaN cells poison the window)."""
    n_rows, n_cols = values.shape
    scores = np.full((n_rows, n_cols), -np.inf)
    if cells_h > n_rows or cells_w > n_cols:
        return scores
    finite = np.nan_to_num(values, nan=0.0)
    invalid = np.isnan(values).astype(float)

    sums = sliding_window_sum(finite, cells_h, cells_w)
    bad = sliding_window_sum(invalid, cells_h, cells_w) > 0.5
    scores[: n_rows - cells_h + 1, : n_cols - cells_w + 1] = np.where(bad, -np.inf, sums)
    return scores


def traditional_floorplan(
    problem: FloorplanProblem,
    suitability: SuitabilityMap | None = None,
    config: TraditionalConfig | None = None,
) -> TraditionalResult:
    """Place the modules as a compact block on the most irradiated area."""
    cfg = config if config is not None else TraditionalConfig()
    start = time.perf_counter()

    if suitability is None:
        suitability = compute_suitability(
            problem.solar,
            SuitabilityConfig(percentile=problem.suitability_percentile),
            problem.module_model,
        )

    footprint = problem.footprint
    modules_per_row = (
        cfg.modules_per_row if cfg.modules_per_row is not None else problem.topology.n_series
    )
    modules_per_row = min(modules_per_row, problem.n_modules)
    n_rows_of_modules = int(np.ceil(problem.n_modules / modules_per_row))

    placement_modules = _try_full_block(
        problem, suitability, footprint, modules_per_row, n_rows_of_modules, cfg.gap_cells
    )
    strategy = "full-block"
    if placement_modules is None:
        placement_modules = _try_string_rows(
            problem, suitability, footprint, modules_per_row, cfg.gap_cells
        )
        strategy = "string-rows"
    if placement_modules is None:
        placement_modules = _pack_modules_individually(problem, suitability, footprint)
        strategy = "packed-modules"
    if placement_modules is None:
        raise InfeasiblePlacementError(
            "the compact baseline could not fit the requested modules on the roof"
        )

    runtime = time.perf_counter() - start
    placement = Placement(
        modules=tuple(placement_modules),
        footprint=footprint,
        topology=problem.topology,
        grid_pitch=problem.grid.pitch,
        label="traditional",
        metadata={"algorithm": "traditional", "strategy": strategy, "runtime_s": runtime},
    )
    return TraditionalResult(
        placement=placement, suitability=suitability, runtime_s=runtime, strategy=strategy
    )


def _block_module_offsets(
    footprint: ModuleFootprint,
    modules_per_row: int,
    n_rows_of_modules: int,
    n_modules: int,
    gap_cells: int,
) -> list[tuple[int, int]]:
    """Anchor offsets (d_row, d_col) of each module inside the compact block."""
    offsets = []
    for index in range(n_modules):
        block_row = index // modules_per_row
        block_col = index % modules_per_row
        offsets.append(
            (
                block_row * (footprint.cells_h + gap_cells),
                block_col * (footprint.cells_w + gap_cells),
            )
        )
    return offsets


def _try_full_block(
    problem: FloorplanProblem,
    suitability: SuitabilityMap,
    footprint: ModuleFootprint,
    modules_per_row: int,
    n_rows_of_modules: int,
    gap_cells: int,
):
    """Attempt to place the whole compact block at its best-scoring anchor."""
    block_h = n_rows_of_modules * footprint.cells_h + (n_rows_of_modules - 1) * gap_cells
    block_w = modules_per_row * footprint.cells_w + (modules_per_row - 1) * gap_cells
    block_footprint = ModuleFootprint(cells_w=block_w, cells_h=block_h)

    feasible = feasible_anchor_mask(
        problem.grid.valid_mask, np.zeros(problem.grid.shape, dtype=bool), block_footprint
    )
    if not np.any(feasible):
        return None
    scores = _window_score(suitability.values, block_h, block_w)
    scores = np.where(feasible, scores, -np.inf)
    if not np.any(np.isfinite(scores)):
        return None
    anchor_row, anchor_col = np.unravel_index(int(np.argmax(scores)), scores.shape)

    offsets = _block_module_offsets(
        footprint, modules_per_row, n_rows_of_modules, problem.n_modules, gap_cells
    )
    return [
        ModulePlacement(
            module_index=i, row=int(anchor_row + dr), col=int(anchor_col + dc), rotated=False
        )
        for i, (dr, dc) in enumerate(offsets)
    ]


def _try_string_rows(
    problem: FloorplanProblem,
    suitability: SuitabilityMap,
    footprint: ModuleFootprint,
    modules_per_row: int,
    gap_cells: int,
):
    """Place each string as a contiguous row, packing rows as close as possible."""
    row_h = footprint.cells_h
    row_w = modules_per_row * footprint.cells_w + (modules_per_row - 1) * gap_cells
    row_footprint = ModuleFootprint(cells_w=row_w, cells_h=row_h)

    occupied = np.zeros(problem.grid.shape, dtype=bool)
    modules: list[ModulePlacement] = []
    placed_centers: list[Point2D] = []

    n_full_rows = problem.n_modules // modules_per_row
    remainder = problem.n_modules % modules_per_row
    row_specs = [modules_per_row] * n_full_rows + ([remainder] if remainder else [])

    module_index = 0
    for row_number, row_modules in enumerate(row_specs):
        this_row_w = row_modules * footprint.cells_w + (row_modules - 1) * gap_cells
        this_footprint = ModuleFootprint(cells_w=this_row_w, cells_h=row_h)
        feasible = feasible_anchor_mask(problem.grid.valid_mask, occupied, this_footprint)
        if not np.any(feasible):
            return None
        scores = _window_score(suitability.values, row_h, this_row_w)
        scores = np.where(feasible, scores, -np.inf)
        rows, cols = np.nonzero(np.isfinite(scores))
        if rows.size == 0:
            return None
        if not placed_centers:
            pick = int(np.argmax(scores[rows, cols]))
        else:
            centroid = Point2D(
                float(np.mean([p.x for p in placed_centers])),
                float(np.mean([p.y for p in placed_centers])),
            )
            centers_u = (cols + this_row_w / 2.0) * problem.grid.pitch
            centers_v = (rows + row_h / 2.0) * problem.grid.pitch
            distances = np.hypot(centers_u - centroid.x, centers_v - centroid.y)
            pick = int(np.argmin(distances))
        anchor_row, anchor_col = int(rows[pick]), int(cols[pick])

        for k in range(row_modules):
            col = anchor_col + k * (footprint.cells_w + gap_cells)
            modules.append(
                ModulePlacement(module_index=module_index, row=anchor_row, col=col, rotated=False)
            )
            placed_centers.append(
                anchor_center(anchor_row, col, footprint, problem.grid.pitch)
            )
            mark_occupied(occupied, anchor_row, col, footprint)
            module_index += 1
    return modules


def _pack_modules_individually(
    problem: FloorplanProblem, suitability: SuitabilityMap, footprint: ModuleFootprint
):
    """Last-resort compact packing: modules hug the best seed position."""
    occupied = np.zeros(problem.grid.shape, dtype=bool)
    modules: list[ModulePlacement] = []
    placed_centers: list[Point2D] = []

    seed_scores = _window_score(suitability.values, footprint.cells_h, footprint.cells_w)
    feasible = feasible_anchor_mask(problem.grid.valid_mask, occupied, footprint)
    seed_scores = np.where(feasible, seed_scores, -np.inf)
    if not np.any(np.isfinite(seed_scores)):
        return None
    seed_row, seed_col = np.unravel_index(int(np.argmax(seed_scores)), seed_scores.shape)
    seed_center = anchor_center(int(seed_row), int(seed_col), footprint, problem.grid.pitch)

    for module_index in range(problem.n_modules):
        feasible = feasible_anchor_mask(problem.grid.valid_mask, occupied, footprint)
        rows, cols = np.nonzero(feasible)
        if rows.size == 0:
            return None
        centers_u = (cols + footprint.cells_w / 2.0) * problem.grid.pitch
        centers_v = (rows + footprint.cells_h / 2.0) * problem.grid.pitch
        distances = np.hypot(centers_u - seed_center.x, centers_v - seed_center.y)
        pick = int(np.argmin(distances))
        row, col = int(rows[pick]), int(cols[pick])
        modules.append(
            ModulePlacement(module_index=module_index, row=row, col=col, rotated=False)
        )
        placed_centers.append(anchor_center(row, col, footprint, problem.grid.pitch))
        mark_occupied(occupied, row, col, footprint)
    return modules
