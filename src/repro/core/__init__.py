"""Core contribution: the GIS-driven PV floorplanning algorithms."""

from .constraints import (
    DistanceThreshold,
    all_feasible_anchors,
    anchor_center,
    anchors_overlapping_placement,
    feasible_anchor_mask,
    footprint_fits,
    mark_occupied,
    sliding_window_sum,
)
from .evaluation import (
    PlacementComparison,
    PlacementEvaluation,
    PlacementEvaluator,
    compare_placements,
    evaluate_placement,
    evaluate_placement_reference,
    module_irradiance_series,
    module_irradiance_series_reference,
)
from .exhaustive import ExhaustiveConfig, ExhaustiveResult, exhaustive_floorplan
from .greedy import (
    GreedyConfig,
    GreedyResult,
    greedy_floorplan,
    greedy_floorplan_reference,
)
from .ilp import ILPConfig, ILPResult, ilp_floorplan
from .placement import (
    ModuleFootprint,
    ModulePlacement,
    Placement,
    footprint_from_module,
)
from .problem import FloorplanProblem, default_topology
from .suitability import (
    SuitabilityConfig,
    SuitabilityMap,
    compute_suitability,
    footprint_suitability,
)
from .traditional import TraditionalConfig, TraditionalResult, traditional_floorplan

__all__ = [
    "DistanceThreshold",
    "all_feasible_anchors",
    "anchor_center",
    "anchors_overlapping_placement",
    "feasible_anchor_mask",
    "footprint_fits",
    "mark_occupied",
    "sliding_window_sum",
    "PlacementComparison",
    "PlacementEvaluation",
    "PlacementEvaluator",
    "compare_placements",
    "evaluate_placement",
    "evaluate_placement_reference",
    "module_irradiance_series",
    "module_irradiance_series_reference",
    "ExhaustiveConfig",
    "ExhaustiveResult",
    "exhaustive_floorplan",
    "GreedyConfig",
    "GreedyResult",
    "greedy_floorplan",
    "greedy_floorplan_reference",
    "ILPConfig",
    "ILPResult",
    "ilp_floorplan",
    "ModuleFootprint",
    "ModulePlacement",
    "Placement",
    "footprint_from_module",
    "FloorplanProblem",
    "default_topology",
    "SuitabilityConfig",
    "SuitabilityMap",
    "compute_suitability",
    "footprint_suitability",
    "TraditionalConfig",
    "TraditionalResult",
    "traditional_floorplan",
]
