"""Suitability metric (paper Section III-C).

The greedy floorplanner ranks candidate grid elements by a *suitability*
value that distils the per-cell temporal irradiance/temperature traces into
one number.  The paper argues that the mean is a poor signature because the
distributions are strongly skewed towards small values, and uses instead the
75th percentile of the irradiance, corrected by a temperature factor that
tracks dPmax/dT:

    s_ij = p75(G_ij) * f(T_ij)

Because the ambient temperature is spatially uniform while the *module*
temperature ``Tact = T + k*G`` is not, the correction factor is evaluated on
the percentile of the cell's module temperature, which is how the metric
distinguishes otherwise equally irradiated cells.

The module also provides the alternative signatures (plain mean, percentile
without temperature correction) used by the ablation benchmark E10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import DEFAULT_SUITABILITY_PERCENTILE, STC_TEMPERATURE
from ..errors import PlacementError
from ..pv.module import EmpiricalModuleModel, paper_module_model
from ..solar.irradiance_map import RoofSolarField


@dataclass(frozen=True)
class SuitabilityConfig:
    """Options of the suitability computation."""

    percentile: float = DEFAULT_SUITABILITY_PERCENTILE
    use_temperature_correction: bool = True
    statistic: str = "percentile"  # "percentile" or "mean"

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile < 100.0:
            raise PlacementError("percentile must be in (0, 100)")
        if self.statistic not in ("percentile", "mean"):
            raise PlacementError(f"unknown suitability statistic: {self.statistic!r}")


@dataclass(frozen=True)
class SuitabilityMap:
    """Per-cell suitability values over the roof grid.

    Attributes
    ----------
    values:
        Full-grid array ``(n_rows, n_cols)``; NaN marks invalid cells.
    irradiance_statistic:
        The raw irradiance statistic (before temperature correction).
    temperature_factor:
        The per-cell correction factor f(T) actually applied.
    config:
        The configuration that produced the map.
    """

    values: np.ndarray
    irradiance_statistic: np.ndarray
    temperature_factor: np.ndarray
    config: SuitabilityConfig

    def value_at(self, row: int, col: int) -> float:
        """Suitability of one grid element (NaN for invalid elements)."""
        return float(self.values[row, col])

    def ranked_cells(self) -> np.ndarray:
        """Valid cells sorted by non-increasing suitability, shape ``(Ng, 2)``."""
        valid = ~np.isnan(self.values)
        rows, cols = np.nonzero(valid)
        order = np.argsort(-self.values[rows, cols], kind="stable")
        return np.stack([rows[order], cols[order]], axis=1)

    def normalised(self) -> np.ndarray:
        """Suitability rescaled to [0, 1] over the valid cells (NaN elsewhere)."""
        valid = ~np.isnan(self.values)
        values = self.values.copy()
        finite = values[valid]
        if finite.size == 0:
            return values
        lo, hi = float(finite.min()), float(finite.max())
        if hi - lo < 1e-12:
            values[valid] = 1.0
            return values
        values[valid] = (finite - lo) / (hi - lo)
        return values


def compute_suitability(
    solar: RoofSolarField,
    config: SuitabilityConfig | None = None,
    module_model: EmpiricalModuleModel | None = None,
) -> SuitabilityMap:
    """Compute the suitability map of a roof solar field.

    Parameters
    ----------
    solar:
        Per-cell irradiance and ambient temperature series.
    config:
        Metric options (percentile value, temperature correction, statistic).
    module_model:
        Module model providing the dPmax/dT slope for the temperature
        correction factor (the paper module by default).
    """
    cfg = config if config is not None else SuitabilityConfig()
    model = module_model if module_model is not None else paper_module_model()

    # The statistics are taken over the *full* time axis -- for a
    # daylight-compressed field the night zeros (and the real night ambient
    # temperatures) are part of the distribution the paper's percentile is
    # defined on.  Streaming dense float64 column blocks keeps the result
    # bit-identical to the dense computation (per-column percentiles and
    # means do not depend on which other columns share the block) without
    # ever materialising a full (n_time, Ng) copy.
    ambient = np.asarray(solar.temperature, dtype=float)[:, None]
    g_stat = np.empty(solar.n_cells)
    t_stat = np.empty(solar.n_cells) if cfg.use_temperature_correction else None
    for sl, block in solar.iter_dense_blocks():
        if cfg.statistic == "percentile":
            g_stat[sl] = np.percentile(block, cfg.percentile, axis=0)
        else:
            g_stat[sl] = np.mean(block, axis=0)
        if t_stat is not None:
            # Per-cell module temperature percentile; the f(T) factor follows
            # the dPmax/dT slope of the module model (Figure 3, middle plot).
            cell_temperature = model.cell_temperature(block, ambient)
            if cfg.statistic == "percentile":
                t_stat[sl] = np.percentile(cell_temperature, cfg.percentile, axis=0)
            else:
                t_stat[sl] = np.mean(cell_temperature, axis=0)

    if t_stat is not None:
        factor = 1.0 + model.datasheet.gamma_p_per_k * (t_stat - STC_TEMPERATURE)
        factor = np.maximum(factor, 0.0)
    else:
        factor = np.ones_like(g_stat)

    suitability_values = g_stat * factor

    full = np.full(solar.grid.shape, np.nan)
    stat_full = np.full(solar.grid.shape, np.nan)
    factor_full = np.full(solar.grid.shape, np.nan)
    full[solar.cells[:, 0], solar.cells[:, 1]] = suitability_values
    stat_full[solar.cells[:, 0], solar.cells[:, 1]] = g_stat
    factor_full[solar.cells[:, 0], solar.cells[:, 1]] = factor

    return SuitabilityMap(
        values=full,
        irradiance_statistic=stat_full,
        temperature_factor=factor_full,
        config=cfg,
    )


def footprint_suitability(
    suitability: SuitabilityMap,
    anchor_row: int,
    anchor_col: int,
    cells_h: int,
    cells_w: int,
    aggregate: str = "mean",
) -> float:
    """Aggregate suitability of a module footprint anchored at (row, col).

    Returns NaN when any covered cell is invalid (NaN), so callers can use
    the result both as a score and as a feasibility indicator.
    """
    window = suitability.values[
        anchor_row : anchor_row + cells_h, anchor_col : anchor_col + cells_w
    ]
    if window.shape != (cells_h, cells_w) or np.any(np.isnan(window)):
        return float("nan")
    if aggregate == "mean":
        return float(np.mean(window))
    if aggregate == "min":
        return float(np.min(window))
    if aggregate == "anchor":
        return float(window[0, 0])
    raise PlacementError(f"unknown footprint aggregate: {aggregate!r}")
