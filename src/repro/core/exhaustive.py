"""Exhaustive placement search for tiny instances.

The paper notes that the solution space is O(Ng^N) and therefore never
compares against an exhaustive optimum.  For *very* small instances the
optimum over the true yearly-energy objective is still computable, and the
test suite uses it to check that the greedy heuristic and the ILP surrogate
stay close to it.  The search enumerates all combinations of feasible,
non-overlapping anchors and evaluates each through the full series/parallel
energy model.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from math import comb

import numpy as np

from ..errors import InfeasiblePlacementError, PlacementError
from ..telemetry import span
from .constraints import feasible_anchor_mask
from .evaluation import PlacementEvaluator
from .placement import ModulePlacement, Placement
from .problem import FloorplanProblem


@dataclass(frozen=True)
class ExhaustiveConfig:
    """Safety limits of the exhaustive search."""

    max_combinations: int = 200000
    include_wiring_loss: bool = True


@dataclass(frozen=True)
class ExhaustiveResult:
    """Outcome of the exhaustive search."""

    placement: Placement
    best_energy_wh: float
    n_combinations_evaluated: int
    runtime_s: float


def _anchors_overlap(
    a: tuple[int, int], b: tuple[int, int], cells_h: int, cells_w: int
) -> bool:
    """True when two module footprints anchored at ``a`` and ``b`` overlap."""
    return not (
        a[0] + cells_h <= b[0]
        or b[0] + cells_h <= a[0]
        or a[1] + cells_w <= b[1]
        or b[1] + cells_w <= a[1]
    )


def exhaustive_floorplan(
    problem: FloorplanProblem, config: ExhaustiveConfig | None = None
) -> ExhaustiveResult:
    """Find the true energy-optimal placement by brute force.

    Raises
    ------
    InfeasiblePlacementError
        If the number of anchor combinations exceeds the configured safety
        limit (the search is meant for unit-test-sized instances only).
    """
    cfg = config if config is not None else ExhaustiveConfig()
    start = time.perf_counter()

    footprint = problem.footprint
    feasible = feasible_anchor_mask(
        problem.grid.valid_mask, np.zeros(problem.grid.shape, dtype=bool), footprint
    )
    rows, cols = np.nonzero(feasible)
    anchors = list(zip(rows.tolist(), cols.tolist()))
    n_anchors = len(anchors)
    if n_anchors < problem.n_modules:
        raise InfeasiblePlacementError(
            f"only {n_anchors} anchors available for {problem.n_modules} modules"
        )
    n_combinations = comb(n_anchors, problem.n_modules)
    if n_combinations > cfg.max_combinations:
        raise InfeasiblePlacementError(
            f"{n_combinations} anchor combinations exceed the exhaustive-search "
            f"limit of {cfg.max_combinations}"
        )

    best_energy = -np.inf
    best_placement: Placement | None = None
    evaluated = 0

    # One evaluation context amortises the problem-level precomputation
    # (cell lookup, substring grouping, temperature factors) over every
    # candidate combination -- the search scores hundreds of placements.
    evaluator = PlacementEvaluator(
        problem, include_wiring_loss=cfg.include_wiring_loss
    )

    with span(
        "exhaustive.search", n_anchors=n_anchors, n_combinations=n_combinations
    ) as search_span:
        for combination in itertools.combinations(range(n_anchors), problem.n_modules):
            selected = [anchors[i] for i in combination]
            if _any_overlap(selected, footprint.cells_h, footprint.cells_w):
                continue
            modules = tuple(
                ModulePlacement(module_index=i, row=r, col=c, rotated=False)
                for i, (r, c) in enumerate(selected)
            )
            placement = Placement(
                modules=modules,
                footprint=footprint,
                topology=problem.topology,
                grid_pitch=problem.grid.pitch,
                label="exhaustive-candidate",
            )
            evaluation = evaluator.evaluate(placement)
            evaluated += 1
            if evaluation.annual_energy_wh > best_energy:
                best_energy = evaluation.annual_energy_wh
                best_placement = placement
        search_span.set(candidates_evaluated=evaluated)

    if best_placement is None:
        raise PlacementError("no overlap-free combination of anchors exists")

    runtime = time.perf_counter() - start
    final = Placement(
        modules=best_placement.modules,
        footprint=best_placement.footprint,
        topology=best_placement.topology,
        grid_pitch=best_placement.grid_pitch,
        label="exhaustive",
        metadata={
            "algorithm": "exhaustive",
            "runtime_s": runtime,
            "n_combinations_evaluated": evaluated,
        },
    )
    return ExhaustiveResult(
        placement=final,
        best_energy_wh=float(best_energy),
        n_combinations_evaluated=evaluated,
        runtime_s=runtime,
    )


def _any_overlap(selected, cells_h: int, cells_w: int) -> bool:
    """True when any pair of the selected anchors overlaps."""
    for first, second in itertools.combinations(selected, 2):
        if _anchors_overlap(first, second, cells_h, cells_w):
            return True
    return False
