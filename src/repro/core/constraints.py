"""Geometric feasibility helpers shared by the placement algorithms.

These utilities answer the questions every placer needs: "can a module be
anchored at this grid element?", "which anchors are currently feasible?",
"is this candidate too far from the modules already placed?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import PlacementError
from ..geometry import Point2D
from ..gis.gridding import RoofGrid
from .placement import ModuleFootprint


def footprint_fits(
    valid_mask: np.ndarray,
    occupied: np.ndarray,
    row: int,
    col: int,
    footprint: ModuleFootprint,
) -> bool:
    """True when a module anchored at (row, col) covers only valid, free cells."""
    n_rows, n_cols = valid_mask.shape
    if row < 0 or col < 0:
        return False
    if row + footprint.cells_h > n_rows or col + footprint.cells_w > n_cols:
        return False
    window_valid = valid_mask[row : row + footprint.cells_h, col : col + footprint.cells_w]
    window_occupied = occupied[row : row + footprint.cells_h, col : col + footprint.cells_w]
    return bool(np.all(window_valid) and not np.any(window_occupied))


def feasible_anchor_mask(
    valid_mask: np.ndarray, occupied: np.ndarray, footprint: ModuleFootprint
) -> np.ndarray:
    """Boolean map of anchors where the footprint fits entirely.

    Computed with a 2D sliding-window "all true" reduction implemented as a
    summed-area table, so the cost is independent of the footprint size.
    """
    free = valid_mask & ~occupied
    n_rows, n_cols = free.shape
    kh, kw = footprint.cells_h, footprint.cells_w
    result = np.zeros_like(free)
    if kh > n_rows or kw > n_cols:
        return result
    integral = np.zeros((n_rows + 1, n_cols + 1), dtype=np.int64)
    integral[1:, 1:] = np.cumsum(np.cumsum(free.astype(np.int64), axis=0), axis=1)
    window_sum = (
        integral[kh:, kw:]
        - integral[:-kh, kw:]
        - integral[kh:, :-kw]
        + integral[:-kh, :-kw]
    )
    result[: n_rows - kh + 1, : n_cols - kw + 1] = window_sum == kh * kw
    return result


def mark_occupied(
    occupied: np.ndarray, row: int, col: int, footprint: ModuleFootprint
) -> None:
    """Mark the cells covered by a module anchored at (row, col) as occupied."""
    occupied[row : row + footprint.cells_h, col : col + footprint.cells_w] = True


def sliding_window_sum(array: np.ndarray, cells_h: int, cells_w: int) -> np.ndarray:
    """Sum of every ``cells_h x cells_w`` window, via a summed-area table.

    Returns an array of shape ``(n_rows - cells_h + 1, n_cols - cells_w + 1)``
    whose ``(r, c)`` entry is the sum of ``array[r:r+cells_h, c:c+cells_w]``.
    Shared by the greedy and traditional placers' footprint scoring.
    """
    n_rows, n_cols = array.shape
    integral = np.zeros((n_rows + 1, n_cols + 1), dtype=float)
    integral[1:, 1:] = np.cumsum(np.cumsum(array, axis=0), axis=1)
    return (
        integral[cells_h:, cells_w:]
        - integral[:-cells_h, cells_w:]
        - integral[cells_h:, :-cells_w]
        + integral[:-cells_h, :-cells_w]
    )


def anchors_overlapping_placement(
    anchor_rows: np.ndarray,
    anchor_cols: np.ndarray,
    anchor_footprint: ModuleFootprint,
    row: int,
    col: int,
    placed_footprint: ModuleFootprint,
) -> np.ndarray:
    """Mask of anchors whose window intersects a just-placed module.

    An anchor at ``(r, c)`` spanning ``kh x kw`` cells intersects the placed
    footprint ``[row, row+ph) x [col, col+pw)`` exactly when
    ``row - kh < r < row + ph`` and ``col - kw < c < col + pw``.  This is the
    *only* region whose feasibility changes when a module is placed, which is
    what makes the greedy placer's candidate maintenance incremental: instead
    of rebuilding full-grid masks per module, candidates inside this
    neighbourhood are dropped and everything else is untouched.
    """
    kh, kw = anchor_footprint.cells_h, anchor_footprint.cells_w
    ph, pw = placed_footprint.cells_h, placed_footprint.cells_w
    return (
        (anchor_rows > row - kh)
        & (anchor_rows < row + ph)
        & (anchor_cols > col - kw)
        & (anchor_cols < col + pw)
    )


@dataclass
class DistanceThreshold:
    """The greedy algorithm's dispersion filter (paper Fig. 5, line 5).

    The paper rejects candidate positions that are "quite far apart from the
    already placed modules", using "twice the average distance of the already
    placed modules" as an empirical threshold.  The filter below implements
    that rule as: a candidate is accepted when its distance from the centroid
    of the placed modules does not exceed ``factor`` times the placed
    modules' average spread around that centroid.

    A literal reading would make the threshold collapse to (almost) zero
    right after the first two adjacent modules are placed, degenerating the
    algorithm into a compact packer -- clearly not what the paper's sparse
    placements of Figure 7 do.  The filter therefore applies a *floor*
    (``min_radius_m``, a few module diagonals by default): the threshold only
    starts to bind once the placement has a meaningful extent, and its role
    is what the paper intends -- vetoing extreme outliers that would blow up
    the wiring overhead.
    """

    factor: float = 2.0
    min_radius_m: float = 8.0
    fallback_distance_m: float = float("inf")

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise PlacementError("distance-threshold factor must be positive")
        if self.min_radius_m < 0:
            raise PlacementError("min_radius_m must be non-negative")

    def threshold_for(self, placed_centers: Sequence[Point2D]) -> float:
        """Current threshold value [m] given the already placed module centres."""
        if len(placed_centers) < 2:
            return self.fallback_distance_m
        cx = float(np.mean([p.x for p in placed_centers]))
        cy = float(np.mean([p.y for p in placed_centers]))
        centroid = Point2D(cx, cy)
        mean_spread = float(np.mean([p.distance_to(centroid) for p in placed_centers]))
        if mean_spread < 1e-9:
            return self.fallback_distance_m
        return max(self.factor * mean_spread, self.min_radius_m)

    def accepts(self, candidate_center: Point2D, placed_centers: Sequence[Point2D]) -> bool:
        """True when the candidate passes the dispersion filter."""
        if not placed_centers:
            return True
        threshold = self.threshold_for(placed_centers)
        if not np.isfinite(threshold):
            return True
        cx = float(np.mean([p.x for p in placed_centers]))
        cy = float(np.mean([p.y for p in placed_centers]))
        centroid = Point2D(cx, cy)
        return candidate_center.distance_to(centroid) <= threshold


def anchor_center(
    row: int, col: int, footprint: ModuleFootprint, pitch: float
) -> Point2D:
    """Roof-plane centre of a module anchored at grid element (row, col)."""
    return Point2D(
        (col + footprint.cells_w / 2.0) * pitch,
        (row + footprint.cells_h / 2.0) * pitch,
    )


def nearest_placed_distance(
    candidate: Point2D, placed_centers: Sequence[Point2D]
) -> float:
    """Distance from a candidate centre to the nearest placed module centre."""
    if not placed_centers:
        return 0.0
    return float(min(candidate.distance_to(p) for p in placed_centers))


def all_feasible_anchors(
    grid: RoofGrid, footprint: ModuleFootprint, occupied: np.ndarray | None = None
) -> List[tuple]:
    """List of (row, col) anchors where the footprint fits on the grid."""
    occ = occupied if occupied is not None else np.zeros(grid.shape, dtype=bool)
    mask = feasible_anchor_mask(grid.valid_mask, occ, footprint)
    rows, cols = np.nonzero(mask)
    return list(zip(rows.tolist(), cols.tolist()))
