"""Placement data structures.

A *placement* assigns each of the N modules an anchor grid element and an
orientation on the roof's virtual grid.  The module then covers a
``k_w x k_h`` block of grid elements (Section III-A: all covered elements
become unusable for other modules).  Placements also record the
series/parallel topology so the evaluator and the wiring model know which
modules belong to which string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from ..errors import PlacementError
from ..geometry import Point2D
from ..gis.gridding import RoofGrid
from ..pv.array import SeriesParallelTopology


@dataclass(frozen=True)
class ModuleFootprint:
    """Size of a module expressed in grid elements.

    ``cells_w`` counts elements along the eave (grid columns), ``cells_h``
    along the slope (grid rows).
    """

    cells_w: int
    cells_h: int

    def __post_init__(self) -> None:
        if self.cells_w < 1 or self.cells_h < 1:
            raise PlacementError("module footprint must span at least one cell per side")

    @property
    def n_cells(self) -> int:
        """Number of grid elements covered by one module (k1 * k2)."""
        return self.cells_w * self.cells_h

    def rotated(self) -> "ModuleFootprint":
        """The footprint of the module rotated by 90 degrees."""
        return ModuleFootprint(cells_w=self.cells_h, cells_h=self.cells_w)


@dataclass(frozen=True)
class ModulePlacement:
    """One module's position: anchor element (row, col) and orientation.

    The anchor is the module's lowest-row / lowest-column corner; the module
    covers rows ``row .. row + footprint.cells_h - 1`` and columns
    ``col .. col + footprint.cells_w - 1``.
    """

    module_index: int
    row: int
    col: int
    rotated: bool = False

    def footprint(self, base: ModuleFootprint) -> ModuleFootprint:
        """Effective footprint given the module's orientation."""
        return base.rotated() if self.rotated else base

    def covered_cells(self, base: ModuleFootprint) -> np.ndarray:
        """Array ``(k, 2)`` of the (row, col) elements covered by the module."""
        footprint = self.footprint(base)
        rows = np.arange(self.row, self.row + footprint.cells_h)
        cols = np.arange(self.col, self.col + footprint.cells_w)
        grid_r, grid_c = np.meshgrid(rows, cols, indexing="ij")
        return np.stack([grid_r.ravel(), grid_c.ravel()], axis=1)

    def center_roof(self, base: ModuleFootprint, pitch: float) -> Point2D:
        """Roof-plane coordinates of the module centre [m]."""
        footprint = self.footprint(base)
        u = (self.col + footprint.cells_w / 2.0) * pitch
        v = (self.row + footprint.cells_h / 2.0) * pitch
        return Point2D(u, v)


@dataclass(frozen=True)
class Placement:
    """A complete floorplan: N placed modules plus their electrical topology."""

    modules: Tuple[ModulePlacement, ...]
    footprint: ModuleFootprint
    topology: SeriesParallelTopology
    grid_pitch: float
    label: str = "unnamed"
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if len(self.modules) != self.topology.n_modules:
            raise PlacementError(
                f"placement has {len(self.modules)} modules but the topology "
                f"expects {self.topology.n_modules}"
            )
        if self.grid_pitch <= 0:
            raise PlacementError("grid pitch must be positive")
        indices = sorted(m.module_index for m in self.modules)
        if indices != list(range(len(self.modules))):
            raise PlacementError("module indices must be 0..N-1 without repetition")

    # -- iteration ------------------------------------------------------------------

    @property
    def n_modules(self) -> int:
        """Number of placed modules."""
        return len(self.modules)

    def __iter__(self) -> Iterator[ModulePlacement]:
        return iter(sorted(self.modules, key=lambda m: m.module_index))

    def module(self, index: int) -> ModulePlacement:
        """The placement record of module ``index``."""
        for placed in self.modules:
            if placed.module_index == index:
                return placed
        raise PlacementError(f"module {index} is not part of this placement")

    # -- geometry --------------------------------------------------------------------

    def covered_cells(self) -> np.ndarray:
        """All grid elements covered by any module, shape ``(N * k, 2)``."""
        return np.concatenate([m.covered_cells(self.footprint) for m in self], axis=0)

    def covered_cells_by_module(self) -> List[np.ndarray]:
        """Per-module covered elements, in module-index order."""
        return [m.covered_cells(self.footprint) for m in self]

    def module_centers(self) -> List[Point2D]:
        """Roof-plane centres of the modules, in module-index order."""
        return [m.center_roof(self.footprint, self.grid_pitch) for m in self]

    def string_positions(self) -> List[List[Point2D]]:
        """Module centres grouped by series string (series order within each)."""
        centers = self.module_centers()
        strings: List[List[Point2D]] = []
        for string_index in range(self.topology.n_parallel):
            member_indices = self.topology.modules_of_string(string_index)
            strings.append([centers[i] for i in member_indices])
        return strings

    def occupancy_map(self, shape: Tuple[int, int]) -> np.ndarray:
        """Integer map of the grid: -1 = free, otherwise the covering module index."""
        occupancy = np.full(shape, -1, dtype=int)
        for placed in self:
            cells = placed.covered_cells(self.footprint)
            occupancy[cells[:, 0], cells[:, 1]] = placed.module_index
        return occupancy

    def string_map(self, shape: Tuple[int, int]) -> np.ndarray:
        """Integer map of the grid: -1 = free, otherwise the covering string index."""
        strings = np.full(shape, -1, dtype=int)
        for placed in self:
            cells = placed.covered_cells(self.footprint)
            strings[cells[:, 0], cells[:, 1]] = self.topology.string_of(placed.module_index)
        return strings

    def bounding_box_cells(self) -> Tuple[int, int, int, int]:
        """Bounding box of the covered cells ``(row_min, col_min, row_max, col_max)``."""
        cells = self.covered_cells()
        return (
            int(cells[:, 0].min()),
            int(cells[:, 1].min()),
            int(cells[:, 0].max()),
            int(cells[:, 1].max()),
        )

    def dispersion_m(self) -> float:
        """Mean distance of the module centres from their centroid [m].

        A compactness measure used by reports: the traditional placement has
        the smallest possible dispersion for a given N, the paper's sparse
        placement a somewhat larger one.
        """
        centers = self.module_centers()
        cx = float(np.mean([c.x for c in centers]))
        cy = float(np.mean([c.y for c in centers]))
        centroid = Point2D(cx, cy)
        return float(np.mean([c.distance_to(centroid) for c in centers]))

    # -- validation ---------------------------------------------------------------------

    def validate(self, grid: RoofGrid) -> None:
        """Check the placement against a roof grid.

        Raises
        ------
        PlacementError
            If any module exceeds the grid bounds, covers an invalid cell,
            or overlaps another module.
        """
        seen = np.zeros(grid.shape, dtype=bool)
        for placed in self:
            cells = placed.covered_cells(self.footprint)
            if (
                cells[:, 0].min() < 0
                or cells[:, 1].min() < 0
                or cells[:, 0].max() >= grid.n_rows
                or cells[:, 1].max() >= grid.n_cols
            ):
                raise PlacementError(
                    f"module {placed.module_index} exceeds the grid bounds"
                )
            if not np.all(grid.valid_mask[cells[:, 0], cells[:, 1]]):
                raise PlacementError(
                    f"module {placed.module_index} covers invalid (unsuitable) cells"
                )
            if np.any(seen[cells[:, 0], cells[:, 1]]):
                raise PlacementError(
                    f"module {placed.module_index} overlaps a previously placed module"
                )
            seen[cells[:, 0], cells[:, 1]] = True


def footprint_from_module(
    module_width_m: float, module_height_m: float, grid_pitch: float
) -> ModuleFootprint:
    """Module footprint in grid cells, enforcing the paper's divisibility rule."""
    k_w = module_width_m / grid_pitch
    k_h = module_height_m / grid_pitch
    if abs(k_w - round(k_w)) > 1e-6 or abs(k_h - round(k_h)) > 1e-6:
        raise PlacementError(
            "module sides must be integer multiples of the grid pitch "
            f"(got {module_width_m} x {module_height_m} m on a {grid_pitch} m grid)"
        )
    return ModuleFootprint(cells_w=int(round(k_w)), cells_h=int(round(k_h)))
