"""Exact placement by integer linear programming.

The paper argues that an exhaustive search is infeasible and therefore only
evaluates its greedy heuristic.  To quantify how far the heuristic is from
an optimum, this module formulates the placement as a 0/1 ILP solved with
SciPy's HiGHS backend:

* one binary variable per feasible anchor position (and orientation),
* the objective maximises the summed footprint suitability of the selected
  anchors (the same surrogate signal the greedy algorithm ranks by -- the
  true yearly energy is not linear in the selection because of the
  series/parallel aggregation, so it cannot be an ILP objective),
* exactly N anchors are selected,
* no two selected anchors may cover the same grid cell.

For small instances the ILP optimum provides an upper bound on what any
suitability-driven placer can achieve, which the ablation benchmark (E10)
compares against the greedy result and, where tractable, against the true
energy-optimal placement found by :mod:`repro.core.exhaustive`.

SciPy's :func:`~scipy.optimize.milp` has no MIP-start parameter, so a
warm-start hint is exploited as a *validated incumbent* instead: the hint's
anchors are mapped into the formulation (greedily completed to N modules
when the hint is smaller), an objective cutoff constraint forbids any
answer worse than the incumbent, and when the time budget expires before
HiGHS finds a solution the incumbent itself is returned -- best-so-far
anytime semantics with the optimality ``gap`` reported from the solver's
dual bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..errors import InfeasiblePlacementError, PlacementError
from ..telemetry import span
from .constraints import feasible_anchor_mask, mark_occupied
from .greedy import _footprint_score_map
from .placement import ModulePlacement, Placement
from .problem import FloorplanProblem
from .suitability import SuitabilityConfig, SuitabilityMap, compute_suitability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner -> core)
    from ..runner.solvers import WarmStart


@dataclass(frozen=True)
class ILPConfig:
    """Options of the ILP placement."""

    footprint_aggregate: str = "mean"
    time_limit_s: float = 60.0
    max_anchors: int = 30000
    mip_gap: float = 1e-4

    def __post_init__(self) -> None:
        if self.time_limit_s <= 0:
            raise PlacementError("time_limit_s must be positive")
        if self.max_anchors < 1:
            raise PlacementError("max_anchors must be positive")
        if not 0.0 <= self.mip_gap < 1.0:
            raise PlacementError("mip_gap must be in [0, 1)")


@dataclass(frozen=True)
class ILPResult:
    """Outcome of the ILP placement.

    ``gap`` is the relative optimality gap (0.0 = proven optimal, ``None``
    = the solver reported none); ``warm_started`` records whether a
    validated warm-start incumbent entered the solve.
    """

    placement: Placement
    suitability: SuitabilityMap
    objective_value: float
    runtime_s: float
    solver_status: str
    gap: float | None = None
    warm_started: bool = False


def ilp_floorplan(
    problem: FloorplanProblem,
    suitability: SuitabilityMap | None = None,
    config: ILPConfig | None = None,
    warm_start: "WarmStart | None" = None,
) -> ILPResult:
    """Solve the suitability-maximising placement ILP for a problem instance.

    ``warm_start`` supplies a neighbouring placement used as a feasible
    incumbent (see the module docstring); a hint that fails validation is
    ignored, so it can never degrade the objective -- the cutoff constraint
    guarantees the returned answer scores at least as well as the incumbent.
    """
    cfg = config if config is not None else ILPConfig()
    start = time.perf_counter()

    if suitability is None:
        suitability = compute_suitability(
            problem.solar,
            SuitabilityConfig(percentile=problem.suitability_percentile),
            problem.module_model,
        )

    footprint = problem.footprint
    orientations = [(footprint, False)]
    if problem.allow_rotation and footprint.cells_w != footprint.cells_h:
        orientations.append((footprint.rotated(), True))

    # Enumerate anchors and assemble the 0/1 program; the build/solve span
    # split is what lets a trace tell formulation cost from HiGHS cost.
    with span("ilp.build") as build_span:
        anchors: list[tuple[int, int, bool]] = []
        scores: list[float] = []
        empty_occupancy = np.zeros(problem.grid.shape, dtype=bool)
        for fp, rotated in orientations:
            feasible = feasible_anchor_mask(problem.grid.valid_mask, empty_occupancy, fp)
            score_map = _footprint_score_map(
                suitability, fp.cells_h, fp.cells_w, cfg.footprint_aggregate
            )
            rows, cols = np.nonzero(feasible & np.isfinite(score_map))
            for row, col in zip(rows.tolist(), cols.tolist()):
                anchors.append((row, col, rotated))
                scores.append(float(score_map[row, col]))

        n_anchors = len(anchors)
        if n_anchors < problem.n_modules:
            raise InfeasiblePlacementError(
                f"only {n_anchors} feasible anchors exist for {problem.n_modules} modules"
            )
        if n_anchors > cfg.max_anchors:
            raise InfeasiblePlacementError(
                f"the instance has {n_anchors} anchors, above the configured ILP limit "
                f"of {cfg.max_anchors}; use the greedy placer or coarsen the grid"
            )

        # Build the cell-coverage constraint matrix (cells x anchors).
        n_rows, n_cols = problem.grid.shape
        cell_index = lambda r, c: r * n_cols + c  # noqa: E731 - tiny local helper
        row_indices: list[int] = []
        col_indices: list[int] = []
        for anchor_id, (row, col, rotated) in enumerate(anchors):
            fp = footprint.rotated() if rotated else footprint
            for dr in range(fp.cells_h):
                for dc in range(fp.cells_w):
                    row_indices.append(cell_index(row + dr, col + dc))
                    col_indices.append(anchor_id)
        coverage = sparse.csr_matrix(
            (np.ones(len(row_indices)), (row_indices, col_indices)),
            shape=(n_rows * n_cols, n_anchors),
        )
        # Keep only cells that can actually be covered (smaller constraint set).
        covered_cells = np.asarray(coverage.sum(axis=1)).ravel() > 0
        coverage = coverage[covered_cells]

        objective = -np.asarray(scores)
        constraints = [
            LinearConstraint(np.ones((1, n_anchors)), problem.n_modules, problem.n_modules),
            LinearConstraint(coverage, -np.inf, 1.0),
        ]

        incumbent = (
            _warm_incumbent(problem, warm_start, anchors, scores, orientations)
            if warm_start is not None
            else None
        )
        warm_started = incumbent is not None
        if incumbent is not None:
            incumbent_ids, incumbent_objective = incumbent
            # Objective cutoff: no feasible answer may score below the
            # incumbent (the epsilon absorbs float accumulation noise), so
            # the warm solve can only match or improve on the hint.
            cutoff_eps = 1e-9 * max(1.0, abs(incumbent_objective))
            constraints.append(
                LinearConstraint(
                    np.asarray(scores).reshape(1, -1),
                    incumbent_objective - cutoff_eps,
                    np.inf,
                )
            )
        build_span.set(
            n_anchors=n_anchors,
            n_covered_cells=int(covered_cells.sum()),
            warm_started=warm_started,
        )

    with span("ilp.solve", n_anchors=n_anchors) as solve_span:
        result = milp(
            c=objective,
            constraints=constraints,
            integrality=np.ones(n_anchors),
            bounds=Bounds(0, 1),
            options={"time_limit": cfg.time_limit_s, "mip_rel_gap": cfg.mip_gap},
        )
        solve_span.set(status=str(result.message), success=bool(result.success))

    gap: float | None = None
    raw_gap = getattr(result, "mip_gap", None)
    if raw_gap is not None and np.isfinite(raw_gap):
        gap = float(raw_gap)

    if result.x is not None:
        chosen = np.nonzero(np.round(result.x) > 0.5)[0]
    else:
        chosen = None
    if chosen is not None and chosen.size == problem.n_modules:
        milp_objective = float(-result.fun)
        if incumbent is not None and incumbent_objective > milp_objective + 1e-9:
            # Should be ruled out by the cutoff; kept as a belt-and-braces
            # guarantee that a warm solve never returns less than its hint.
            chosen_ids = list(incumbent_ids)
            objective_value = incumbent_objective
            status = f"warm incumbent kept ({result.message})"
        else:
            chosen_ids = chosen.tolist()
            objective_value = milp_objective
            status = str(result.message)
    elif incumbent is not None:
        # Anytime answer: the budget expired (or HiGHS stumbled) before a
        # solution emerged -- return the validated incumbent as best-so-far,
        # with the gap taken against the solver's dual bound when one exists.
        chosen_ids = list(incumbent_ids)
        objective_value = incumbent_objective
        status = f"warm incumbent returned ({result.message})"
        dual = getattr(result, "mip_dual_bound", None)
        if dual is not None and np.isfinite(dual):
            bound = float(-dual)
            gap = abs(bound - incumbent_objective) / max(abs(incumbent_objective), 1e-12)
    elif chosen is not None:
        raise InfeasiblePlacementError(
            f"the ILP returned {chosen.size} anchors instead of {problem.n_modules}"
        )
    else:
        raise InfeasiblePlacementError(
            f"the ILP solver failed to find a feasible placement: {result.message}"
        )

    # Assign module indices to anchors in decreasing-score order so that the
    # series-first string structure matches the greedy convention.
    chosen_sorted = sorted(chosen_ids, key=lambda a: -scores[a])
    modules = [
        ModulePlacement(
            module_index=i,
            row=anchors[a][0],
            col=anchors[a][1],
            rotated=anchors[a][2],
        )
        for i, a in enumerate(chosen_sorted)
    ]
    runtime = time.perf_counter() - start
    metadata = {
        "algorithm": "ilp",
        "runtime_s": runtime,
        "objective": objective_value,
        "status": status,
    }
    if gap is not None:
        metadata["gap"] = gap
    placement = Placement(
        modules=tuple(modules),
        footprint=footprint,
        topology=problem.topology,
        grid_pitch=problem.grid.pitch,
        label="ilp",
        metadata=metadata,
    )
    return ILPResult(
        placement=placement,
        suitability=suitability,
        objective_value=objective_value,
        runtime_s=runtime,
        solver_status=status,
        gap=gap,
        warm_started=warm_started,
    )


def _warm_incumbent(
    problem: FloorplanProblem,
    warm_start: "WarmStart",
    anchors: list,
    scores: list,
    orientations,
):
    """Map a warm-start hint into a feasible incumbent selection.

    Returns ``(anchor_ids, objective)`` or ``None`` when the hint cannot be
    trusted (foreign footprint/pitch, anchors outside the formulation,
    self-overlap, or no feasible completion to N modules).  A smaller hint
    is completed greedily by score; a larger one keeps its N best anchors.
    """
    hint = getattr(warm_start, "placement", None)
    if hint is None or not hint.modules:
        return None
    footprint = problem.footprint
    if (hint.footprint.cells_w, hint.footprint.cells_h) != (
        footprint.cells_w,
        footprint.cells_h,
    ):
        return None
    if abs(hint.grid_pitch - problem.grid.pitch) > 1e-9:
        return None

    anchor_ids = {anchor: aid for aid, anchor in enumerate(anchors)}
    footprint_by_rotation = {rotated: fp for fp, rotated in orientations}
    hinted: list[int] = []
    for module in hint.modules:
        aid = anchor_ids.get((module.row, module.col, module.rotated))
        if aid is None:
            return None
        hinted.append(aid)

    occupied = np.zeros(problem.grid.shape, dtype=bool)
    selected: list[int] = []
    # Best-scoring hinted anchors first, so an oversized hint keeps its
    # strongest N and an exact-size hint is taken verbatim.
    for aid in sorted(set(hinted), key=lambda a: -scores[a]):
        if len(selected) == problem.n_modules:
            break
        row, col, rotated = anchors[aid]
        fp = footprint_by_rotation[rotated]
        if occupied[row : row + fp.cells_h, col : col + fp.cells_w].any():
            return None  # the hint overlaps itself: corrupt, distrust it
        mark_occupied(occupied, row, col, fp)
        selected.append(aid)

    if len(selected) < problem.n_modules:
        chosen = set(selected)
        for aid in sorted(range(len(anchors)), key=lambda a: -scores[a]):
            if len(selected) == problem.n_modules:
                break
            if aid in chosen:
                continue
            row, col, rotated = anchors[aid]
            fp = footprint_by_rotation[rotated]
            if occupied[row : row + fp.cells_h, col : col + fp.cells_w].any():
                continue
            mark_occupied(occupied, row, col, fp)
            selected.append(aid)
            chosen.add(aid)
        if len(selected) < problem.n_modules:
            return None

    return selected, float(sum(scores[a] for a in selected))
