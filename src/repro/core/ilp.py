"""Exact placement by integer linear programming.

The paper argues that an exhaustive search is infeasible and therefore only
evaluates its greedy heuristic.  To quantify how far the heuristic is from
an optimum, this module formulates the placement as a 0/1 ILP solved with
SciPy's HiGHS backend:

* one binary variable per feasible anchor position (and orientation),
* the objective maximises the summed footprint suitability of the selected
  anchors (the same surrogate signal the greedy algorithm ranks by -- the
  true yearly energy is not linear in the selection because of the
  series/parallel aggregation, so it cannot be an ILP objective),
* exactly N anchors are selected,
* no two selected anchors may cover the same grid cell.

For small instances the ILP optimum provides an upper bound on what any
suitability-driven placer can achieve, which the ablation benchmark (E10)
compares against the greedy result and, where tractable, against the true
energy-optimal placement found by :mod:`repro.core.exhaustive`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..errors import InfeasiblePlacementError, PlacementError
from ..telemetry import span
from .constraints import feasible_anchor_mask
from .greedy import _footprint_score_map
from .placement import ModulePlacement, Placement
from .problem import FloorplanProblem
from .suitability import SuitabilityConfig, SuitabilityMap, compute_suitability


@dataclass(frozen=True)
class ILPConfig:
    """Options of the ILP placement."""

    footprint_aggregate: str = "mean"
    time_limit_s: float = 60.0
    max_anchors: int = 30000
    mip_gap: float = 1e-4

    def __post_init__(self) -> None:
        if self.time_limit_s <= 0:
            raise PlacementError("time_limit_s must be positive")
        if self.max_anchors < 1:
            raise PlacementError("max_anchors must be positive")
        if not 0.0 <= self.mip_gap < 1.0:
            raise PlacementError("mip_gap must be in [0, 1)")


@dataclass(frozen=True)
class ILPResult:
    """Outcome of the ILP placement."""

    placement: Placement
    suitability: SuitabilityMap
    objective_value: float
    runtime_s: float
    solver_status: str


def ilp_floorplan(
    problem: FloorplanProblem,
    suitability: SuitabilityMap | None = None,
    config: ILPConfig | None = None,
) -> ILPResult:
    """Solve the suitability-maximising placement ILP for a problem instance."""
    cfg = config if config is not None else ILPConfig()
    start = time.perf_counter()

    if suitability is None:
        suitability = compute_suitability(
            problem.solar,
            SuitabilityConfig(percentile=problem.suitability_percentile),
            problem.module_model,
        )

    footprint = problem.footprint
    orientations = [(footprint, False)]
    if problem.allow_rotation and footprint.cells_w != footprint.cells_h:
        orientations.append((footprint.rotated(), True))

    # Enumerate anchors and assemble the 0/1 program; the build/solve span
    # split is what lets a trace tell formulation cost from HiGHS cost.
    with span("ilp.build") as build_span:
        anchors: list[tuple[int, int, bool]] = []
        scores: list[float] = []
        empty_occupancy = np.zeros(problem.grid.shape, dtype=bool)
        for fp, rotated in orientations:
            feasible = feasible_anchor_mask(problem.grid.valid_mask, empty_occupancy, fp)
            score_map = _footprint_score_map(
                suitability, fp.cells_h, fp.cells_w, cfg.footprint_aggregate
            )
            rows, cols = np.nonzero(feasible & np.isfinite(score_map))
            for row, col in zip(rows.tolist(), cols.tolist()):
                anchors.append((row, col, rotated))
                scores.append(float(score_map[row, col]))

        n_anchors = len(anchors)
        if n_anchors < problem.n_modules:
            raise InfeasiblePlacementError(
                f"only {n_anchors} feasible anchors exist for {problem.n_modules} modules"
            )
        if n_anchors > cfg.max_anchors:
            raise InfeasiblePlacementError(
                f"the instance has {n_anchors} anchors, above the configured ILP limit "
                f"of {cfg.max_anchors}; use the greedy placer or coarsen the grid"
            )

        # Build the cell-coverage constraint matrix (cells x anchors).
        n_rows, n_cols = problem.grid.shape
        cell_index = lambda r, c: r * n_cols + c  # noqa: E731 - tiny local helper
        row_indices: list[int] = []
        col_indices: list[int] = []
        for anchor_id, (row, col, rotated) in enumerate(anchors):
            fp = footprint.rotated() if rotated else footprint
            for dr in range(fp.cells_h):
                for dc in range(fp.cells_w):
                    row_indices.append(cell_index(row + dr, col + dc))
                    col_indices.append(anchor_id)
        coverage = sparse.csr_matrix(
            (np.ones(len(row_indices)), (row_indices, col_indices)),
            shape=(n_rows * n_cols, n_anchors),
        )
        # Keep only cells that can actually be covered (smaller constraint set).
        covered_cells = np.asarray(coverage.sum(axis=1)).ravel() > 0
        coverage = coverage[covered_cells]

        objective = -np.asarray(scores)
        constraints = [
            LinearConstraint(np.ones((1, n_anchors)), problem.n_modules, problem.n_modules),
            LinearConstraint(coverage, -np.inf, 1.0),
        ]
        build_span.set(n_anchors=n_anchors, n_covered_cells=int(covered_cells.sum()))

    with span("ilp.solve", n_anchors=n_anchors) as solve_span:
        result = milp(
            c=objective,
            constraints=constraints,
            integrality=np.ones(n_anchors),
            bounds=Bounds(0, 1),
            options={"time_limit": cfg.time_limit_s, "mip_rel_gap": cfg.mip_gap},
        )
        solve_span.set(status=str(result.message), success=bool(result.success))
    if result.x is None:
        raise InfeasiblePlacementError(
            f"the ILP solver failed to find a feasible placement: {result.message}"
        )

    chosen = np.nonzero(np.round(result.x) > 0.5)[0]
    if chosen.size != problem.n_modules:
        raise InfeasiblePlacementError(
            f"the ILP returned {chosen.size} anchors instead of {problem.n_modules}"
        )

    # Assign module indices to anchors in decreasing-score order so that the
    # series-first string structure matches the greedy convention.
    chosen_sorted = sorted(chosen.tolist(), key=lambda a: -scores[a])
    modules = [
        ModulePlacement(
            module_index=i,
            row=anchors[a][0],
            col=anchors[a][1],
            rotated=anchors[a][2],
        )
        for i, a in enumerate(chosen_sorted)
    ]
    runtime = time.perf_counter() - start
    placement = Placement(
        modules=tuple(modules),
        footprint=footprint,
        topology=problem.topology,
        grid_pitch=problem.grid.pitch,
        label="ilp",
        metadata={
            "algorithm": "ilp",
            "runtime_s": runtime,
            "objective": float(-result.fun),
            "status": str(result.message),
        },
    )
    return ILPResult(
        placement=placement,
        suitability=suitability,
        objective_value=float(-result.fun),
        runtime_s=runtime,
        solver_status=str(result.message),
    )
