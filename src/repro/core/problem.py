"""Floorplanning problem definition.

Bundles every input of the paper's problem statement (Section III-A): the
available surface aligned to the virtual grid, the spatio-temporal
irradiance/temperature data, the module to be placed (geometry + electrical
model), the number of modules N, and the series/parallel topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import DEFAULT_DISTANCE_THRESHOLD_FACTOR, DEFAULT_SUITABILITY_PERCENTILE
from ..errors import InfeasiblePlacementError, PlacementError
from ..gis.gridding import RoofGrid
from ..pv.array import PVArray, SeriesParallelTopology
from ..pv.datasheet import ModuleDatasheet, PV_MF165EB3
from ..pv.module import EmpiricalModuleModel
from ..solar.irradiance_map import RoofSolarField
from .placement import ModuleFootprint, footprint_from_module


@dataclass(frozen=True)
class FloorplanProblem:
    """An instance of the PV floorplanning problem.

    Attributes
    ----------
    grid:
        Roof virtual grid restricted to the suitable area (Ng valid cells).
    solar:
        Per-cell irradiance and ambient temperature time series.
    n_modules:
        Number of identical modules to place (N).
    topology:
        Series/parallel interconnection (m x n with m*n = N).
    datasheet:
        Module mechanical/electrical datasheet.
    module_model:
        Electrical model used for evaluation (defaults to the empirical
        paper model built on ``datasheet``).
    allow_rotation:
        Whether modules may be rotated by 90 degrees during placement.
    suitability_percentile:
        Percentile of the irradiance distribution used by the suitability
        metric (the paper uses the 75th).
    distance_threshold_factor:
        Multiplier of the average placed-module distance used by the
        greedy algorithm's dispersion filter (the paper uses 2).
    """

    grid: RoofGrid
    solar: RoofSolarField
    n_modules: int
    topology: SeriesParallelTopology
    datasheet: ModuleDatasheet = PV_MF165EB3
    module_model: EmpiricalModuleModel | None = None
    allow_rotation: bool = False
    suitability_percentile: float = DEFAULT_SUITABILITY_PERCENTILE
    distance_threshold_factor: float = DEFAULT_DISTANCE_THRESHOLD_FACTOR
    label: str = "problem"

    def __post_init__(self) -> None:
        if self.n_modules < 1:
            raise PlacementError("at least one module must be placed")
        if self.topology.n_modules != self.n_modules:
            raise PlacementError(
                f"topology provides {self.topology.n_modules} slots but "
                f"{self.n_modules} modules are requested"
            )
        if self.solar.grid is not self.grid and self.solar.grid.shape != self.grid.shape:
            raise PlacementError("solar field and grid describe different roofs")
        if not 0.0 < self.suitability_percentile < 100.0:
            raise PlacementError("suitability percentile must be in (0, 100)")
        if self.distance_threshold_factor <= 0:
            raise PlacementError("distance threshold factor must be positive")
        if self.module_model is None:
            object.__setattr__(
                self, "module_model", EmpiricalModuleModel(datasheet=self.datasheet)
            )
        footprint = footprint_from_module(
            self.datasheet.width_m, self.datasheet.height_m, self.grid.pitch
        )
        object.__setattr__(self, "_footprint", footprint)
        required = footprint.n_cells * self.n_modules
        if required > self.grid.n_valid:
            raise InfeasiblePlacementError(
                f"{self.n_modules} modules need {required} valid cells but the "
                f"suitable area only has {self.grid.n_valid}"
            )

    # -- derived quantities -----------------------------------------------------------

    @property
    def footprint(self) -> ModuleFootprint:
        """Module footprint in grid cells (landscape orientation)."""
        return self._footprint  # type: ignore[attr-defined]

    @property
    def array(self) -> PVArray:
        """The electrical array model (topology + module model)."""
        return PVArray(topology=self.topology, module_model=self.module_model)

    @property
    def nameplate_power_w(self) -> float:
        """Installed STC power of the N modules [W]."""
        return self.n_modules * self.datasheet.p_max_ref

    def describe(self) -> dict:
        """Summary dictionary used by reports and experiment logs."""
        return {
            "label": self.label,
            "grid_shape": self.grid.shape,
            "grid_pitch_m": self.grid.pitch,
            "n_valid_cells": self.grid.n_valid,
            "n_modules": self.n_modules,
            "topology": f"{self.topology.n_series}s x {self.topology.n_parallel}p",
            "module": self.datasheet.name,
            "nameplate_kw": self.nameplate_power_w / 1e3,
            "n_time_samples": self.solar.n_time,
        }


def default_topology(n_modules: int, n_series: int = 8) -> SeriesParallelTopology:
    """The paper's default topology: strings of 8 modules in series.

    Falls back to a single string when fewer than ``n_series`` modules are
    requested.
    """
    if n_modules < 1:
        raise PlacementError("n_modules must be positive")
    if n_modules < n_series:
        return SeriesParallelTopology(n_series=n_modules, n_parallel=1)
    return SeriesParallelTopology.for_modules(n_modules, n_series)
