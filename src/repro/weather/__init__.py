"""Weather substrate: station records and synthetic meteorological data."""

from .clearness import ClearnessModel, generate_clearsky_index
from .records import StationMetadata, WeatherSeries
from .synthetic import (
    SyntheticWeatherConfig,
    generate_clearsky_weather,
    generate_weather,
    scale_weather,
)
from .temperature import TemperatureModel, generate_temperature

__all__ = [
    "ClearnessModel",
    "generate_clearsky_index",
    "StationMetadata",
    "WeatherSeries",
    "SyntheticWeatherConfig",
    "generate_weather",
    "generate_clearsky_weather",
    "scale_weather",
    "TemperatureModel",
    "generate_temperature",
]
