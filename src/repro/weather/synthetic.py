"""Synthetic weather-station generator (typical-meteorological-year style).

The paper obtains its weather inputs from personal/third-party weather
stations (ref. [16], Weather Underground).  Those traces are not public, so
this module synthesises an equivalent input: given a site and a time grid it
produces a :class:`~repro.weather.records.WeatherSeries` whose global
horizontal irradiance is the ESRA clear-sky value modulated by a stochastic
clear-sky index, and whose ambient temperature follows a seasonal/diurnal
model correlated with the irradiance.

The generator is deterministic for a given ``seed`` so every experiment in
the repository is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import TURIN_LATITUDE, TURIN_LONGITUDE
from ..errors import WeatherError
from ..solar.clearsky import clearsky_irradiance
from ..solar.linke import LinkeTurbidityProfile
from ..solar.position import compute_solar_position
from ..solar.time_series import TimeGrid
from .clearness import ClearnessModel, generate_clearsky_index
from .records import StationMetadata, WeatherSeries
from .temperature import TemperatureModel, generate_temperature


@dataclass(frozen=True)
class SyntheticWeatherConfig:
    """Configuration of the synthetic weather generator."""

    station: StationMetadata = field(
        default_factory=lambda: StationMetadata(
            name="turin-synthetic",
            latitude_deg=TURIN_LATITUDE,
            longitude_deg=TURIN_LONGITUDE,
            altitude_m=240.0,
        )
    )
    linke_turbidity: LinkeTurbidityProfile = field(
        default_factory=LinkeTurbidityProfile.turin_default
    )
    clearness_model: ClearnessModel = field(default_factory=ClearnessModel)
    temperature_model: TemperatureModel = field(default_factory=TemperatureModel)
    seed: int = 0


def generate_weather(
    time_grid: TimeGrid, config: SyntheticWeatherConfig | None = None
) -> WeatherSeries:
    """Generate a synthetic weather series for the configured site.

    The returned series contains GHI and ambient temperature only (like a
    basic weather station); direct/diffuse components are left to the
    decomposition models downstream, exactly as in the paper's flow when
    "the weather station only provides global horizontal radiation".
    """
    cfg = config if config is not None else SyntheticWeatherConfig()

    position = compute_solar_position(
        cfg.station.latitude_deg, time_grid.days_of_year, time_grid.hours
    )
    turbidity = cfg.linke_turbidity.value_for_day(time_grid.days_of_year)
    clear_sky = clearsky_irradiance(
        position.extraterrestrial_normal,
        position.elevation_deg,
        turbidity,
        altitude_m=cfg.station.altitude_m,
    )

    clearsky_index = generate_clearsky_index(time_grid, cfg.clearness_model, cfg.seed)
    ghi = np.clip(clear_sky.global_horizontal * clearsky_index, 0.0, None)

    temperature = generate_temperature(
        time_grid, cfg.temperature_model, clearsky_index, cfg.seed
    )

    return WeatherSeries(
        time_grid=time_grid,
        ghi=ghi,
        temperature=temperature,
        station=cfg.station,
        clearness=clearsky_index,
    )


def generate_clearsky_weather(
    time_grid: TimeGrid, config: SyntheticWeatherConfig | None = None
) -> WeatherSeries:
    """Generate an idealised clear-sky weather series (no cloud modulation).

    Useful for validating the radiation chain against clear-sky expectations
    and for the "clear-sky conditions" comparisons some of the related-work
    tools provide.
    """
    cfg = config if config is not None else SyntheticWeatherConfig()
    position = compute_solar_position(
        cfg.station.latitude_deg, time_grid.days_of_year, time_grid.hours
    )
    turbidity = cfg.linke_turbidity.value_for_day(time_grid.days_of_year)
    clear_sky = clearsky_irradiance(
        position.extraterrestrial_normal,
        position.elevation_deg,
        turbidity,
        altitude_m=cfg.station.altitude_m,
    )
    temperature = generate_temperature(time_grid, cfg.temperature_model, None, cfg.seed)
    return WeatherSeries(
        time_grid=time_grid,
        ghi=clear_sky.global_horizontal,
        temperature=temperature,
        station=cfg.station,
        dni=clear_sky.beam_normal,
        dhi=clear_sky.diffuse_horizontal,
    )


def scale_weather(series: WeatherSeries, ghi_factor: float) -> WeatherSeries:
    """Return a copy of ``series`` with GHI scaled by ``ghi_factor``.

    Handy for sensitivity studies (e.g. emulating a sunnier or cloudier
    climate while keeping the temporal structure fixed).
    """
    if ghi_factor < 0:
        raise WeatherError("ghi_factor must be non-negative")
    return WeatherSeries(
        time_grid=series.time_grid,
        ghi=series.ghi * ghi_factor,
        temperature=series.temperature,
        station=series.station,
        dni=None if series.dni is None else series.dni * ghi_factor,
        dhi=None if series.dhi is None else series.dhi * ghi_factor,
        clearness=series.clearness,
    )
