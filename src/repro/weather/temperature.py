"""Synthetic ambient-temperature model.

Ambient temperature enters the PV module model both directly (cell
temperature) and through its correlation with irradiance (sunny periods are
hotter).  The synthetic model superimposes:

* a seasonal sinusoid (annual cycle, minimum in late January),
* a diurnal sinusoid (daily cycle, maximum in mid-afternoon),
* a coupling term proportional to the daily clear-sky index (clear days are
  warmer than overcast days in the same season),
* bounded day-to-day noise.

Default parameters approximate the Turin climate the paper's roofs live in
(yearly mean ~13 degC, ~11 degC diurnal swing, ~20 degC seasonal swing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WeatherError
from ..solar.time_series import TimeGrid


@dataclass(frozen=True)
class TemperatureModel:
    """Parameters of the synthetic ambient temperature process."""

    annual_mean_c: float = 13.0
    seasonal_amplitude_c: float = 10.5
    diurnal_amplitude_c: float = 5.5
    coldest_day_of_year: float = 25.0
    warmest_hour: float = 15.0
    clearness_coupling_c: float = 3.0
    daily_noise_sigma_c: float = 1.5

    def __post_init__(self) -> None:
        if self.seasonal_amplitude_c < 0 or self.diurnal_amplitude_c < 0:
            raise WeatherError("temperature amplitudes must be non-negative")
        if self.daily_noise_sigma_c < 0:
            raise WeatherError("temperature noise sigma must be non-negative")

    def seasonal_component(self, day_of_year: np.ndarray) -> np.ndarray:
        """Seasonal mean temperature for each day of year [degC]."""
        day = np.asarray(day_of_year, dtype=float)
        phase = 2.0 * np.pi * (day - self.coldest_day_of_year) / 365.0
        return self.annual_mean_c - self.seasonal_amplitude_c * np.cos(phase)

    def diurnal_component(self, hour: np.ndarray) -> np.ndarray:
        """Diurnal temperature deviation for each hour of day [degC]."""
        hour_arr = np.asarray(hour, dtype=float)
        phase = 2.0 * np.pi * (hour_arr - self.warmest_hour) / 24.0
        return self.diurnal_amplitude_c * np.cos(phase)


def generate_temperature(
    time_grid: TimeGrid,
    model: TemperatureModel | None = None,
    clearsky_index: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Generate an ambient temperature series aligned with ``time_grid``.

    Parameters
    ----------
    clearsky_index:
        Optional clear-sky-index series from
        :func:`repro.weather.clearness.generate_clearsky_index`; when given,
        daily temperatures are raised on clear days and lowered on overcast
        days, reproducing the irradiance/temperature correlation the paper's
        thermal correction relies on.
    """
    temperature_model = model if model is not None else TemperatureModel()
    rng = np.random.default_rng(seed + 1)

    seasonal = temperature_model.seasonal_component(time_grid.days_of_year)
    diurnal = temperature_model.diurnal_component(time_grid.hours)

    steps_per_day = time_grid.steps_per_day
    n_days = time_grid.n_days
    daily_noise = rng.normal(0.0, temperature_model.daily_noise_sigma_c, size=n_days)
    noise = np.repeat(daily_noise, steps_per_day)

    coupling = np.zeros(time_grid.n_samples)
    if clearsky_index is not None:
        index = np.asarray(clearsky_index, dtype=float)
        if index.shape[0] != time_grid.n_samples:
            raise WeatherError("clearsky_index length must match the time grid")
        daily_index = index.reshape(n_days, steps_per_day).mean(axis=1)
        coupling = np.repeat(
            temperature_model.clearness_coupling_c * (daily_index - 0.6), steps_per_day
        )

    return seasonal + diurnal + noise + coupling
