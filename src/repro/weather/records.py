"""Weather data containers.

A :class:`WeatherSeries` holds the per-time-step meteorological quantities
the solar-data extraction flow consumes: global horizontal irradiance and
ambient air temperature, optionally accompanied by the already decomposed
direct/diffuse components when the (synthetic or real) station provides
them.  The series is always aligned with a :class:`repro.solar.TimeGrid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import WeatherError
from ..solar.time_series import TimeGrid


@dataclass(frozen=True)
class StationMetadata:
    """Description of the (possibly virtual) weather station."""

    name: str
    latitude_deg: float
    longitude_deg: float
    altitude_m: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise WeatherError("station latitude must be within [-90, 90]")
        if not -180.0 <= self.longitude_deg <= 180.0:
            raise WeatherError("station longitude must be within [-180, 180]")


@dataclass(frozen=True)
class WeatherSeries:
    """Meteorological time series aligned with a :class:`TimeGrid`.

    Attributes
    ----------
    time_grid:
        The sampling this series is defined on.
    ghi:
        Global horizontal irradiance [W/m^2].
    temperature:
        Ambient air temperature [degC].
    dni, dhi:
        Optional direct-normal / diffuse-horizontal irradiance [W/m^2]; when
        absent they are derived with a decomposition model downstream.
    station:
        Metadata of the originating station.
    """

    time_grid: TimeGrid
    ghi: np.ndarray
    temperature: np.ndarray
    station: StationMetadata
    dni: Optional[np.ndarray] = None
    dhi: Optional[np.ndarray] = None
    clearness: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n = self.time_grid.n_samples
        for name in ("ghi", "temperature"):
            array = getattr(self, name)
            if np.asarray(array).shape != (n,):
                raise WeatherError(
                    f"{name} must have shape ({n},) to match the time grid, "
                    f"got {np.asarray(array).shape}"
                )
        for name in ("dni", "dhi", "clearness"):
            array = getattr(self, name)
            if array is not None and np.asarray(array).shape != (n,):
                raise WeatherError(f"{name} must have shape ({n},) to match the time grid")
        if np.any(np.asarray(self.ghi) < 0):
            raise WeatherError("GHI must be non-negative")

    @property
    def n_samples(self) -> int:
        """Number of time samples in the series."""
        return self.time_grid.n_samples

    @property
    def has_decomposition(self) -> bool:
        """True when DNI/DHI are provided by the station itself."""
        return self.dni is not None and self.dhi is not None

    def annual_ghi_kwh_per_m2(self) -> float:
        """Yearly global horizontal irradiation [kWh/m^2]."""
        return self.time_grid.integrate_energy_wh(self.ghi) / 1e3

    def mean_temperature(self) -> float:
        """Mean ambient temperature over the series [degC]."""
        return float(np.mean(self.temperature))

    def summary(self) -> dict:
        """Aggregate statistics used by reports and tests."""
        return {
            "station": self.station.name,
            "n_samples": self.n_samples,
            "annual_ghi_kwh_m2": self.annual_ghi_kwh_per_m2(),
            "max_ghi_w_m2": float(np.max(self.ghi)),
            "mean_temperature_c": self.mean_temperature(),
            "min_temperature_c": float(np.min(self.temperature)),
            "max_temperature_c": float(np.max(self.temperature)),
        }
