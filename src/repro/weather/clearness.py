"""Stochastic clearness-index generation.

Real weather stations provide measured global horizontal irradiance whose
ratio to the clear-sky value (the *clear-sky index*) fluctuates with cloud
cover.  Since the paper's Weather Underground traces are not available, this
module synthesises a realistic clear-sky-index process:

* a seasonal mean (winters cloudier than summers at a Po-valley site),
* day-to-day persistence modelled with a first-order autoregressive chain
  over daily "weather states" (clear / partly cloudy / overcast),
* intra-day variability with bounded high-frequency noise, stronger on
  partly-cloudy days (broken-cloud regime) than on clear or overcast days.

The resulting distribution of per-cell irradiance values is strongly skewed
towards low values -- exactly the property that motivates the paper's use of
the 75th percentile instead of the mean as a suitability signature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WeatherError
from ..solar.time_series import TimeGrid

#: Daily weather states and their clear-sky-index characteristics.
_STATES = ("clear", "partly", "overcast")


@dataclass(frozen=True)
class ClearnessModel:
    """Parameters of the synthetic clear-sky-index process.

    Attributes
    ----------
    clear_mean, partly_mean, overcast_mean:
        Mean clear-sky index of each daily weather state.
    clear_prob_summer, clear_prob_winter:
        Probability that a day is "clear" in mid-summer / mid-winter; the
        probability of "overcast" mirrors it and "partly" takes the rest.
    persistence:
        Probability of staying in the same state as the previous day.
    intra_day_sigma:
        Standard deviation of the high-frequency multiplicative noise on
        partly-cloudy days (clear/overcast days use a quarter of it).
    """

    clear_mean: float = 0.95
    partly_mean: float = 0.62
    overcast_mean: float = 0.25
    clear_prob_summer: float = 0.55
    clear_prob_winter: float = 0.30
    persistence: float = 0.45
    intra_day_sigma: float = 0.22

    def __post_init__(self) -> None:
        for name in ("clear_mean", "partly_mean", "overcast_mean"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.1:
                raise WeatherError(f"{name} must be in (0, 1.1], got {value}")
        if not 0.0 <= self.persistence < 1.0:
            raise WeatherError("persistence must be in [0, 1)")

    # -- daily state chain ------------------------------------------------------

    def _clear_probability(self, day_of_year: np.ndarray) -> np.ndarray:
        """Seasonally varying probability of a clear day (peak near solstice)."""
        phase = np.cos(2.0 * np.pi * (np.asarray(day_of_year, dtype=float) - 172.0) / 365.0)
        mid = 0.5 * (self.clear_prob_summer + self.clear_prob_winter)
        amplitude = 0.5 * (self.clear_prob_summer - self.clear_prob_winter)
        return mid + amplitude * phase

    def sample_daily_states(self, days_of_year: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sample one weather state per day with first-order persistence."""
        days = np.asarray(days_of_year, dtype=float)
        states = np.empty(days.shape[0], dtype=int)
        previous = -1
        for i, day in enumerate(days):
            if previous >= 0 and rng.random() < self.persistence:
                states[i] = previous
                continue
            p_clear = float(self._clear_probability(np.asarray([day]))[0])
            p_overcast = float(np.clip(0.85 - p_clear, 0.05, 0.9))
            p_partly = max(0.0, 1.0 - p_clear - p_overcast)
            states[i] = rng.choice(3, p=_normalised([p_clear, p_partly, p_overcast]))
            previous = states[i]
        return states

    def state_mean(self, states: np.ndarray) -> np.ndarray:
        """Mean clear-sky index of each daily state."""
        means = np.array([self.clear_mean, self.partly_mean, self.overcast_mean])
        return means[np.asarray(states, dtype=int)]

    def state_sigma(self, states: np.ndarray) -> np.ndarray:
        """Intra-day noise amplitude of each daily state."""
        sigmas = np.array(
            [self.intra_day_sigma * 0.25, self.intra_day_sigma, self.intra_day_sigma * 0.25]
        )
        return sigmas[np.asarray(states, dtype=int)]


def _normalised(probabilities: list[float]) -> np.ndarray:
    array = np.asarray(probabilities, dtype=float)
    total = array.sum()
    if total <= 0:
        raise WeatherError("state probabilities must sum to a positive value")
    return array / total


def generate_clearsky_index(
    time_grid: TimeGrid,
    model: ClearnessModel | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Generate a clear-sky-index series aligned with ``time_grid``.

    The returned array multiplies the clear-sky GHI to obtain the synthetic
    "measured" GHI.  Values are clipped to [0.02, 1.1]; occasional values
    slightly above 1 mimic cloud-enhancement events.
    """
    clearness_model = model if model is not None else ClearnessModel()
    rng = np.random.default_rng(seed)

    steps_per_day = time_grid.steps_per_day
    n_days = time_grid.n_days
    day_numbers = time_grid.days_of_year[::steps_per_day]
    states = clearness_model.sample_daily_states(day_numbers, rng)

    daily_mean = clearness_model.state_mean(states)
    daily_sigma = clearness_model.state_sigma(states)

    # Smooth intra-day noise: a small number of random Fourier components
    # per day gives cloud passages with realistic temporal correlation.
    hours = time_grid.hours[:steps_per_day]
    index = np.empty(time_grid.n_samples, dtype=float)
    for d in range(n_days):
        noise = np.zeros(steps_per_day)
        for _ in range(3):
            frequency = rng.uniform(1.0, 6.0)
            phase = rng.uniform(0.0, 2.0 * np.pi)
            noise += rng.normal(0.0, 1.0) * np.sin(2.0 * np.pi * frequency * hours / 24.0 + phase)
        noise *= daily_sigma[d] / np.sqrt(3.0)
        day_slice = slice(d * steps_per_day, (d + 1) * steps_per_day)
        index[day_slice] = daily_mean[d] + noise
    return np.clip(index, 0.02, 1.1)
