"""Weather-series CSV reader/writer.

A minimal, dependency-free exchange format for weather traces: one row per
time sample with day-of-year, hour, GHI and ambient temperature (plus DNI
and DHI when available).  This is the shape of data a Weather Underground
export or a campus weather station provides after basic cleaning.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import IOFormatError
from ..solar.time_series import TimeGrid
from ..weather.records import StationMetadata, WeatherSeries

PathLike = Union[str, Path]

_BASE_FIELDS = ("day_of_year", "hour", "ghi_w_m2", "temperature_c")
_OPTIONAL_FIELDS = ("dni_w_m2", "dhi_w_m2")


def write_weather_csv(series: WeatherSeries, path: PathLike) -> None:
    """Write a weather series to CSV (one row per time sample)."""
    has_decomposition = series.has_decomposition
    fields = list(_BASE_FIELDS) + (list(_OPTIONAL_FIELDS) if has_decomposition else [])
    with Path(path).open("w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["# station", series.station.name, series.station.latitude_deg,
             series.station.longitude_deg, series.station.altitude_m]
        )
        writer.writerow(
            ["# grid", series.time_grid.step_minutes, series.time_grid.day_stride]
        )
        writer.writerow(fields)
        for index in range(series.n_samples):
            row = [
                f"{series.time_grid.days_of_year[index]:.0f}",
                f"{series.time_grid.hours[index]:.4f}",
                f"{series.ghi[index]:.3f}",
                f"{series.temperature[index]:.3f}",
            ]
            if has_decomposition:
                row.append(f"{series.dni[index]:.3f}")
                row.append(f"{series.dhi[index]:.3f}")
            writer.writerow(row)


def read_weather_csv(path: PathLike) -> WeatherSeries:
    """Read a weather series previously written by :func:`write_weather_csv`."""
    with Path(path).open("r", newline="", encoding="ascii") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if len(rows) < 4:
        raise IOFormatError("weather CSV is too short to contain a header and data")

    station_row, grid_row, header = rows[0], rows[1], rows[2]
    if not station_row or station_row[0] != "# station" or len(station_row) < 5:
        raise IOFormatError("missing '# station' metadata row")
    if not grid_row or grid_row[0] != "# grid" or len(grid_row) < 3:
        raise IOFormatError("missing '# grid' metadata row")

    station = StationMetadata(
        name=station_row[1],
        latitude_deg=float(station_row[2]),
        longitude_deg=float(station_row[3]),
        altitude_m=float(station_row[4]),
    )
    time_grid = TimeGrid(step_minutes=float(grid_row[1]), day_stride=int(grid_row[2]))

    expected_base = list(_BASE_FIELDS)
    if header[: len(expected_base)] != expected_base:
        raise IOFormatError(f"unexpected CSV header: {header}")
    has_decomposition = len(header) >= len(_BASE_FIELDS) + 2

    data_rows = rows[3:]
    if len(data_rows) != time_grid.n_samples:
        raise IOFormatError(
            f"expected {time_grid.n_samples} data rows, found {len(data_rows)}"
        )

    ghi = np.empty(time_grid.n_samples)
    temperature = np.empty(time_grid.n_samples)
    dni = np.empty(time_grid.n_samples) if has_decomposition else None
    dhi = np.empty(time_grid.n_samples) if has_decomposition else None
    for index, row in enumerate(data_rows):
        if len(row) < len(header):
            raise IOFormatError(f"row {index + 4} has too few columns")
        ghi[index] = float(row[2])
        temperature[index] = float(row[3])
        if has_decomposition:
            dni[index] = float(row[4])
            dhi[index] = float(row[5])

    return WeatherSeries(
        time_grid=time_grid,
        ghi=ghi,
        temperature=temperature,
        station=station,
        dni=dni,
        dhi=dhi,
    )
