"""Placement and report JSON serialisation.

Placements are the artefact an installer would actually consume, so they are
serialisable to a small, self-describing JSON document: module anchors,
orientation, footprint, topology, and free-form metadata.  Experiment
reports (Table-I style rows) share the same mechanism.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..core.placement import ModuleFootprint, ModulePlacement, Placement
from ..errors import IOFormatError
from ..pv.array import SeriesParallelTopology

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def placement_to_dict(placement: Placement) -> dict:
    """Convert a placement to a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "label": placement.label,
        "grid_pitch_m": placement.grid_pitch,
        "footprint": {
            "cells_w": placement.footprint.cells_w,
            "cells_h": placement.footprint.cells_h,
        },
        "topology": {
            "n_series": placement.topology.n_series,
            "n_parallel": placement.topology.n_parallel,
        },
        "modules": [
            {
                "module_index": module.module_index,
                "row": module.row,
                "col": module.col,
                "rotated": module.rotated,
            }
            for module in placement
        ],
        "metadata": dict(placement.metadata),
    }


def placement_from_dict(data: dict) -> Placement:
    """Rebuild a placement from its dictionary form.

    Raises
    ------
    IOFormatError
        If mandatory keys are missing or the format version is unsupported.
    """
    try:
        version = data["format_version"]
        if version != _FORMAT_VERSION:
            raise IOFormatError(f"unsupported placement format version {version}")
        footprint = ModuleFootprint(
            cells_w=int(data["footprint"]["cells_w"]),
            cells_h=int(data["footprint"]["cells_h"]),
        )
        topology = SeriesParallelTopology(
            n_series=int(data["topology"]["n_series"]),
            n_parallel=int(data["topology"]["n_parallel"]),
        )
        modules = tuple(
            ModulePlacement(
                module_index=int(entry["module_index"]),
                row=int(entry["row"]),
                col=int(entry["col"]),
                rotated=bool(entry.get("rotated", False)),
            )
            for entry in data["modules"]
        )
        return Placement(
            modules=modules,
            footprint=footprint,
            topology=topology,
            grid_pitch=float(data["grid_pitch_m"]),
            label=str(data.get("label", "loaded")),
            metadata=dict(data.get("metadata", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise IOFormatError(f"malformed placement document: {exc}") from exc


def save_placement(placement: Placement, path: PathLike) -> None:
    """Write a placement to a JSON file."""
    Path(path).write_text(
        json.dumps(placement_to_dict(placement), indent=2, sort_keys=True),
        encoding="ascii",
    )


def load_placement(path: PathLike) -> Placement:
    """Read a placement from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="ascii"))
    except json.JSONDecodeError as exc:
        raise IOFormatError(f"invalid JSON in {path}: {exc}") from exc
    return placement_from_dict(data)


def save_report(rows: list[dict], path: PathLike) -> None:
    """Write a list of report rows (e.g. Table-I rows) to JSON."""
    Path(path).write_text(json.dumps(rows, indent=2, sort_keys=True), encoding="ascii")


def load_report(path: PathLike) -> list[dict]:
    """Read a report previously written by :func:`save_report`."""
    try:
        data = json.loads(Path(path).read_text(encoding="ascii"))
    except json.JSONDecodeError as exc:
        raise IOFormatError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(data, list):
        raise IOFormatError("a report document must be a JSON list of rows")
    return data
