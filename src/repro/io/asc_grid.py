"""ESRI ASCII grid (.asc) reader/writer.

The de-facto interchange format for small DSM tiles.  Only the subset needed
for DSM exchange is supported: square cells, ``xllcorner``/``yllcorner``
georeferencing, optional ``nodata_value``.  Rows in the file run north to
south (the first data row is the northernmost), so they are flipped to match
the library's south-up raster convention.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import IOFormatError
from ..geometry import Raster, RasterSpec
from ..gis.dsm import DigitalSurfaceModel

PathLike = Union[str, Path]

_REQUIRED_KEYS = ("ncols", "nrows", "xllcorner", "yllcorner", "cellsize")


def write_asc(dsm: DigitalSurfaceModel, path: PathLike, nodata: float = -9999.0) -> None:
    """Write a DSM to an ESRI ASCII grid file."""
    spec = dsm.raster.spec
    lines = [
        f"ncols {spec.n_cols}",
        f"nrows {spec.n_rows}",
        f"xllcorner {spec.origin_x:.6f}",
        f"yllcorner {spec.origin_y:.6f}",
        f"cellsize {spec.pitch:.6f}",
        f"nodata_value {nodata:.6f}",
    ]
    # File rows go north to south: flip the south-up array.
    for row in dsm.data[::-1]:
        lines.append(" ".join(f"{value:.4f}" for value in row))
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_asc(path: PathLike) -> DigitalSurfaceModel:
    """Read a DSM from an ESRI ASCII grid file.

    Raises
    ------
    IOFormatError
        If the header is malformed or the data block has the wrong size.
    """
    text = Path(path).read_text(encoding="ascii")
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    header: dict[str, float] = {}
    data_start = 0
    for index, line in enumerate(lines):
        parts = line.split()
        if len(parts) == 2 and parts[0].lower() in _REQUIRED_KEYS + ("nodata_value",):
            try:
                header[parts[0].lower()] = float(parts[1])
            except ValueError as exc:
                raise IOFormatError(f"invalid header line: {line!r}") from exc
            data_start = index + 1
        else:
            break

    missing = [key for key in _REQUIRED_KEYS if key not in header]
    if missing:
        raise IOFormatError(f"missing header keys in ASC file: {missing}")

    n_cols = int(header["ncols"])
    n_rows = int(header["nrows"])
    nodata = header.get("nodata_value", -9999.0)

    values: list[float] = []
    for line in lines[data_start:]:
        values.extend(float(token) for token in line.split())
    if len(values) != n_rows * n_cols:
        raise IOFormatError(
            f"expected {n_rows * n_cols} data values, found {len(values)}"
        )
    data = np.asarray(values, dtype=float).reshape(n_rows, n_cols)
    if np.any(data == nodata):
        raise IOFormatError("the reproduction does not support nodata cells in DSMs")
    # Flip back to the library's south-up convention.
    data = data[::-1]
    spec = RasterSpec(
        origin_x=header["xllcorner"],
        origin_y=header["yllcorner"],
        pitch=header["cellsize"],
        n_rows=n_rows,
        n_cols=n_cols,
    )
    return DigitalSurfaceModel(Raster(spec, data))
