"""I/O layer: DSM (.asc), weather CSV, placement/report JSON."""

from .asc_grid import read_asc, write_asc
from .placement_json import (
    load_placement,
    load_report,
    placement_from_dict,
    placement_to_dict,
    save_placement,
    save_report,
)
from .weather_csv import read_weather_csv, write_weather_csv

__all__ = [
    "read_asc",
    "write_asc",
    "load_placement",
    "load_report",
    "placement_from_dict",
    "placement_to_dict",
    "save_placement",
    "save_report",
    "read_weather_csv",
    "write_weather_csv",
]
