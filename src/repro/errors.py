"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate polygon, empty raster, ...)."""


class GISError(ReproError):
    """Problems in the GIS substrate (malformed DSM, bad resolution, ...)."""


class SolarModelError(ReproError):
    """Invalid input to a solar-radiation or solar-geometry model."""


class WeatherError(ReproError):
    """Invalid or inconsistent weather data."""


class PVModelError(ReproError):
    """Invalid input to a PV electrical or thermal model."""


class TopologyError(PVModelError):
    """Inconsistent series/parallel topology (m * n != N, empty string, ...)."""


class PlacementError(ReproError):
    """The floorplanner could not produce or evaluate a placement."""


class InfeasiblePlacementError(PlacementError):
    """The requested number of modules does not fit in the available area."""


class ConfigurationError(ReproError):
    """Invalid configuration value passed to an experiment or generator."""


class ScenarioExecutionError(ReproError):
    """A scenario failed inside the batch runner.

    Carries the failing point's identity so a worker traceback can always be
    attributed: :attr:`scenario` is the scenario name, :attr:`digest` the
    campaign-point content digest (when known).
    """

    def __init__(
        self,
        message: str,
        scenario: "str | None" = None,
        digest: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.scenario = scenario
        self.digest = digest


class IOFormatError(ReproError):
    """Malformed file passed to one of the :mod:`repro.io` readers."""
