"""Physical constants and paper-level default parameters.

The values grouped here are either physical constants (solar constant,
Stefan-Boltzmann, ...) or defaults taken directly from the DATE 2018 paper
(grid pitch, module size, wiring characteristics, experimental site).
Keeping them in one module makes every "magic number" of the reproduction
traceable to its source.
"""

from __future__ import annotations

import math

# --------------------------------------------------------------------------
# Physical constants
# --------------------------------------------------------------------------

#: Solar constant: extraterrestrial normal irradiance [W/m^2] (WMO value).
SOLAR_CONSTANT = 1367.0

#: Stefan-Boltzmann constant [W/(m^2 K^4)].
STEFAN_BOLTZMANN = 5.670374419e-8

#: Absolute zero offset between Celsius and Kelvin.
KELVIN_OFFSET = 273.15

#: Mean earth-sun distance correction amplitude (eccentricity factor).
ECCENTRICITY_AMPLITUDE = 0.033

#: Degrees to radians.
DEG2RAD = math.pi / 180.0

#: Radians to degrees.
RAD2DEG = 180.0 / math.pi

#: Standard test condition irradiance [W/m^2].
STC_IRRADIANCE = 1000.0

#: Standard test condition cell temperature [degC].
STC_TEMPERATURE = 25.0

#: Hours in a day.
HOURS_PER_DAY = 24.0

#: Days in the (non-leap) reference year used throughout the reproduction.
DAYS_PER_YEAR = 365

#: Seconds per hour.
SECONDS_PER_HOUR = 3600.0

# --------------------------------------------------------------------------
# Paper defaults: virtual grid and module geometry (Section III-A)
# --------------------------------------------------------------------------

#: Virtual grid pitch ``s`` [m]; the paper uses 20 cm.
DEFAULT_GRID_PITCH = 0.20

#: PV module width [m] (paper: 160 cm x 80 cm module).
DEFAULT_MODULE_WIDTH = 1.60

#: PV module height [m].
DEFAULT_MODULE_HEIGHT = 0.80

#: Module width expressed in grid cells (k1 in the paper).
DEFAULT_MODULE_CELLS_W = int(round(DEFAULT_MODULE_WIDTH / DEFAULT_GRID_PITCH))

#: Module height expressed in grid cells (k2 in the paper).
DEFAULT_MODULE_CELLS_H = int(round(DEFAULT_MODULE_HEIGHT / DEFAULT_GRID_PITCH))

# --------------------------------------------------------------------------
# Paper defaults: suitability metric (Section III-C)
# --------------------------------------------------------------------------

#: Percentile of the irradiance distribution used as suitability signature.
DEFAULT_SUITABILITY_PERCENTILE = 75.0

#: Distance-threshold multiplier: a candidate cell is rejected when farther
#: than this multiple of the average distance of the already placed modules.
DEFAULT_DISTANCE_THRESHOLD_FACTOR = 2.0

# --------------------------------------------------------------------------
# Paper defaults: module thermal model (Section III-B1, refs [12][13])
# --------------------------------------------------------------------------

#: Roof absorptivity used in the actual-module-temperature correction.
DEFAULT_ROOF_ABSORPTIVITY = 0.75

#: Convective + radiative heat-exchange coefficient [W/(K m^2)] (paper: 15).
DEFAULT_HEAT_EXCHANGE_COEFFICIENT = 15.0

#: Ratio k = alpha / h_c used in Tact = T + k * G [K m^2 / W].
DEFAULT_THERMAL_K = DEFAULT_ROOF_ABSORPTIVITY / DEFAULT_HEAT_EXCHANGE_COEFFICIENT

# --------------------------------------------------------------------------
# Paper defaults: wiring overhead (Section III-B2 and V-C)
# --------------------------------------------------------------------------

#: Resistance per metre of the AWG 10 cable used for string wiring [ohm/m].
DEFAULT_WIRE_RESISTANCE_PER_M = 0.007

#: Cable cost per metre [$/m].
DEFAULT_WIRE_COST_PER_M = 1.0

#: Default length of the factory connector between adjacent modules [m].
DEFAULT_CONNECTOR_LENGTH = 1.0

#: Conservative string current assumed in the paper's overhead estimate [A].
OVERHEAD_REFERENCE_CURRENT = 4.0

#: Fraction of the year assumed at non-zero current in the overhead estimate.
OVERHEAD_DUTY_FACTOR = 0.5

# --------------------------------------------------------------------------
# Paper defaults: time base and experimental site (Sections IV and V)
# --------------------------------------------------------------------------

#: Temporal resolution of the solar simulation [minutes] (paper: 15 min).
DEFAULT_TIME_STEP_MINUTES = 15.0

#: Number of 15-minute samples in one year.
SAMPLES_PER_YEAR_15MIN = int(DAYS_PER_YEAR * HOURS_PER_DAY * 60 / DEFAULT_TIME_STEP_MINUTES)

#: Latitude of the experimental site (Turin, Italy) [deg].
TURIN_LATITUDE = 45.07

#: Longitude of the experimental site (Turin, Italy) [deg east].
TURIN_LONGITUDE = 7.69

#: Roof tilt used by all three case-study roofs [deg] (paper: 26 deg).
CASE_STUDY_TILT = 26.0

#: Roof azimuth of the case studies: south / south-west facing.
#: Convention: 0 deg = south, positive towards west.
CASE_STUDY_AZIMUTH = 22.5

#: Default ground albedo used by the transposition model.
DEFAULT_ALBEDO = 0.2

#: Default Linke turbidity factor (clear, low-pollution mid-latitude site).
DEFAULT_LINKE_TURBIDITY = 3.0

#: Number of modules per series string in the paper's experiments (m = 8).
CASE_STUDY_SERIES_LENGTH = 8
