"""GIS substrate: DSM handling, synthetic scenes, roof extraction, gridding."""

from .dsm import DigitalSurfaceModel, ObstacleFootprint
from .gridding import RoofGrid, make_roof_grid
from .roof import FittedRoofPlane, fit_roof_plane, obstacle_mask_from_plane
from .suitable_area import (
    SuitableAreaConfig,
    SuitableAreaResult,
    apply_suitable_area,
    compute_suitable_area,
    suitable_grid_for_scene,
)
from .synthetic import (
    AdjacentStructure,
    RoofScene,
    RoofSpec,
    antenna,
    build_roof_scene,
    chimney,
    dormer,
    hvac_unit,
    pipe_rack,
    random_obstacle_set,
    scattered_vents,
    simple_residential_roof,
    skylight_row,
    vent,
)

__all__ = [
    "DigitalSurfaceModel",
    "ObstacleFootprint",
    "RoofGrid",
    "make_roof_grid",
    "FittedRoofPlane",
    "fit_roof_plane",
    "obstacle_mask_from_plane",
    "SuitableAreaConfig",
    "SuitableAreaResult",
    "apply_suitable_area",
    "compute_suitable_area",
    "suitable_grid_for_scene",
    "AdjacentStructure",
    "RoofScene",
    "RoofSpec",
    "antenna",
    "build_roof_scene",
    "chimney",
    "dormer",
    "hvac_unit",
    "pipe_rack",
    "random_obstacle_set",
    "scattered_vents",
    "simple_residential_roof",
    "skylight_row",
    "vent",
]
