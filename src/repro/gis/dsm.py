"""Digital Surface Model (DSM) handling.

A DSM is a raster whose cell values are surface elevations in metres: the
terrain plus everything standing on it (buildings, roof obstacles, trees).
The paper's GIS flow starts from a LiDAR-derived DSM with sub-metre
resolution; here the :class:`DigitalSurfaceModel` wraps the generic
:class:`repro.geometry.Raster` with the elevation-specific operations the
pipeline needs (slope/aspect estimation, obstacle prominence, region
statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..constants import RAD2DEG
from ..errors import GISError
from ..geometry import Point2D, Polygon, Raster, RasterSpec


class DigitalSurfaceModel:
    """A georeferenced elevation raster with surface-analysis helpers."""

    def __init__(self, raster: Raster):
        if raster.data.ndim != 2:
            raise GISError("a DSM must wrap a 2D raster")
        if np.any(~np.isfinite(raster.data)):
            raise GISError("a DSM must not contain NaN or infinite elevations")
        self._raster = raster

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_array(
        cls,
        elevation: np.ndarray,
        pitch: float,
        origin_x: float = 0.0,
        origin_y: float = 0.0,
    ) -> "DigitalSurfaceModel":
        """Build a DSM from a plain elevation array."""
        array = np.asarray(elevation, dtype=float)
        spec = RasterSpec(origin_x, origin_y, pitch, array.shape[0], array.shape[1])
        return cls(Raster(spec, array))

    @classmethod
    def flat(
        cls,
        width_m: float,
        height_m: float,
        pitch: float,
        elevation: float = 0.0,
        origin_x: float = 0.0,
        origin_y: float = 0.0,
    ) -> "DigitalSurfaceModel":
        """Build a flat DSM of the requested extent."""
        n_cols = max(1, int(np.ceil(width_m / pitch)))
        n_rows = max(1, int(np.ceil(height_m / pitch)))
        spec = RasterSpec(origin_x, origin_y, pitch, n_rows, n_cols)
        return cls(Raster(spec, np.full((n_rows, n_cols), float(elevation))))

    # -- accessors -------------------------------------------------------------

    @property
    def raster(self) -> Raster:
        """The underlying raster."""
        return self._raster

    @property
    def data(self) -> np.ndarray:
        """The elevation array [m] (mutable view)."""
        return self._raster.data

    @property
    def pitch(self) -> float:
        """Cell size [m]."""
        return self._raster.pitch

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape ``(n_rows, n_cols)``."""
        return self._raster.shape

    def elevation_at(self, point: Point2D) -> float:
        """Bilinearly interpolated surface elevation at a world point [m]."""
        return self._raster.sample_bilinear(point)

    def copy(self) -> "DigitalSurfaceModel":
        """Deep copy."""
        return DigitalSurfaceModel(self._raster.copy())

    # -- surface analysis --------------------------------------------------------

    def gradients(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-cell elevation gradients ``(dz/dx, dz/dy)`` (central differences)."""
        dz_drow, dz_dcol = np.gradient(self._raster.data, self.pitch)
        # np.gradient returns derivatives along (rows, cols) = (y, x).
        return dz_dcol, dz_drow

    def slope_deg(self) -> np.ndarray:
        """Per-cell slope angle with respect to horizontal [deg]."""
        dz_dx, dz_dy = self.gradients()
        return np.arctan(np.hypot(dz_dx, dz_dy)) * RAD2DEG

    def aspect_deg(self) -> np.ndarray:
        """Per-cell aspect (downhill direction) [deg, 0 = South, positive West].

        Flat cells (slope ~ 0) get an aspect of 0 by convention.
        """
        dz_dx, dz_dy = self.gradients()
        # Downhill direction is -gradient; express its azimuth in the
        # library convention (0 = South = -y, positive towards West = -x).
        downhill_x = -dz_dx
        downhill_y = -dz_dy
        azimuth = np.arctan2(-downhill_x, -downhill_y) * RAD2DEG
        flat = np.hypot(dz_dx, dz_dy) < 1e-9
        return np.where(flat, 0.0, azimuth)

    def prominence(self, neighbourhood_cells: int = 3) -> np.ndarray:
        """Height of each cell above the local median surface [m].

        A simple morphological measure used to detect obstacles standing
        proud of an otherwise smooth roof plane (chimneys, dormers, pipes).
        """
        if neighbourhood_cells < 1:
            raise GISError("neighbourhood_cells must be >= 1")
        data = self._raster.data
        n_rows, n_cols = data.shape
        k = neighbourhood_cells
        padded = np.pad(data, k, mode="edge")
        local_median = np.empty_like(data)
        # Median filter implemented with a moving window; windows are tiny
        # (default 7x7) so the double loop over offsets stays vectorised
        # over the full raster.
        stack = np.empty(((2 * k + 1) ** 2, n_rows, n_cols), dtype=float)
        idx = 0
        for dr in range(-k, k + 1):
            for dc in range(-k, k + 1):
                stack[idx] = padded[k + dr : k + dr + n_rows, k + dc : k + dc + n_cols]
                idx += 1
        local_median = np.median(stack, axis=0)
        return data - local_median

    def region_statistics(self, polygon: Polygon) -> dict:
        """Elevation statistics of the cells covered by ``polygon``."""
        mask = self._raster.mask_from_polygon(polygon)
        if not np.any(mask):
            raise GISError("the polygon does not cover any DSM cell")
        values = self._raster.data[mask]
        return {
            "count": int(values.size),
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "std": float(values.std()),
        }


@dataclass(frozen=True)
class ObstacleFootprint:
    """A roof encumbrance: its footprint on the roof plane and its height.

    Attributes
    ----------
    name:
        Human-readable label ("chimney", "pipe rack", ...).
    polygon:
        Footprint polygon expressed in *roof-plane* coordinates (u, v) [m].
    height_m:
        Height of the obstacle above the roof surface [m].
    clearance_m:
        Additional keep-out margin around the footprint where modules must
        not be placed (maintenance access, shadow penumbra).
    """

    name: str
    polygon: Polygon
    height_m: float
    clearance_m: float = 0.2

    def __post_init__(self) -> None:
        if self.height_m <= 0:
            raise GISError("obstacle height must be positive")
        if self.clearance_m < 0:
            raise GISError("obstacle clearance must be non-negative")
