"""Roof-facet extraction from a DSM.

The synthetic scene generator already knows its roof plane exactly, but the
full GIS flow (paper refs [1], [8]) starts from the DSM alone: it must locate
planar roof facets, estimate their slope and aspect, and flag the cells that
deviate from the fitted plane (obstacles).  This module implements that
analysis path so the pipeline can also be run on externally supplied DSM
rasters (e.g. loaded through :mod:`repro.io.asc_grid`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import RAD2DEG
from ..errors import GISError
from ..geometry import Point3D, Polygon, RoofPlaneFrame
from .dsm import DigitalSurfaceModel


@dataclass(frozen=True)
class FittedRoofPlane:
    """Least-squares plane fitted to a DSM region.

    The plane is ``z = a*x + b*y + c`` in world coordinates; derived tilt and
    aspect follow the library's azimuth convention (0 = South, positive
    towards West).
    """

    a: float
    b: float
    c: float
    tilt_deg: float
    azimuth_deg: float
    rms_residual_m: float
    n_cells: int

    def elevation_at(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Plane elevation at the given world coordinates."""
        return self.a * np.asarray(x, dtype=float) + self.b * np.asarray(y, dtype=float) + self.c

    def frame(self, origin_x: float, origin_y: float) -> RoofPlaneFrame:
        """Build a :class:`RoofPlaneFrame` anchored at ``(origin_x, origin_y)``."""
        origin_z = float(self.elevation_at(np.asarray([origin_x]), np.asarray([origin_y]))[0])
        return RoofPlaneFrame(
            origin=Point3D(origin_x, origin_y, origin_z),
            azimuth_deg=self.azimuth_deg,
            tilt_deg=self.tilt_deg,
        )


def fit_roof_plane(dsm: DigitalSurfaceModel, region: Polygon) -> FittedRoofPlane:
    """Fit a plane to the DSM cells covered by ``region`` (world coordinates).

    A straightforward least-squares fit is adequate because roof facets are
    planar by construction; obstacle cells inflate the residual and are
    handled afterwards by :func:`obstacle_mask_from_plane`.
    """
    mask = dsm.raster.mask_from_polygon(region)
    if np.count_nonzero(mask) < 3:
        raise GISError("the region must cover at least 3 DSM cells to fit a plane")

    rows, cols = np.nonzero(mask)
    spec = dsm.raster.spec
    x = spec.origin_x + (cols + 0.5) * spec.pitch
    y = spec.origin_y + (rows + 0.5) * spec.pitch
    z = dsm.data[rows, cols]

    design = np.column_stack([x, y, np.ones_like(x)])
    coefficients, _, _, _ = np.linalg.lstsq(design, z, rcond=None)
    a, b, c = (float(v) for v in coefficients)

    residuals = z - (a * x + b * y + c)
    rms = float(np.sqrt(np.mean(residuals**2)))

    slope = float(np.arctan(np.hypot(a, b)) * RAD2DEG)
    if np.hypot(a, b) < 1e-9:
        azimuth = 0.0
    else:
        # Downhill direction is -(a, b); azimuth measured from South (=-y)
        # positive towards West (=-x).
        azimuth = float(np.arctan2(a, b) * RAD2DEG)
    return FittedRoofPlane(
        a=a,
        b=b,
        c=c,
        tilt_deg=slope,
        azimuth_deg=azimuth,
        rms_residual_m=rms,
        n_cells=int(np.count_nonzero(mask)),
    )


def obstacle_mask_from_plane(
    dsm: DigitalSurfaceModel,
    region: Polygon,
    plane: FittedRoofPlane,
    threshold_m: float = 0.25,
) -> np.ndarray:
    """Cells of ``region`` standing higher than ``threshold_m`` above the plane.

    Returns a boolean array of the DSM shape; True marks detected obstacles.
    """
    if threshold_m <= 0:
        raise GISError("threshold_m must be positive")
    mask = dsm.raster.mask_from_polygon(region)
    spec = dsm.raster.spec
    rows, cols = np.nonzero(mask)
    x = spec.origin_x + (cols + 0.5) * spec.pitch
    y = spec.origin_y + (rows + 0.5) * spec.pitch
    deviation = dsm.data[rows, cols] - plane.elevation_at(x, y)
    obstacle = np.zeros(dsm.shape, dtype=bool)
    obstacle[rows, cols] = deviation > threshold_m
    return obstacle


def estimate_usable_area_m2(
    dsm: DigitalSurfaceModel,
    region: Polygon,
    plane: FittedRoofPlane,
    threshold_m: float = 0.25,
) -> float:
    """Usable roof area [m^2] measured on the inclined plane.

    Counts the region cells not flagged as obstacles and corrects the
    horizontal cell area by the facet slope.
    """
    region_mask = dsm.raster.mask_from_polygon(region)
    obstacles = obstacle_mask_from_plane(dsm, region, plane, threshold_m)
    usable_cells = int(np.count_nonzero(region_mask & ~obstacles))
    cell_area = dsm.pitch**2
    slope_correction = 1.0 / np.cos(np.radians(plane.tilt_deg))
    return usable_cells * cell_area * slope_correction
