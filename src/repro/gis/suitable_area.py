"""Suitable-area identification.

Section IV of the paper: "The DSM allows to recognize encumbrances over the
roof (e.g. chimneys and dormers), that prevent the deployment of PV panels
[...]  The result is the identification of the suitable area, i.e., of the
area of the roof that can be used for the placement of PV panels.  The area
is then aligned to the virtual grid to obtain the inputs for the placement
algorithm, i.e., the dimension of the area (parameters W and H) and the
valid grid elements (Ng)."

Two exclusion mechanisms are implemented:

* **footprint exclusion** -- grid elements covered by an obstacle footprint
  (expanded by the obstacle's clearance margin) or lying within the edge
  setback of the facet are invalid;
* **shading exclusion** (optional) -- grid elements shaded for more than a
  configurable fraction of the daylight hours can additionally be removed,
  mimicking tools that pre-filter chronically shaded surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import GISError
from ..geometry import Point2D, Polygon
from .dsm import ObstacleFootprint
from .gridding import RoofGrid
from .synthetic import RoofScene


@dataclass(frozen=True)
class SuitableAreaConfig:
    """Parameters of the suitable-area extraction."""

    edge_setback_m: float = 0.4
    apply_obstacle_clearance: bool = True
    max_shaded_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.edge_setback_m < 0:
            raise GISError("edge setback must be non-negative")
        if self.max_shaded_fraction is not None and not 0.0 < self.max_shaded_fraction <= 1.0:
            raise GISError("max_shaded_fraction must be in (0, 1]")


@dataclass(frozen=True)
class SuitableAreaResult:
    """Outcome of the suitable-area extraction."""

    valid_mask: np.ndarray
    n_valid: int
    n_total: int
    excluded_by_obstacles: int
    excluded_by_setback: int
    excluded_by_shading: int

    @property
    def valid_fraction(self) -> float:
        """Fraction of grid elements that remain usable."""
        return self.n_valid / self.n_total if self.n_total else 0.0


def _expanded_footprint(obstacle: ObstacleFootprint, apply_clearance: bool) -> Polygon:
    """Obstacle footprint grown by its clearance margin (bounding-box growth)."""
    if not apply_clearance or obstacle.clearance_m <= 0:
        return obstacle.polygon
    box = obstacle.polygon.bounding_box().expanded(obstacle.clearance_m)
    return Polygon.rectangle(box.xmin, box.ymin, box.xmax, box.ymax)


def compute_suitable_area(
    grid: RoofGrid,
    obstacles: Sequence[ObstacleFootprint],
    config: SuitableAreaConfig | None = None,
    shaded_fraction: np.ndarray | None = None,
) -> SuitableAreaResult:
    """Determine which grid elements can host PV modules.

    Parameters
    ----------
    grid:
        The roof virtual grid (its current mask is the starting point).
    obstacles:
        Roof encumbrances in roof-plane coordinates.
    config:
        Extraction parameters; defaults to a 0.4 m edge setback with
        obstacle clearances applied and no shading-based exclusion.
    shaded_fraction:
        Optional per-element shaded-time fraction (same shape as the grid)
        used when ``config.max_shaded_fraction`` is set.
    """
    cfg = config if config is not None else SuitableAreaConfig()

    mask = grid.valid_mask.copy()
    n_total = grid.n_cells

    # 1. Edge setback: elements whose centre is too close to the facet border.
    setback_removed = 0
    if cfg.edge_setback_m > 0:
        u = (np.arange(grid.n_cols) + 0.5) * grid.pitch
        v = (np.arange(grid.n_rows) + 0.5) * grid.pitch
        grid_u, grid_v = np.meshgrid(u, v)
        inside = (
            (grid_u >= cfg.edge_setback_m)
            & (grid_u <= grid.width_m - cfg.edge_setback_m)
            & (grid_v >= cfg.edge_setback_m)
            & (grid_v <= grid.depth_m - cfg.edge_setback_m)
        )
        setback_removed = int(np.count_nonzero(mask & ~inside))
        mask &= inside

    # 2. Obstacle footprints (with clearance).
    obstacle_removed = 0
    if obstacles:
        covered = np.zeros_like(mask)
        for obstacle in obstacles:
            footprint = _expanded_footprint(obstacle, cfg.apply_obstacle_clearance)
            covered |= footprint.rasterize(
                Point2D(0.0, 0.0), grid.pitch, grid.n_cols, grid.n_rows, mode="touch"
            )
        obstacle_removed = int(np.count_nonzero(mask & covered))
        mask &= ~covered

    # 3. Optional chronic-shading exclusion.
    shading_removed = 0
    if cfg.max_shaded_fraction is not None:
        if shaded_fraction is None:
            raise GISError(
                "max_shaded_fraction is set but no shaded_fraction map was provided"
            )
        shaded = np.asarray(shaded_fraction, dtype=float)
        if shaded.shape != grid.shape:
            raise GISError(
                f"shaded_fraction shape {shaded.shape} does not match grid {grid.shape}"
            )
        too_shaded = shaded > cfg.max_shaded_fraction
        shading_removed = int(np.count_nonzero(mask & too_shaded))
        mask &= ~too_shaded

    return SuitableAreaResult(
        valid_mask=mask,
        n_valid=int(np.count_nonzero(mask)),
        n_total=n_total,
        excluded_by_obstacles=obstacle_removed,
        excluded_by_setback=setback_removed,
        excluded_by_shading=shading_removed,
    )


def apply_suitable_area(grid: RoofGrid, result: SuitableAreaResult) -> RoofGrid:
    """Return a copy of ``grid`` restricted to the suitable area."""
    return grid.with_mask(result.valid_mask)


def suitable_grid_for_scene(
    scene: RoofScene,
    grid: RoofGrid,
    config: SuitableAreaConfig | None = None,
    shaded_fraction: np.ndarray | None = None,
) -> RoofGrid:
    """Convenience wrapper: compute and apply the suitable area of a scene."""
    cfg = config
    if cfg is None:
        cfg = SuitableAreaConfig(edge_setback_m=scene.spec.edge_setback_m)
    result = compute_suitable_area(grid, scene.obstacles, cfg, shaded_fraction)
    return apply_suitable_area(grid, result)
