"""Virtual placement grid on the roof plane.

Section III-A of the paper aligns the usable roof area to a virtual grid of
square elements of side ``s`` (20 cm) lying *on the roof plane*; module
sizes are integer multiples of ``s`` and grid points are the candidate
anchor positions for module placement.  :class:`RoofGrid` implements this
grid: it lives in roof-plane (u, v) coordinates, knows which of its elements
are valid for placement, and can map each element to the DSM cell that
provides its shading information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..constants import DEFAULT_GRID_PITCH
from ..errors import GISError
from ..geometry import Point2D, RoofPlaneFrame
from .dsm import DigitalSurfaceModel
from .synthetic import RoofScene


@dataclass
class RoofGrid:
    """The virtual placement grid of a roof facet.

    Attributes
    ----------
    frame:
        Roof-plane coordinate frame (maps grid coordinates to world space).
    pitch:
        Grid element side ``s`` [m], measured on the roof plane.
    n_rows, n_cols:
        Grid dimensions: columns run along the eave (u axis, "W" in the
        paper's Table I), rows run up the slope (v axis, "L"/"H").
    valid_mask:
        Boolean array ``(n_rows, n_cols)``; True marks elements available
        for module placement (the paper's ``Ng`` valid grid elements).
    """

    frame: RoofPlaneFrame
    pitch: float
    n_rows: int
    n_cols: int
    valid_mask: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.pitch <= 0:
            raise GISError("grid pitch must be positive")
        if self.n_rows <= 0 or self.n_cols <= 0:
            raise GISError("grid dimensions must be positive")
        mask = np.asarray(self.valid_mask, dtype=bool)
        if mask.shape != (self.n_rows, self.n_cols):
            raise GISError(
                f"valid_mask shape {mask.shape} does not match grid "
                f"({self.n_rows}, {self.n_cols})"
            )
        self.valid_mask = mask

    # -- sizes -------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape ``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def n_cells(self) -> int:
        """Total number of grid elements (W x H)."""
        return self.n_rows * self.n_cols

    @property
    def n_valid(self) -> int:
        """Number of valid grid elements (the paper's ``Ng``)."""
        return int(np.count_nonzero(self.valid_mask))

    @property
    def width_m(self) -> float:
        """Extent along the eave [m]."""
        return self.n_cols * self.pitch

    @property
    def depth_m(self) -> float:
        """Extent up the slope [m]."""
        return self.n_rows * self.pitch

    # -- coordinates --------------------------------------------------------------

    def cell_center_roof(self, row: int, col: int) -> Point2D:
        """Roof-plane coordinates (u, v) of the centre of element (row, col)."""
        self._check_index(row, col)
        return Point2D((col + 0.5) * self.pitch, (row + 0.5) * self.pitch)

    def cell_center_world(self, row: int, col: int):
        """World coordinates (x, y, z) of the centre of element (row, col)."""
        return self.frame.roof_to_world(self.cell_center_roof(row, col))

    def valid_cells(self) -> np.ndarray:
        """Indices of the valid elements as an ``(Ng, 2)`` array of (row, col)."""
        rows, cols = np.nonzero(self.valid_mask)
        return np.stack([rows, cols], axis=1)

    def is_valid(self, row: int, col: int) -> bool:
        """True when element (row, col) is inside the grid and usable."""
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            return False
        return bool(self.valid_mask[row, col])

    def _check_index(self, row: int, col: int) -> None:
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise GISError(f"grid index ({row}, {col}) outside grid {self.shape}")

    # -- DSM mapping ----------------------------------------------------------------

    def dsm_indices(self, dsm: DigitalSurfaceModel) -> Tuple[np.ndarray, np.ndarray]:
        """DSM (row, col) index of every grid element, shape ``(n_rows, n_cols)``.

        Grid elements whose world position falls outside the DSM are clamped
        to the nearest DSM border cell (this only happens for sub-pitch
        rounding at the raster edge).
        """
        u = (np.arange(self.n_cols) + 0.5) * self.pitch
        v = (np.arange(self.n_rows) + 0.5) * self.pitch
        grid_u, grid_v = np.meshgrid(u, v)

        axes_u, axes_v, _ = self.frame._axes()  # noqa: SLF001 - internal reuse
        world_x = self.frame.origin.x + grid_u * axes_u.x + grid_v * axes_v.x
        world_y = self.frame.origin.y + grid_u * axes_u.y + grid_v * axes_v.y

        spec = dsm.raster.spec
        cols = np.floor((world_x - spec.origin_x) / spec.pitch).astype(int)
        rows = np.floor((world_y - spec.origin_y) / spec.pitch).astype(int)
        cols = np.clip(cols, 0, spec.n_cols - 1)
        rows = np.clip(rows, 0, spec.n_rows - 1)
        return rows, cols

    # -- editing ---------------------------------------------------------------------

    def with_mask(self, mask: np.ndarray) -> "RoofGrid":
        """Return a copy of the grid with a different validity mask."""
        return RoofGrid(
            frame=self.frame,
            pitch=self.pitch,
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            valid_mask=np.asarray(mask, dtype=bool).copy(),
        )

    def invalidate_cells(self, cells: np.ndarray) -> "RoofGrid":
        """Return a copy with the listed (row, col) elements marked invalid."""
        mask = self.valid_mask.copy()
        cells_arr = np.asarray(cells, dtype=int).reshape(-1, 2)
        mask[cells_arr[:, 0], cells_arr[:, 1]] = False
        return self.with_mask(mask)


def make_roof_grid(
    scene: RoofScene,
    pitch: float = DEFAULT_GRID_PITCH,
    valid_mask: np.ndarray | None = None,
) -> RoofGrid:
    """Align the roof facet of ``scene`` to a virtual grid of side ``pitch``.

    The grid covers the full facet rectangle; the validity mask defaults to
    "everything valid" and is normally refined afterwards by
    :func:`repro.gis.suitable_area.compute_suitable_area`.
    """
    if pitch <= 0:
        raise GISError("grid pitch must be positive")
    n_cols = int(np.floor(scene.spec.width_m / pitch + 1e-9))
    n_rows = int(np.floor(scene.spec.depth_m / pitch + 1e-9))
    if n_cols < 1 or n_rows < 1:
        raise GISError("roof facet is smaller than a single grid element")
    if valid_mask is None:
        mask = np.ones((n_rows, n_cols), dtype=bool)
    else:
        mask = np.asarray(valid_mask, dtype=bool)
    return RoofGrid(
        frame=scene.frame, pitch=pitch, n_rows=n_rows, n_cols=n_cols, valid_mask=mask
    )
