"""Synthetic DSM / roof-scene generation.

The three industrial roofs of the paper come from a proprietary LiDAR DSM of
Turin that is not publicly available.  This module builds the closest
synthetic equivalent: a parametric lean-to roof of configurable size, tilt
and azimuth, standing on a flat terrain, populated with the typical roof
encumbrances the paper mentions (chimneys, dormers, pipe racks, antennas,
parapets) and optional adjacent structures that cast shadows onto it.

The generated :class:`RoofScene` bundles everything the downstream pipeline
needs: the DSM (for shading), the roof-plane frame (for the virtual grid),
the roof outline, and the obstacle footprints (for suitable-area masking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import GISError
from ..geometry import Point2D, Point3D, Polygon, Raster, RasterSpec, RoofPlaneFrame
from .dsm import DigitalSurfaceModel, ObstacleFootprint

# ---------------------------------------------------------------------------
# Obstacle factories (footprints are expressed in roof-plane coordinates)
# ---------------------------------------------------------------------------


def chimney(u: float, v: float, side_m: float = 0.8, height_m: float = 1.5) -> ObstacleFootprint:
    """A square masonry chimney."""
    half = side_m / 2.0
    return ObstacleFootprint(
        name="chimney",
        polygon=Polygon.rectangle(u - half, v - half, u + half, v + half),
        height_m=height_m,
        clearance_m=0.3,
    )


def dormer(
    u: float, v: float, width_m: float = 2.0, depth_m: float = 1.6, height_m: float = 1.8
) -> ObstacleFootprint:
    """A dormer window volume protruding from the roof plane."""
    return ObstacleFootprint(
        name="dormer",
        polygon=Polygon.rectangle(
            u - width_m / 2, v - depth_m / 2, u + width_m / 2, v + depth_m / 2
        ),
        height_m=height_m,
        clearance_m=0.4,
    )


def pipe_rack(
    u: float, v: float, length_m: float = 10.0, width_m: float = 1.6, height_m: float = 1.2
) -> ObstacleFootprint:
    """A run of service pipes on a raised rack (dominant encumbrance on Roof 1)."""
    return ObstacleFootprint(
        name="pipe_rack",
        polygon=Polygon.rectangle(u, v, u + length_m, v + width_m),
        height_m=height_m,
        clearance_m=0.4,
    )


def hvac_unit(u: float, v: float, side_m: float = 2.4, height_m: float = 1.6) -> ObstacleFootprint:
    """A rooftop HVAC / ventilation unit."""
    half = side_m / 2.0
    return ObstacleFootprint(
        name="hvac",
        polygon=Polygon.rectangle(u - half, v - half, u + half, v + half),
        height_m=height_m,
        clearance_m=0.4,
    )


def antenna(u: float, v: float, side_m: float = 0.3, height_m: float = 3.0) -> ObstacleFootprint:
    """A slender antenna mast (small footprint, long shadow)."""
    half = side_m / 2.0
    return ObstacleFootprint(
        name="antenna",
        polygon=Polygon.rectangle(u - half, v - half, u + half, v + half),
        height_m=height_m,
        clearance_m=0.2,
    )


def skylight_row(
    u: float, v: float, length_m: float = 6.0, width_m: float = 1.2, height_m: float = 0.5
) -> ObstacleFootprint:
    """A row of skylights: low, but panels cannot be installed over them."""
    return ObstacleFootprint(
        name="skylight",
        polygon=Polygon.rectangle(u, v, u + length_m, v + width_m),
        height_m=height_m,
        clearance_m=0.3,
    )


def vent(u: float, v: float, side_m: float = 0.4, height_m: float = 0.8) -> ObstacleFootprint:
    """A small vent pipe / exhaust stack (tiny footprint, noticeable shadow trail)."""
    half = side_m / 2.0
    return ObstacleFootprint(
        name="vent",
        polygon=Polygon.rectangle(u - half, v - half, u + half, v + half),
        height_m=height_m,
        clearance_m=0.2,
    )


def scattered_vents(
    width_m: float,
    depth_m: float,
    n_vents: int,
    seed: int = 0,
    margin_m: float = 1.0,
    height_range_m: Tuple[float, float] = (0.5, 1.1),
) -> Tuple[ObstacleFootprint, ...]:
    """Scatter small vent stacks over the roof.

    Industrial roofs carry dozens of small penetrations (exhausts, conduits,
    drains) whose shadow trails are what makes the fine-grain irradiance map
    of the paper's Figure 6(b) so mottled.  The vents are placed on a jittered
    grid so they spread over the whole facet instead of clustering.
    """
    if n_vents < 0:
        raise GISError("n_vents must be non-negative")
    if n_vents == 0:
        return ()
    rng = np.random.default_rng(seed)
    n_cols = int(np.ceil(np.sqrt(n_vents * width_m / max(depth_m, 1e-6))))
    n_rows = int(np.ceil(n_vents / max(n_cols, 1)))
    cell_w = (width_m - 2 * margin_m) / max(n_cols, 1)
    cell_d = (depth_m - 2 * margin_m) / max(n_rows, 1)
    vents = []
    for index in range(n_vents):
        grid_row = index // n_cols
        grid_col = index % n_cols
        u = margin_m + (grid_col + rng.uniform(0.2, 0.8)) * cell_w
        v = margin_m + (grid_row + rng.uniform(0.2, 0.8)) * cell_d
        height = float(rng.uniform(*height_range_m))
        side = float(rng.uniform(0.3, 0.5))
        vents.append(vent(float(u), float(v), side_m=side, height_m=height))
    return tuple(vents)


# ---------------------------------------------------------------------------
# Scene description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdjacentStructure:
    """A neighbouring volume that casts shadows but carries no panels.

    The footprint is expressed in *roof-plane* coordinates so structures can
    be conveniently anchored relative to the roof (e.g. a taller building
    section rising just beyond the high edge of the facet).  ``height_m`` is
    the height of the structure's top surface above the *roof origin*
    elevation (eave height).
    """

    name: str
    polygon: Polygon
    height_m: float


@dataclass(frozen=True)
class RoofSpec:
    """Parametric description of a lean-to roof facet and its surroundings."""

    name: str
    width_m: float
    depth_m: float
    tilt_deg: float
    azimuth_deg: float
    eave_height_m: float = 6.0
    edge_setback_m: float = 0.4
    obstacles: Tuple[ObstacleFootprint, ...] = ()
    adjacent_structures: Tuple[AdjacentStructure, ...] = ()
    surface_roughness_m: float = 0.0
    roughness_correlation_m: float = 2.0
    roughness_seed: int = 0

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.depth_m <= 0:
            raise GISError("roof width and depth must be positive")
        if not 0.0 <= self.tilt_deg < 90.0:
            raise GISError("roof tilt must be in [0, 90)")
        if self.edge_setback_m < 0:
            raise GISError("edge setback must be non-negative")
        if self.surface_roughness_m < 0:
            raise GISError("surface roughness must be non-negative")
        if self.roughness_correlation_m <= 0:
            raise GISError("roughness correlation length must be positive")

    @property
    def area_m2(self) -> float:
        """Area of the roof facet measured on the inclined plane [m^2]."""
        return self.width_m * self.depth_m


@dataclass(frozen=True)
class RoofScene:
    """A synthetic scene: DSM + roof frame + outline + obstacles."""

    spec: RoofSpec
    dsm: DigitalSurfaceModel
    frame: RoofPlaneFrame
    roof_polygon: Polygon
    obstacles: Tuple[ObstacleFootprint, ...] = ()

    @property
    def name(self) -> str:
        """Name of the underlying roof specification."""
        return self.spec.name


# ---------------------------------------------------------------------------
# Scene construction
# ---------------------------------------------------------------------------


def build_roof_scene(
    spec: RoofSpec,
    dsm_pitch: float = 0.4,
    margin_m: float = 8.0,
    ground_elevation: float = 0.0,
) -> RoofScene:
    """Rasterise a :class:`RoofSpec` into a DSM and assemble the scene.

    Parameters
    ----------
    spec:
        Roof description (size, tilt, azimuth, obstacles, neighbours).
    dsm_pitch:
        DSM cell size [m].  0.4 m resolves all obstacle footprints used by
        the case studies while keeping horizon-map computation fast; the
        virtual placement grid keeps its own (finer) pitch.
    margin_m:
        Flat terrain margin added around the building footprint so shadows
        of adjacent structures are fully contained in the raster.
    ground_elevation:
        Elevation of the surrounding terrain [m].
    """
    if dsm_pitch <= 0:
        raise GISError("dsm_pitch must be positive")
    if margin_m < 0:
        raise GISError("margin_m must be non-negative")

    frame = RoofPlaneFrame(
        origin=Point3D(0.0, 0.0, spec.eave_height_m),
        azimuth_deg=spec.azimuth_deg,
        tilt_deg=spec.tilt_deg,
    )

    roof_polygon = Polygon.rectangle(0.0, 0.0, spec.width_m, spec.depth_m)

    # World-space footprints (horizontal projections).
    roof_world = _roof_polygon_to_world(roof_polygon, frame)
    obstacle_world = [
        (_roof_polygon_to_world(obstacle.polygon, frame), obstacle.height_m)
        for obstacle in spec.obstacles
    ]
    adjacent_world = [
        (_roof_polygon_to_world(structure.polygon, frame), structure.height_m)
        for structure in spec.adjacent_structures
    ]

    # Raster extent: bounding box of everything plus the margin.
    all_polygons = [roof_world] + [p for p, _ in obstacle_world] + [p for p, _ in adjacent_world]
    xs = [v.x for poly in all_polygons for v in poly.vertices]
    ys = [v.y for poly in all_polygons for v in poly.vertices]
    xmin, xmax = min(xs) - margin_m, max(xs) + margin_m
    ymin, ymax = min(ys) - margin_m, max(ys) + margin_m

    n_cols = int(np.ceil((xmax - xmin) / dsm_pitch))
    n_rows = int(np.ceil((ymax - ymin) / dsm_pitch))
    raster_spec = RasterSpec(xmin, ymin, dsm_pitch, n_rows, n_cols)
    elevation = np.full((n_rows, n_cols), float(ground_elevation))

    # Cell centres (vectorised containment via per-polygon rasterisation).
    origin = Point2D(xmin, ymin)

    # 1. Roof surface (optionally textured with LiDAR-like roughness: ducts,
    #    conduits, roofing seams -- the fine-grain structure a real DSM shows).
    roof_mask = roof_world.rasterize(origin, dsm_pitch, n_cols, n_rows, mode="center")
    roof_heights = _roof_surface_elevation(raster_spec, frame)
    if spec.surface_roughness_m > 0:
        roof_heights = roof_heights + _correlated_roughness(
            raster_spec,
            amplitude_m=spec.surface_roughness_m,
            correlation_m=spec.roughness_correlation_m,
            seed=spec.roughness_seed,
        )
    elevation = np.where(roof_mask, np.maximum(elevation, roof_heights), elevation)

    # 2. Obstacles standing on the roof.
    for polygon, height in obstacle_world:
        mask = polygon.rasterize(origin, dsm_pitch, n_cols, n_rows, mode="touch")
        elevation = np.where(mask, np.maximum(elevation, roof_heights + height), elevation)

    # 3. Adjacent structures (prisms referenced to the eave elevation).
    for polygon, height in adjacent_world:
        mask = polygon.rasterize(origin, dsm_pitch, n_cols, n_rows, mode="touch")
        elevation = np.where(
            mask, np.maximum(elevation, spec.eave_height_m + height), elevation
        )

    dsm = DigitalSurfaceModel(Raster(raster_spec, elevation))
    return RoofScene(
        spec=spec,
        dsm=dsm,
        frame=frame,
        roof_polygon=roof_polygon,
        obstacles=tuple(spec.obstacles),
    )


def _roof_polygon_to_world(polygon: Polygon, frame: RoofPlaneFrame) -> Polygon:
    """Horizontal projection of a roof-plane polygon into world coordinates."""
    return Polygon(
        [frame.roof_to_world(vertex).horizontal() for vertex in polygon.vertices]
    )


def _correlated_roughness(
    spec: RasterSpec, amplitude_m: float, correlation_m: float, seed: int
) -> np.ndarray:
    """Spatially correlated height texture added to the roof surface.

    A coarse random lattice with the requested correlation length is
    bilinearly up-sampled to the DSM grid and a small cell-level jitter is
    superimposed; the result is scaled so its standard deviation equals
    ``amplitude_m``.  This mimics both the roofing equipment too small to be
    modelled explicitly (ducts, conduits, seams) and LiDAR measurement noise.
    """
    rng = np.random.default_rng(seed)
    coarse_pitch = max(correlation_m, spec.pitch)
    coarse_cols = max(2, int(np.ceil(spec.width / coarse_pitch)) + 1)
    coarse_rows = max(2, int(np.ceil(spec.height / coarse_pitch)) + 1)
    coarse = rng.normal(0.0, 1.0, size=(coarse_rows, coarse_cols))

    rows = np.arange(spec.n_rows) * spec.pitch / coarse_pitch
    cols = np.arange(spec.n_cols) * spec.pitch / coarse_pitch
    row0 = np.clip(np.floor(rows).astype(int), 0, coarse_rows - 2)
    col0 = np.clip(np.floor(cols).astype(int), 0, coarse_cols - 2)
    tr = (rows - row0)[:, None]
    tc = (cols - col0)[None, :]
    r0 = row0[:, None]
    c0 = col0[None, :]
    smooth = (
        coarse[r0, c0] * (1 - tr) * (1 - tc)
        + coarse[r0, c0 + 1] * (1 - tr) * tc
        + coarse[r0 + 1, c0] * tr * (1 - tc)
        + coarse[r0 + 1, c0 + 1] * tr * tc
    )
    jitter = rng.normal(0.0, 0.35, size=(spec.n_rows, spec.n_cols))
    texture = smooth + jitter
    std = float(np.std(texture))
    if std < 1e-12:
        return np.zeros((spec.n_rows, spec.n_cols))
    return texture / std * amplitude_m


def _roof_surface_elevation(spec: RasterSpec, frame: RoofPlaneFrame) -> np.ndarray:
    """Elevation of the roof plane evaluated at every DSM cell centre."""
    cols = np.arange(spec.n_cols)
    rows = np.arange(spec.n_rows)
    x = spec.origin_x + (cols + 0.5) * spec.pitch
    y = spec.origin_y + (rows + 0.5) * spec.pitch
    grid_x, grid_y = np.meshgrid(x, y)

    normal = frame.normal
    origin = frame.origin
    if abs(normal.z) < 1e-9:
        raise GISError("roof plane is vertical; cannot express elevation as z(x, y)")
    return origin.z - (
        normal.x * (grid_x - origin.x) + normal.y * (grid_y - origin.y)
    ) / normal.z


# ---------------------------------------------------------------------------
# Convenience generators
# ---------------------------------------------------------------------------


def random_obstacle_set(
    width_m: float,
    depth_m: float,
    n_obstacles: int,
    seed: int = 0,
) -> Tuple[ObstacleFootprint, ...]:
    """Scatter a plausible mix of obstacles over a roof of the given size."""
    if n_obstacles < 0:
        raise GISError("n_obstacles must be non-negative")
    rng = np.random.default_rng(seed)
    factories = (chimney, hvac_unit, antenna, dormer)
    obstacles = []
    for _ in range(n_obstacles):
        factory = factories[rng.integers(0, len(factories))]
        u = float(rng.uniform(1.5, max(width_m - 1.5, 1.6)))
        v = float(rng.uniform(1.0, max(depth_m - 1.0, 1.1)))
        obstacles.append(factory(u, v))
    return tuple(obstacles)


def simple_residential_roof(
    name: str = "residential",
    width_m: float = 10.0,
    depth_m: float = 6.0,
    tilt_deg: float = 30.0,
    azimuth_deg: float = 0.0,
    n_obstacles: int = 2,
    seed: int = 0,
) -> RoofSpec:
    """A small residential roof spec used by examples and tests."""
    return RoofSpec(
        name=name,
        width_m=width_m,
        depth_m=depth_m,
        tilt_deg=tilt_deg,
        azimuth_deg=azimuth_deg,
        eave_height_m=5.0,
        obstacles=random_obstacle_set(width_m, depth_m, n_obstacles, seed),
    )
