"""Solver registry: every floorplanning algorithm selectable by name.

The seed code base hardcoded the greedy-vs-traditional pair in
:func:`repro.plan_roof` and in the experiment drivers.  The registry makes
all four placement algorithms (and any future one registered through
:func:`register_solver`) addressable by a plain string, which is what the
scenario specifications, the batch runner, the CLI and the experiment
drivers use to select a solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional

from ..core.exhaustive import ExhaustiveConfig, exhaustive_floorplan
from ..core.greedy import GreedyConfig, greedy_floorplan
from ..core.ilp import ILPConfig, ilp_floorplan
from ..core.placement import Placement
from ..core.problem import FloorplanProblem
from ..core.suitability import SuitabilityMap
from ..core.traditional import TraditionalConfig, traditional_floorplan
from ..errors import ConfigurationError
from ..telemetry import span


@dataclass(frozen=True)
class SolverOutcome:
    """Normalised result of any registered solver.

    Solver-specific figures (``strategy``, ``relaxed_threshold_count``,
    ``objective_value``, ...) live in :attr:`info`; they are also reachable
    as plain attributes for compatibility with the per-solver result types
    (``GreedyResult``, ``TraditionalResult``, ...) this class replaced at
    the ``plan_roof`` / experiment-driver level.
    """

    solver: str
    placement: Placement
    suitability: Optional[SuitabilityMap]
    runtime_s: float
    info: Dict[str, Any]

    def __getattr__(self, name: str) -> Any:
        info = object.__getattribute__(self, "info")
        if name in info:
            return info[name]
        raise AttributeError(
            f"{type(self).__name__} from solver "
            f"{object.__getattribute__(self, 'solver')!r} has no attribute {name!r}"
        )


#: A solver adapter: problem + options (+ an optional precomputed
#: suitability map to share across solvers) -> normalised outcome.
SolverFn = Callable[
    [FloorplanProblem, Mapping[str, Any], Optional[SuitabilityMap]], SolverOutcome
]

_REGISTRY: Dict[str, SolverFn] = {}


def register_solver(name: str, solver: SolverFn, overwrite: bool = False) -> None:
    """Register a solver adapter under ``name`` (lower-cased)."""
    key = name.lower()
    if not key:
        raise ConfigurationError("solver name must be non-empty")
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"solver {name!r} is already registered")
    _REGISTRY[key] = solver


def get_solver(name: str) -> SolverFn:
    """Look up a registered solver adapter."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown solver {name!r}; known: {known}") from exc


def available_solvers() -> list:
    """Names of the registered solvers, sorted."""
    return sorted(_REGISTRY)


def solve(
    problem: FloorplanProblem,
    solver: str = "greedy",
    options: Optional[Mapping[str, Any]] = None,
    suitability: Optional[SuitabilityMap] = None,
) -> SolverOutcome:
    """Run the named solver on a problem instance."""
    solver_fn = get_solver(solver)
    with span(f"solver.{solver.lower()}", n_modules=problem.n_modules) as solver_span:
        outcome = solver_fn(problem, dict(options or {}), suitability)
        if solver_span.active:
            solver_span.set(
                runtime_s=round(outcome.runtime_s, 6),
                **{
                    key: value
                    for key, value in outcome.info.items()
                    if isinstance(value, (bool, int, float, str))
                },
            )
        return outcome


def _build_config(config_cls, options: Mapping[str, Any], solver: str):
    try:
        return config_cls(**dict(options))
    except TypeError as exc:
        raise ConfigurationError(f"invalid options for solver {solver!r}: {exc}") from exc


def _greedy(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(GreedyConfig, options, "greedy")
    result = greedy_floorplan(problem, suitability=suitability, config=config)
    return SolverOutcome(
        solver="greedy",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={"relaxed_threshold_count": result.relaxed_threshold_count},
    )


def _traditional(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(TraditionalConfig, options, "traditional")
    result = traditional_floorplan(problem, suitability=suitability, config=config)
    return SolverOutcome(
        solver="traditional",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={"strategy": result.strategy},
    )


def _ilp(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(ILPConfig, options, "ilp")
    result = ilp_floorplan(problem, suitability=suitability, config=config)
    return SolverOutcome(
        solver="ilp",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={
            "objective_value": result.objective_value,
            "solver_status": result.solver_status,
        },
    )


def _exhaustive(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(ExhaustiveConfig, options, "exhaustive")
    result = exhaustive_floorplan(problem, config=config)
    return SolverOutcome(
        solver="exhaustive",
        placement=result.placement,
        suitability=suitability,
        runtime_s=result.runtime_s,
        info={
            "best_energy_wh": result.best_energy_wh,
            "n_combinations_evaluated": result.n_combinations_evaluated,
        },
    )


register_solver("greedy", _greedy)
register_solver("traditional", _traditional)
register_solver("ilp", _ilp)
register_solver("exhaustive", _exhaustive)
