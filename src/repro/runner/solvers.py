"""Solver registry: every floorplanning algorithm selectable by name.

The seed code base hardcoded the greedy-vs-traditional pair in
:func:`repro.plan_roof` and in the experiment drivers.  The registry makes
all four placement algorithms (and any future one registered through
:func:`register_solver`) addressable by a plain string, which is what the
scenario specifications, the batch runner, the CLI and the experiment
drivers use to select a solver.

Fallback chains
---------------
:func:`solve_with_fallback` runs a declarative degradation chain (e.g.
``ilp -> greedy``): when a solver raises -- an infeasible ILP, a solver
library crash, an injected transient fault -- or the chain's wall-clock
budget runs out before an entry starts, the next (cheaper) solver in the
chain is tried.  The result carries explicit provenance (``degraded``,
``fallback_solver``, the abandoned attempts' errors) so reports and
``campaign status`` always distinguish an exact answer from a best-effort
one.  A remaining budget is threaded into the ILP's own ``time_limit_s``,
so an exact solver degrades by *stopping*, not by being killed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from .. import faults
from ..core.exhaustive import ExhaustiveConfig, exhaustive_floorplan
from ..core.greedy import GreedyConfig, greedy_floorplan
from ..core.ilp import ILPConfig, ilp_floorplan
from ..core.placement import Placement
from ..core.problem import FloorplanProblem
from ..core.suitability import SuitabilityMap
from ..core.traditional import TraditionalConfig, traditional_floorplan
from ..errors import ConfigurationError
from ..telemetry import span, trace_event


@dataclass(frozen=True)
class SolverOutcome:
    """Normalised result of any registered solver.

    Solver-specific figures (``strategy``, ``relaxed_threshold_count``,
    ``objective_value``, ...) live in :attr:`info`; they are also reachable
    as plain attributes for compatibility with the per-solver result types
    (``GreedyResult``, ``TraditionalResult``, ...) this class replaced at
    the ``plan_roof`` / experiment-driver level.
    """

    solver: str
    placement: Placement
    suitability: Optional[SuitabilityMap]
    runtime_s: float
    info: Dict[str, Any]

    def __getattr__(self, name: str) -> Any:
        info = object.__getattribute__(self, "info")
        if name in info:
            return info[name]
        raise AttributeError(
            f"{type(self).__name__} from solver "
            f"{object.__getattribute__(self, 'solver')!r} has no attribute {name!r}"
        )


#: A solver adapter: problem + options (+ an optional precomputed
#: suitability map to share across solvers) -> normalised outcome.
SolverFn = Callable[
    [FloorplanProblem, Mapping[str, Any], Optional[SuitabilityMap]], SolverOutcome
]

_REGISTRY: Dict[str, SolverFn] = {}


def register_solver(name: str, solver: SolverFn, overwrite: bool = False) -> None:
    """Register a solver adapter under ``name`` (lower-cased)."""
    key = name.lower()
    if not key:
        raise ConfigurationError("solver name must be non-empty")
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"solver {name!r} is already registered")
    _REGISTRY[key] = solver


def get_solver(name: str) -> SolverFn:
    """Look up a registered solver adapter."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown solver {name!r}; known: {known}") from exc


def available_solvers() -> list:
    """Names of the registered solvers, sorted."""
    return sorted(_REGISTRY)


def solve(
    problem: FloorplanProblem,
    solver: str = "greedy",
    options: Optional[Mapping[str, Any]] = None,
    suitability: Optional[SuitabilityMap] = None,
) -> SolverOutcome:
    """Run the named solver on a problem instance."""
    solver_fn = get_solver(solver)
    with span(f"solver.{solver.lower()}", n_modules=problem.n_modules) as solver_span:
        # Chaos hook: an armed ``solver.error`` injector raises here, inside
        # the solver span, exactly where a real solver-library crash would.
        faults.fire("solver.error", key=f"{problem.label}:{solver.lower()}")
        outcome = solver_fn(problem, dict(options or {}), suitability)
        if solver_span.active:
            solver_span.set(
                runtime_s=round(outcome.runtime_s, 6),
                **{
                    key: value
                    for key, value in outcome.info.items()
                    if isinstance(value, (bool, int, float, str))
                },
            )
        return outcome


@dataclass(frozen=True)
class FallbackOutcome:
    """A solver-chain result with explicit degradation provenance.

    ``degraded`` is True when the answer came from a fallback entry rather
    than the configured solver; ``fallback_solver`` then names it, and
    ``failures`` records why each abandoned entry was given up on (one
    human-readable line per attempt), so a best-effort point can never
    masquerade as an exact one.
    """

    outcome: SolverOutcome
    degraded: bool = False
    fallback_solver: Optional[str] = None
    failures: Tuple[str, ...] = ()


def solve_with_fallback(
    problem: FloorplanProblem,
    solver: str = "greedy",
    options: Optional[Mapping[str, Any]] = None,
    suitability: Optional[SuitabilityMap] = None,
    fallback: Sequence[str] = (),
    budget_s: Optional[float] = None,
) -> FallbackOutcome:
    """Run a solver chain, degrading to cheaper entries on error or budget.

    Parameters
    ----------
    solver / options:
        The configured (primary) solver and its options.  Fallback entries
        run with empty options -- their configuration cannot be implied
        from the primary's.
    fallback:
        Solver names tried in order after the primary fails.
    budget_s:
        Wall-clock budget over the whole chain.  An entry whose turn comes
        after the budget is exhausted is skipped (the *last* entry always
        runs -- graceful degradation must produce an answer), and the
        remaining budget is threaded into the ILP's ``time_limit_s`` so an
        exact solve stops at the boundary instead of overshooting it.

    Raises the last entry's error when every entry fails; a
    :class:`~repro.errors.ConfigurationError` (unknown solver, bad
    options) always propagates immediately -- a typo must fail loudly,
    not silently degrade.
    """
    chain = [solver, *fallback]
    failures: list = []
    start = time.perf_counter()
    for position, name in enumerate(chain):
        get_solver(name)  # unknown names fail loudly even mid-chain
        last = position == len(chain) - 1
        opts = dict(options or {}) if position == 0 else {}
        if budget_s is not None:
            remaining = budget_s - (time.perf_counter() - start)
            if remaining <= 0 and not last:
                failures.append(
                    f"{name}: skipped (chain budget {budget_s:g}s exhausted)"
                )
                continue
            if name.lower() == "ilp" and remaining > 0:
                opts.setdefault("time_limit_s", max(remaining, 0.1))
        try:
            outcome = solve(problem, name, opts, suitability)
        except ConfigurationError:
            raise
        except Exception as exc:
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
            if last:
                raise
            trace_event(
                "solver.fallback",
                solver=name,
                next=chain[position + 1],
                error=f"{type(exc).__name__}: {exc}",
            )
            continue
        return FallbackOutcome(
            outcome=outcome,
            degraded=position > 0,
            fallback_solver=name if position > 0 else None,
            failures=tuple(failures),
        )
    raise ConfigurationError(
        f"solver chain {chain!r} produced no outcome"
    )  # pragma: no cover - unreachable: the last entry returns or raises


def _build_config(config_cls, options: Mapping[str, Any], solver: str):
    try:
        return config_cls(**dict(options))
    except TypeError as exc:
        raise ConfigurationError(f"invalid options for solver {solver!r}: {exc}") from exc


def _greedy(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(GreedyConfig, options, "greedy")
    result = greedy_floorplan(problem, suitability=suitability, config=config)
    return SolverOutcome(
        solver="greedy",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={"relaxed_threshold_count": result.relaxed_threshold_count},
    )


def _traditional(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(TraditionalConfig, options, "traditional")
    result = traditional_floorplan(problem, suitability=suitability, config=config)
    return SolverOutcome(
        solver="traditional",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={"strategy": result.strategy},
    )


def _ilp(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(ILPConfig, options, "ilp")
    result = ilp_floorplan(problem, suitability=suitability, config=config)
    return SolverOutcome(
        solver="ilp",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={
            "objective_value": result.objective_value,
            "solver_status": result.solver_status,
        },
    )


def _exhaustive(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(ExhaustiveConfig, options, "exhaustive")
    result = exhaustive_floorplan(problem, config=config)
    return SolverOutcome(
        solver="exhaustive",
        placement=result.placement,
        suitability=suitability,
        runtime_s=result.runtime_s,
        info={
            "best_energy_wh": result.best_energy_wh,
            "n_combinations_evaluated": result.n_combinations_evaluated,
        },
    )


register_solver("greedy", _greedy)
register_solver("traditional", _traditional)
register_solver("ilp", _ilp)
register_solver("exhaustive", _exhaustive)
