"""Solver registry: every floorplanning algorithm selectable by name.

The seed code base hardcoded the greedy-vs-traditional pair in
:func:`repro.plan_roof` and in the experiment drivers.  The registry makes
all four placement algorithms (and any future one registered through
:func:`register_solver`) addressable by a plain string, which is what the
scenario specifications, the batch runner, the CLI and the experiment
drivers use to select a solver.

Fallback chains
---------------
:func:`solve_with_fallback` runs a declarative degradation chain (e.g.
``ilp -> greedy``): when a solver raises -- an infeasible ILP, a solver
library crash, an injected transient fault -- or the chain's wall-clock
budget runs out before an entry starts, the next (cheaper) solver in the
chain is tried.  The result carries explicit provenance (``degraded``,
``fallback_solver``, the abandoned attempts' errors) so reports and
``campaign status`` always distinguish an exact answer from a best-effort
one.  A remaining budget is threaded into any chain entry that *declares*
budget support (its registration names the config option receiving the
seconds -- ``time_limit_s`` for the ILP), so an anytime solver degrades by
*stopping*, not by being killed.

Warm starts
-----------
:func:`solve` accepts an optional :class:`WarmStart` -- a neighbouring
instance's placement plus provenance flags -- and forwards it to solvers
whose registration declares ``supports_warm_start``.  The greedy placer
resumes from the hint when it is its own solution prefix (the sweep layer
sets ``exact_prefix`` when only ``n_modules`` grew between neighbour and
point); the ILP uses the hint as a feasible incumbent (objective cutoff +
best-so-far answer on timeout).  Solvers without warm-start support simply
never see the hint, so passing one is always safe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from .. import faults
from ..core.exhaustive import ExhaustiveConfig, exhaustive_floorplan
from ..core.greedy import GreedyConfig, greedy_floorplan
from ..core.ilp import ILPConfig, ilp_floorplan
from ..core.placement import Placement
from ..core.problem import FloorplanProblem
from ..core.suitability import SuitabilityMap
from ..core.traditional import TraditionalConfig, traditional_floorplan
from ..errors import ConfigurationError
from ..telemetry import span, trace_event


@dataclass(frozen=True)
class WarmStart:
    """A neighbouring instance's solution offered as a solver starting point.

    ``placement`` is the neighbour's full placement.  ``exact_prefix`` is a
    promise by the *caller* that the hint is this very problem's own optimal
    greedy prefix -- the hinted instance differed only by a smaller
    ``n_modules`` -- which is what allows the greedy placer to replay it
    verbatim and still match a cold solve module for module.  Without the
    flag the hint is advisory only: solvers may use it as a feasible
    incumbent (the ILP does) but never as trusted structure.  ``source``
    carries provenance (the neighbour point's name or digest) into traces.
    """

    placement: Placement
    exact_prefix: bool = False
    source: Optional[str] = None


@dataclass(frozen=True)
class SolverOutcome:
    """Normalised result of any registered solver.

    Solver-specific figures (``strategy``, ``relaxed_threshold_count``,
    ``objective_value``, ...) live in :attr:`info`; they are also reachable
    as plain attributes for compatibility with the per-solver result types
    (``GreedyResult``, ``TraditionalResult``, ...) this class replaced at
    the ``plan_roof`` / experiment-driver level.

    ``gap`` is the solver-reported relative optimality gap (0.0 = proven
    optimal under the solver's own objective, ``None`` = the solver does
    not report one -- heuristics never do).  ``warm_started`` records
    whether a :class:`WarmStart` hint actually contributed to this answer
    (a hint that failed validation leaves it False).
    """

    solver: str
    placement: Placement
    suitability: Optional[SuitabilityMap]
    runtime_s: float
    info: Dict[str, Any]
    gap: Optional[float] = None
    warm_started: bool = False

    def __getattr__(self, name: str) -> Any:
        info = object.__getattribute__(self, "info")
        if name in info:
            return info[name]
        raise AttributeError(
            f"{type(self).__name__} from solver "
            f"{object.__getattribute__(self, 'solver')!r} has no attribute {name!r}"
        )


#: A solver adapter: problem + options (+ an optional precomputed
#: suitability map to share across solvers) -> normalised outcome.
#: Adapters registered with ``supports_warm_start=True`` take a fourth
#: positional argument, the optional :class:`WarmStart` hint; plain
#: three-argument adapters keep working unchanged.
SolverFn = Callable[..., SolverOutcome]


@dataclass(frozen=True)
class SolverEntry:
    """One registry entry: the adapter plus its declared capabilities.

    ``supports_warm_start`` gates whether :func:`solve` forwards a
    :class:`WarmStart` hint to the adapter.  ``budget_option`` names the
    solver-config option that receives a remaining wall-clock budget in
    seconds (``None`` = the solver is not anytime); :func:`solve` and
    :func:`solve_with_fallback` thread budgets through it generically, so
    a new anytime solver only has to declare the option name.
    """

    name: str
    fn: SolverFn
    supports_warm_start: bool = False
    budget_option: Optional[str] = None

    @property
    def supports_budget(self) -> bool:
        """Whether the solver accepts a wall-clock budget."""
        return self.budget_option is not None


_REGISTRY: Dict[str, SolverEntry] = {}


def register_solver(
    name: str,
    solver: SolverFn,
    overwrite: bool = False,
    supports_warm_start: bool = False,
    budget_option: Optional[str] = None,
) -> None:
    """Register a solver adapter under ``name`` (lower-cased).

    ``supports_warm_start`` and ``budget_option`` declare the adapter's
    capabilities (see :class:`SolverEntry`); leaving them unset registers a
    plain cold-start solver, which is always safe.
    """
    key = name.lower()
    if not key:
        raise ConfigurationError("solver name must be non-empty")
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"solver {name!r} is already registered")
    _REGISTRY[key] = SolverEntry(
        name=key,
        fn=solver,
        supports_warm_start=supports_warm_start,
        budget_option=budget_option,
    )


def get_solver_entry(name: str) -> SolverEntry:
    """Look up a registered solver entry (adapter + capabilities)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown solver {name!r}; known: {known}") from exc


def get_solver(name: str) -> SolverFn:
    """Look up a registered solver adapter."""
    return get_solver_entry(name).fn


def available_solvers() -> list:
    """Names of the registered solvers, sorted."""
    return sorted(_REGISTRY)


def solve(
    problem: FloorplanProblem,
    solver: str = "greedy",
    options: Optional[Mapping[str, Any]] = None,
    suitability: Optional[SuitabilityMap] = None,
    warm_start: Optional[WarmStart] = None,
    budget_s: Optional[float] = None,
) -> SolverOutcome:
    """Run the named solver on a problem instance.

    ``warm_start`` is forwarded only to solvers that declare warm-start
    support; ``budget_s`` is threaded into the solver's declared budget
    option (e.g. the ILP's ``time_limit_s``) and silently dropped for
    solvers without one -- heuristics that always terminate fast need no
    budget plumbing.  An explicit option set by the caller wins over the
    threaded budget.
    """
    entry = get_solver_entry(solver)
    opts = dict(options or {})
    if budget_s is not None and entry.supports_budget:
        opts.setdefault(entry.budget_option, max(float(budget_s), 0.1))
    hint = warm_start if entry.supports_warm_start else None
    with span(f"solver.{entry.name}", n_modules=problem.n_modules) as solver_span:
        # Chaos hook: an armed ``solver.error`` injector raises here, inside
        # the solver span, exactly where a real solver-library crash would.
        faults.fire("solver.error", key=f"{problem.label}:{entry.name}")
        # The hint argument is part of the warm-start capability contract:
        # only declared-capable adapters receive it, so pre-existing
        # three-argument solvers keep working unchanged.
        if entry.supports_warm_start:
            outcome = entry.fn(problem, opts, suitability, hint)
        else:
            outcome = entry.fn(problem, opts, suitability)
        if solver_span.active:
            solver_span.set(
                runtime_s=round(outcome.runtime_s, 6),
                warm_started=outcome.warm_started,
                **{
                    key: value
                    for key, value in outcome.info.items()
                    if isinstance(value, (bool, int, float, str))
                },
            )
            if outcome.gap is not None:
                solver_span.set(gap=round(outcome.gap, 9))
        return outcome


@dataclass(frozen=True)
class FallbackOutcome:
    """A solver-chain result with explicit degradation provenance.

    ``degraded`` is True when the answer came from a fallback entry rather
    than the configured solver; ``fallback_solver`` then names it, and
    ``failures`` records why each abandoned entry was given up on (one
    human-readable line per attempt), so a best-effort point can never
    masquerade as an exact one.
    """

    outcome: SolverOutcome
    degraded: bool = False
    fallback_solver: Optional[str] = None
    failures: Tuple[str, ...] = ()


def solve_with_fallback(
    problem: FloorplanProblem,
    solver: str = "greedy",
    options: Optional[Mapping[str, Any]] = None,
    suitability: Optional[SuitabilityMap] = None,
    fallback: Sequence[str] = (),
    budget_s: Optional[float] = None,
    warm_start: Optional[WarmStart] = None,
) -> FallbackOutcome:
    """Run a solver chain, degrading to cheaper entries on error or budget.

    Parameters
    ----------
    solver / options:
        The configured (primary) solver and its options.  Fallback entries
        run with empty options -- their configuration cannot be implied
        from the primary's.
    fallback:
        Solver names tried in order after the primary fails.
    budget_s:
        Wall-clock budget over the whole chain.  An entry whose turn comes
        after the budget is exhausted is skipped (the *last* entry always
        runs -- graceful degradation must produce an answer), and the
        remaining budget is threaded into the declared budget option of
        any entry that supports one (the ILP's ``time_limit_s``), so an
        anytime solve stops at the boundary instead of overshooting it.
    warm_start:
        Optional placement hint forwarded to every chain entry; entries
        without declared warm-start support never see it.

    Raises the last entry's error when every entry fails; a
    :class:`~repro.errors.ConfigurationError` (unknown solver, bad
    options) always propagates immediately -- a typo must fail loudly,
    not silently degrade.
    """
    chain = [solver, *fallback]
    failures: list = []
    start = time.perf_counter()
    for position, name in enumerate(chain):
        get_solver_entry(name)  # unknown names fail loudly even mid-chain
        last = position == len(chain) - 1
        opts = dict(options or {}) if position == 0 else {}
        remaining_s: Optional[float] = None
        if budget_s is not None:
            remaining = budget_s - (time.perf_counter() - start)
            if remaining <= 0 and not last:
                failures.append(
                    f"{name}: skipped (chain budget {budget_s:g}s exhausted)"
                )
                continue
            if remaining > 0:
                remaining_s = remaining
        try:
            outcome = solve(
                problem,
                name,
                opts,
                suitability,
                warm_start=warm_start,
                budget_s=remaining_s,
            )
        except ConfigurationError:
            raise
        except Exception as exc:
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
            if last:
                raise
            trace_event(
                "solver.fallback",
                solver=name,
                next=chain[position + 1],
                error=f"{type(exc).__name__}: {exc}",
            )
            continue
        return FallbackOutcome(
            outcome=outcome,
            degraded=position > 0,
            fallback_solver=name if position > 0 else None,
            failures=tuple(failures),
        )
    raise ConfigurationError(
        f"solver chain {chain!r} produced no outcome"
    )  # pragma: no cover - unreachable: the last entry returns or raises


def _build_config(config_cls, options: Mapping[str, Any], solver: str):
    try:
        return config_cls(**dict(options))
    except TypeError as exc:
        raise ConfigurationError(f"invalid options for solver {solver!r}: {exc}") from exc


def _greedy(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
    warm_start: Optional[WarmStart] = None,
) -> SolverOutcome:
    config = _build_config(GreedyConfig, options, "greedy")
    result = greedy_floorplan(
        problem, suitability=suitability, config=config, warm_start=warm_start
    )
    return SolverOutcome(
        solver="greedy",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={
            "relaxed_threshold_count": result.relaxed_threshold_count,
            "warm_modules": result.warm_modules,
        },
        warm_started=result.warm_modules > 0,
    )


def _traditional(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(TraditionalConfig, options, "traditional")
    result = traditional_floorplan(problem, suitability=suitability, config=config)
    return SolverOutcome(
        solver="traditional",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={"strategy": result.strategy},
    )


def _ilp(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
    warm_start: Optional[WarmStart] = None,
) -> SolverOutcome:
    config = _build_config(ILPConfig, options, "ilp")
    result = ilp_floorplan(
        problem, suitability=suitability, config=config, warm_start=warm_start
    )
    return SolverOutcome(
        solver="ilp",
        placement=result.placement,
        suitability=result.suitability,
        runtime_s=result.runtime_s,
        info={
            "objective_value": result.objective_value,
            "solver_status": result.solver_status,
        },
        gap=result.gap,
        warm_started=result.warm_started,
    )


def _exhaustive(
    problem: FloorplanProblem,
    options: Mapping[str, Any],
    suitability: Optional[SuitabilityMap],
) -> SolverOutcome:
    config = _build_config(ExhaustiveConfig, options, "exhaustive")
    result = exhaustive_floorplan(problem, config=config)
    return SolverOutcome(
        solver="exhaustive",
        placement=result.placement,
        suitability=suitability,
        runtime_s=result.runtime_s,
        info={
            "best_energy_wh": result.best_energy_wh,
            "n_combinations_evaluated": result.n_combinations_evaluated,
        },
        gap=0.0,
    )


register_solver("greedy", _greedy, supports_warm_start=True)
register_solver("traditional", _traditional)
register_solver("ilp", _ilp, supports_warm_start=True, budget_option="time_limit_s")
register_solver("exhaustive", _exhaustive)
