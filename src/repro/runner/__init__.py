"""Cached staged pipeline, solver registry, batch execution, campaign store."""

from .batch import BatchResult, read_results_jsonl, run_batch, write_results_jsonl
from .cache import CacheStats, StageCache, content_digest, default_cache_dir, resolve_cache
from .store import (
    CampaignSummary,
    PointRecord,
    ResultStore,
    default_store_path,
    resolve_store,
)
from .solvers import (
    SolverOutcome,
    available_solvers,
    get_solver,
    register_solver,
    solve,
)
from .stages import (
    ScenarioResult,
    cached_horizon_map,
    cached_scene,
    cached_solar_field,
    cached_suitability,
    cached_suitable_grid,
    prepare_problem,
    run_scenario,
    scenario_content_digest,
    solar_config_payload,
    weather_content_key,
)

__all__ = [
    "CampaignSummary",
    "PointRecord",
    "ResultStore",
    "default_store_path",
    "resolve_store",
    "scenario_content_digest",
    "BatchResult",
    "read_results_jsonl",
    "run_batch",
    "write_results_jsonl",
    "CacheStats",
    "StageCache",
    "content_digest",
    "default_cache_dir",
    "resolve_cache",
    "SolverOutcome",
    "available_solvers",
    "get_solver",
    "register_solver",
    "solve",
    "ScenarioResult",
    "cached_horizon_map",
    "cached_scene",
    "cached_solar_field",
    "cached_suitability",
    "cached_suitable_grid",
    "prepare_problem",
    "run_scenario",
    "solar_config_payload",
    "weather_content_key",
]
