"""The campaign worker daemon: one member of a cooperative fleet.

``repro campaign worker <name>`` (or :func:`run_worker`) turns a process
into a fleet member that pulls points from a shared campaign store until
the queue drains.  N workers — across processes or hosts sharing the
store file — cooperate with no coordinator: the store *is* the queue, and
:meth:`~repro.runner.store.ResultStore.claim_next_pending` hands each
point to exactly one owner per attempt.

The loop per worker is claim → run → heartbeat → mark:

* **claim** — one atomic transaction takes the oldest ``pending`` row
  (``interactive``-priority rows — points enqueued by ``repro serve`` for
  a waiting caller — ahead of ``batch`` ones), or *adopts* a ``running``
  row whose heartbeat went stale (a sibling died mid-point; no separate
  reclaim step is needed on this path).
* **run** — the point executes through the same
  :func:`~repro.runner.batch.execute_point` path as every other driver.
  By default it runs in a single-process pool so the daemon can refresh
  its heartbeat mid-point and watchdog-kill a hung child
  (``timeout_s``); ``serial=True`` runs in-process, where the timeout is
  necessarily post hoc and no mid-point heartbeats are possible (keep
  ``stale_after_s`` comfortably above the longest point).
* **mark** — terminal writes are *fenced* on the worker still holding the
  lease (``require_owner``).  If a sibling adopted the point while we ran
  it — always possible after a stall — our late result is discarded and
  counted in ``lost_leases``.  Execution is therefore at-least-once, but
  completion-marking is at-most-once: no point ever reaches ``done``
  twice, and the merged results are identical to a serial run.

Failures honour the same per-point semantics as :func:`run_batch`:
``retries`` re-attempts with :func:`retry_backoff_delay`, ``timeout_s``
bounds each attempt, and a *crashed* child (the ``worker.crash`` chaos
site, an OOM kill) gets ``retries + 1`` free passes since the point's own
code never raised.  On SIGTERM/SIGINT the worker releases its in-flight
claim back to ``pending`` — a sibling picks it up immediately — and
returns its summary with ``stopped_by_signal`` set.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from .. import faults
from ..errors import ConfigurationError
from ..scenario.spec import ScenarioSpec
from ..telemetry import configure_from_env, merge_active_trace, span
from .batch import (
    WAIT_TICK_S,
    _point_error_message,
    _run_scenario_worker,
    _StopRequested,
    _terminate_worker_processes,
    _worker_init,
    _worker_payload,
    execute_point,
    retry_backoff_delay,
)
from .cache import PathLike, StageCache, resolve_cache
from .store import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STALE_AFTER_S,
    ClaimedPoint,
    ResultStore,
    default_lease_owner,
    default_store_path,
    resolve_store,
)

#: How long a worker sleeps between claim attempts while the queue is empty
#: but siblings still hold ``running`` rows (we wait to adopt their leases
#: should they die).
DEFAULT_POLL_S = 1.0


@dataclass
class WorkerSummary:
    """Accounting of one worker's participation in a campaign."""

    campaign: str
    worker_id: str
    claimed: int = 0
    #: Claims that adopted a stale sibling lease rather than a pending row.
    adopted: int = 0
    done: int = 0
    failed: int = 0
    timed_out: int = 0
    retried: int = 0
    #: In-flight points handed back to the queue on SIGTERM/SIGINT.
    released: int = 0
    #: Finished attempts discarded because a sibling adopted the lease
    #: mid-run -- the at-most-once fence in action.
    lost_leases: int = 0
    runtime_s: float = 0.0
    #: Signal number that stopped the worker, or ``None`` on drain/limit.
    stopped_by_signal: Optional[int] = None
    stage_hits: Dict[str, int] = field(default_factory=dict)
    stage_recomputes: Dict[str, int] = field(default_factory=dict)

    def report(self) -> str:
        """One-line human summary, ``repro campaign worker``'s last output."""
        text = (
            f"worker {self.worker_id!r}: claimed {self.claimed}, "
            f"done {self.done}, failed {self.failed}, "
            f"timed_out {self.timed_out}, retried {self.retried}"
        )
        extras = []
        if self.adopted:
            extras.append(f"adopted {self.adopted}")
        if self.released:
            extras.append(f"released {self.released}")
        if self.lost_leases:
            extras.append(f"lost_leases {self.lost_leases}")
        if self.stopped_by_signal is not None:
            extras.append(f"stopped by signal {self.stopped_by_signal}")
        if extras:
            text += " (" + ", ".join(extras) + ")"
        return text

    def as_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "worker_id": self.worker_id,
            "claimed": self.claimed,
            "adopted": self.adopted,
            "done": self.done,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "retried": self.retried,
            "released": self.released,
            "lost_leases": self.lost_leases,
            "runtime_s": self.runtime_s,
            "stopped_by_signal": self.stopped_by_signal,
            "stage_hits": dict(self.stage_hits),
            "stage_recomputes": dict(self.stage_recomputes),
        }


class _Worker:
    """Internal driver object holding one worker's loop state."""

    def __init__(
        self,
        campaign: str,
        store: ResultStore,
        worker_id: str,
        stage_cache: StageCache,
        use_cache: bool,
        serial: bool,
        retries: int,
        timeout_s: Optional[float],
        retry_backoff_s: float,
        heartbeat_s: float,
        stale_after_s: float,
        poll_s: float,
        max_points: Optional[int],
        wait_for_stragglers: bool,
        warm_start: bool = True,
    ) -> None:
        self.campaign = campaign
        self.store = store
        self.worker_id = worker_id
        self.stage_cache = stage_cache
        self.use_cache = use_cache
        self.serial = serial
        self.retries = retries
        self.timeout_s = timeout_s
        self.retry_backoff_s = retry_backoff_s
        self.heartbeat_s = heartbeat_s
        self.stale_after_s = stale_after_s
        self.poll_s = poll_s
        self.max_points = max_points
        self.wait_for_stragglers = wait_for_stragglers
        self.warm_start = warm_start
        self.summary = WorkerSummary(campaign=campaign, worker_id=worker_id)
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- pool management ----------------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=1, initializer=_worker_init
            )
        return self._executor

    def _kill_pool(self) -> None:
        if self._executor is not None:
            _terminate_worker_processes(self._executor)
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def shutdown(self, terminate: bool) -> None:
        if self._executor is None:
            return
        if terminate:
            self._kill_pool()
        else:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- the loop -----------------------------------------------------------------

    def run(self) -> None:
        while True:
            if (
                self.max_points is not None
                and self.summary.claimed >= self.max_points
            ):
                return
            claimed = self.store.claim_next_pending(
                self.campaign,
                owner=self.worker_id,
                stale_after_s=self.stale_after_s,
            )
            if claimed is None:
                counts = self.store.status_counts(self.campaign)
                if counts.get("pending", 0) == 0 and counts.get("running", 0) == 0:
                    return  # drained: every point is terminal
                if not self.wait_for_stragglers:
                    return
                # Siblings still hold running rows; wait so we can adopt
                # their leases if they die.  A plain sleep: the SIGTERM
                # handler interrupts it.
                time.sleep(self.poll_s)
                continue
            self.summary.claimed += 1
            if claimed.adopted:
                self.summary.adopted += 1
            self._run_point(claimed)

    def _run_point(self, claimed: ClaimedPoint) -> None:
        point = claimed.point
        spec = ScenarioSpec.from_dict(point.spec_dict)
        # Warm-start pickup: the wiring was written at enrollment, the
        # neighbour's placement is read now -- a fleet worker claiming a
        # point late automatically sees more finished neighbours than an
        # eager one.  Resolved once per point: retries reuse the same hint.
        warm_hint = self.store.warm_hint(point) if self.warm_start else None
        error_attempts = 0
        interrupted_passes = 0
        try:
            while True:
                outcome, payload, elapsed = self._attempt(spec, point.digest, warm_hint)
                if outcome == "ok":
                    if self.store.mark_done(
                        self.campaign,
                        point.digest,
                        payload,
                        wall_time_s=elapsed,
                        require_owner=self.worker_id,
                    ):
                        self.summary.done += 1
                        self._account_stages(payload)
                    else:
                        self.summary.lost_leases += 1
                    return
                if outcome == "interrupted":
                    # The child process died under the point (crash chaos
                    # site, OOM kill).  The point's own code never raised,
                    # so it gets retries + 1 free passes like run_batch's
                    # pool-death recovery.
                    if interrupted_passes < self.retries + 1:
                        interrupted_passes += 1
                        self._retry(point.digest, error_attempts + interrupted_passes)
                        continue
                    marked = self.store.mark_failed(
                        self.campaign,
                        point.digest,
                        _point_error_message(
                            point.name, point.digest, payload["error"]
                        ),
                        require_owner=self.worker_id,
                    )
                    self.summary.failed += marked
                    self.summary.lost_leases += not marked
                    return
                # "error" / "timeout": charge the shared retry budget.
                if error_attempts < self.retries:
                    error_attempts += 1
                    self._retry(point.digest, error_attempts + interrupted_passes)
                    continue
                message = _point_error_message(
                    point.name, point.digest, payload["error"]
                )
                if outcome == "timeout":
                    marked = self.store.mark_timed_out(
                        self.campaign,
                        point.digest,
                        message,
                        require_owner=self.worker_id,
                    )
                    self.summary.timed_out += marked
                else:
                    marked = self.store.mark_failed(
                        self.campaign,
                        point.digest,
                        message,
                        require_owner=self.worker_id,
                    )
                    self.summary.failed += marked
                self.summary.lost_leases += not marked
                return
        except _StopRequested:
            # Graceful shutdown mid-point: hand the claim straight back to
            # the queue so a sibling picks it up without waiting for the
            # lease to go stale.
            if self.store.release(self.campaign, point.digest, self.worker_id):
                self.summary.released += 1
            raise

    def _retry(self, digest: str, attempt: int) -> None:
        """Book one re-attempt: backoff, then re-stamp the running row."""
        self.summary.retried += 1
        delay = retry_backoff_delay(self.retry_backoff_s, attempt - 1, digest)
        if delay > 0.0:
            time.sleep(delay)
        # Re-stamping increments ``attempts`` (one row per started attempt,
        # same accounting as run_batch) and refreshes the heartbeat.
        self.store.mark_running(self.campaign, digest, lease_owner=self.worker_id)

    def _account_stages(self, record: Dict[str, Any]) -> None:
        for stage, hit in dict(record.get("stage_cached", {})).items():
            bucket = self.summary.stage_hits if hit else self.summary.stage_recomputes
            bucket[stage] = bucket.get(stage, 0) + 1

    # -- one attempt --------------------------------------------------------------

    def _attempt(
        self, spec: ScenarioSpec, digest: str, warm_hint: Optional[Dict[str, Any]] = None
    ) -> Tuple[str, Dict[str, Any], float]:
        """Execute one attempt; returns ``(outcome, payload, elapsed_s)``.

        Outcomes: ``"ok"`` (payload = result record), ``"error"`` (payload
        = ``{"error", "traceback"}``), ``"timeout"`` (payload names the
        budget), ``"interrupted"`` (the child process died).
        """
        if self.serial:
            return self._attempt_serial(spec, warm_hint)
        return self._attempt_pooled(spec, digest, warm_hint)

    def _attempt_serial(
        self, spec: ScenarioSpec, warm_hint: Optional[Dict[str, Any]] = None
    ) -> Tuple[str, Dict[str, Any], float]:
        start = time.perf_counter()
        status, record = execute_point(
            spec, cache=self.stage_cache, use_cache=self.use_cache, warm_hint=warm_hint
        )
        elapsed = time.perf_counter() - start
        if (
            status == "ok"
            and self.timeout_s is not None
            and elapsed > self.timeout_s
        ):
            # Post hoc by necessity: serially, the worker IS the point.
            return (
                "timeout",
                {"error": f"exceeded timeout_s={self.timeout_s:g} ({elapsed:.2f}s)"},
                elapsed,
            )
        return (status, record, elapsed)

    def _attempt_pooled(
        self, spec: ScenarioSpec, digest: str, warm_hint: Optional[Dict[str, Any]] = None
    ) -> Tuple[str, Dict[str, Any], float]:
        cache_dir = str(self.stage_cache.root) if self.stage_cache.enabled else None
        payload = _worker_payload(
            spec,
            cache_dir,
            self.use_cache,
            self.stage_cache.mmap_arrays,
            warm_hint=warm_hint,
        )
        future = self._pool().submit(_run_scenario_worker, payload)
        start = time.monotonic()
        deadline = None if self.timeout_s is None else start + self.timeout_s
        last_beat = start
        while True:
            finished, _ = wait([future], timeout=WAIT_TICK_S)
            now = time.monotonic()
            if now - last_beat >= self.heartbeat_s:
                # Mid-point proof of life so siblings never adopt a row
                # whose worker is merely slow.
                self.store.heartbeat(self.campaign, [digest])
                last_beat = now
            if finished:
                elapsed = now - start
                try:
                    status, record = future.result()
                except BrokenProcessPool:
                    self._kill_pool()
                    return (
                        "interrupted",
                        {"error": "worker process died while the point was running"},
                        elapsed,
                    )
                except Exception as exc:  # transport failures (unpicklable, ...)
                    return (
                        "error",
                        {
                            "error": f"{type(exc).__name__}: {exc}",
                            "traceback": traceback.format_exc(),
                        },
                        elapsed,
                    )
                if status == "ok":
                    elapsed = float(record.get("runtime_s", elapsed))
                return (status, record, elapsed)
            if deadline is not None and now > deadline:
                # Real watchdog: a hung child cannot be cancelled, so the
                # single-process pool is terminated and rebuilt lazily.
                self._kill_pool()
                return (
                    "timeout",
                    {
                        "error": (
                            f"exceeded timeout_s={self.timeout_s:g} "
                            "(worker terminated)"
                        )
                    },
                    now - start,
                )


def run_worker(
    campaign: str,
    store: Union[ResultStore, PathLike, None] = None,
    worker_id: Optional[str] = None,
    cache: Union[StageCache, PathLike, None] = None,
    use_cache: bool = True,
    serial: bool = False,
    retries: int = 0,
    timeout_s: Optional[float] = None,
    retry_backoff_s: float = 0.0,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    poll_s: float = DEFAULT_POLL_S,
    max_points: Optional[int] = None,
    wait_for_stragglers: bool = True,
    warm_start: bool = True,
) -> WorkerSummary:
    """Join a campaign as one worker of a cooperative fleet.

    Loops claim → run → heartbeat → mark against the campaign's store
    until the queue drains (no ``pending`` or ``running`` rows remain),
    ``max_points`` claims have been made, or a stop signal lands.  See the
    module docstring for the exactly-once semantics.  Unlike
    :func:`~repro.runner.batch.run_batch` the worker never enrolls points
    (use ``repro campaign enroll`` / :meth:`ResultStore.enroll` first) and
    never resets or reclaims rows wholesale at startup — fleets rely on
    per-row lease adoption instead, so a late worker can join a running
    campaign without disturbing its siblings.

    Parameters mirror ``run_batch`` where they overlap; the new ones:

    worker_id:
        Lease identity written into claimed rows (default ``host:pid``).
        Must be unique across live fleet members.
    serial:
        Run points in-process instead of a single-process pool.  Cheaper,
        but no mid-point heartbeats and only post-hoc timeouts: a serial
        worker stalled in a long point *will* look stale after
        ``stale_after_s``.  The lease fence turns the consequence into a
        discarded duplicate result rather than a double-done.
    poll_s:
        Sleep between claim attempts while waiting on siblings' rows.
    max_points:
        Stop after this many claims (useful for tests and canaries).
    wait_for_stragglers:
        When ``False``, exit as soon as no row is claimable instead of
        waiting to adopt siblings' leases should they die.
    warm_start:
        When ``True`` (default), claimed points with warm-start wiring
        (``warm_hint_digest`` written at enrollment) pick their neighbour's
        done placement up from the store and offer it to the solver; set
        ``False`` to force every point cold.
    """
    if retries < 0:
        raise ConfigurationError("retries must be >= 0")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError("timeout_s must be > 0 when set")
    if retry_backoff_s < 0:
        raise ConfigurationError("retry_backoff_s must be >= 0")
    if heartbeat_s <= 0 or stale_after_s <= 0:
        raise ConfigurationError("heartbeat_s and stale_after_s must be > 0")
    if poll_s <= 0:
        raise ConfigurationError("poll_s must be > 0")
    if max_points is not None and max_points <= 0:
        raise ConfigurationError("max_points must be > 0 when set")

    # Workers arm telemetry and chaos from the environment like pool
    # workers do: each fleet member is typically its own ``repro`` process.
    configure_from_env()
    faults.configure_from_env()

    result_store = resolve_store(store if store is not None else default_store_path())
    owns_store = not isinstance(store, ResultStore)
    stage_cache = resolve_cache(cache, enabled=use_cache)
    use_cache = stage_cache.enabled
    worker_id = worker_id if worker_id is not None else default_lease_owner()

    driver = _Worker(
        campaign=campaign,
        store=result_store,
        worker_id=worker_id,
        stage_cache=stage_cache,
        use_cache=use_cache,
        serial=serial,
        retries=retries,
        timeout_s=timeout_s,
        retry_backoff_s=retry_backoff_s,
        heartbeat_s=heartbeat_s,
        stale_after_s=stale_after_s,
        poll_s=poll_s,
        max_points=max_points,
        wait_for_stragglers=wait_for_stragglers,
        warm_start=warm_start,
    )
    summary = driver.summary

    # Same signal discipline as run_batch: handlers only from the main
    # thread, always restored.
    installed_handlers = []
    if threading.current_thread() is threading.main_thread():

        def _stop_handler(signum: int, frame: object) -> None:
            raise _StopRequested(signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                installed_handlers.append((signum, signal.signal(signum, _stop_handler)))
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass

    start = time.perf_counter()
    stopped = False
    try:
        with span("worker", campaign=campaign, worker_id=worker_id):
            driver.run()
    except _StopRequested as stop:
        stopped = True
        summary.stopped_by_signal = stop.signum
    finally:
        summary.runtime_s = time.perf_counter() - start
        for signum, previous in installed_handlers:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        driver.shutdown(terminate=stopped)
        if owns_store:
            result_store.close()
        # Fold this worker's pool-child trace shards into the merged trace
        # (no-op while tracing is disabled).
        merge_active_trace()
    return summary
