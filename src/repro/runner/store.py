"""Durable, resumable campaign state: a SQLite-backed result store.

A *campaign* is a named set of scenario points whose execution state must
survive crashes, OOM kills and CTRL-C.  The :class:`ResultStore` keeps one
row per point in a SQLite database (WAL mode, so a reader -- ``repro
campaign status`` -- never blocks the writer), keyed by the campaign name
plus the scenario's stage-cache content digest
(:func:`~repro.runner.stages.scenario_content_digest`).  Each row records:

``status``
    ``pending`` (enrolled, not started), ``running`` (claimed by the
    current run), ``done`` (payload holds the full
    :class:`~repro.runner.stages.ScenarioResult` record), ``failed``
    (``error`` holds the wrapped worker traceback) or ``timed_out`` (the
    point exceeded its wall-clock budget and the watchdog reclaimed it).
``attempts`` / ``wall_time_s`` / ``error``
    Per-point accounting: how often the point was started, how long the
    successful run took, and the last failure text.
``lease_owner`` / ``heartbeat_ts``
    Liveness of ``running`` rows: which driver (``host:pid``) claimed the
    point and when that driver last proved it was still alive.  A row whose
    heartbeat goes stale is *reclaimed* -- flipped to ``failed`` so it
    retries -- both at enroll time and periodically during execution
    (:meth:`ResultStore.reclaim_stale`), the groundwork for the ROADMAP's
    multi-host campaign execution.
``degraded`` / ``fallback_solver``
    Result provenance mirrored out of the ``done`` payload: whether the
    point's configured solver failed and a fallback chain produced a
    best-effort answer instead, queryable without parsing result JSON.
``spec``
    The point's full declarative :class:`~repro.scenario.ScenarioSpec`
    dictionary, so ``repro campaign resume`` can rebuild the work list from
    the store alone -- no original command line or plan file needed.

Within one driver, the store is written only by the parent (campaign-
driving) process; worker *pool* processes never touch it, so a dying
worker cannot corrupt campaign state.  Across drivers the store doubles as
a shared work queue: every write runs in its own ``BEGIN IMMEDIATE``
transaction (the write lock is taken up front, so a read-modify-write like
:meth:`ResultStore.claim_next_pending` or
:meth:`ResultStore.reclaim_stale` can never interleave with a competing
driver's), every connection sets ``PRAGMA busy_timeout``, and contended
writes additionally retry with exponential backoff on transient
``sqlite3.OperationalError`` (``SQLITE_BUSY``, a flaky network
filesystem); ``repro campaign doctor`` audits/repairs a store that was hit
by crashes anyway.  ``export`` renders the ``done`` rows through the
existing JSONL writer, byte-for-byte compatible with
:func:`~repro.runner.batch.write_results_jsonl`, so every downstream
consumer (sweep aggregation, reports) works unchanged.
"""

from __future__ import annotations

import json
import os
import re
import socket
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import faults
from ..errors import ConfigurationError
from ..scenario.spec import ScenarioSpec
from ..telemetry import MetricStats, span
from .cache import PathLike, default_cache_dir
from .stages import ScenarioResult, scenario_content_digest

#: Environment variable overriding the default store location.
STORE_PATH_ENV = "REPRO_STORE_PATH"

#: Bump when the table layout changes.  Version 2 (lease/heartbeat +
#: degradation provenance columns), version 3 (the ``priority`` tier
#: column used by the ``repro serve`` admission layer) and version 4 (the
#: warm-start wiring columns ``warm_hint_digest``/``warm_exact_prefix``)
#: migrate older stores in place; anything newer than the build is
#: rejected.
STORE_SCHEMA_VERSION = 4

#: Row lifecycle states.
STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_TIMED_OUT = "timed_out"

_STATUSES = (STATUS_PENDING, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED, STATUS_TIMED_OUT)

#: Admission-priority tiers.  ``interactive`` rows (enqueued by the
#: ``repro serve`` front-end on behalf of a waiting caller) are claimed
#: ahead of ``batch`` rows (bulk enrollments) by
#: :meth:`ResultStore.claim_next_pending`; within a tier the pre-priority
#: enrollment ordering (``position``) is preserved unchanged.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BATCH = "batch"

PRIORITIES = (PRIORITY_INTERACTIVE, PRIORITY_BATCH)

#: Transient-write retry policy: attempts and first backoff (doubled per try).
WRITE_RETRIES = 5
WRITE_RETRY_BACKOFF_S = 0.05

#: How long SQLite itself blocks on a contended write lock before surfacing
#: ``SQLITE_BUSY`` (which then enters the retry loop above).  Contended
#: claims from a worker fleet degrade to waiting, never to errors.
BUSY_TIMEOUT_MS = 5000

#: Default cadence of campaign heartbeats (seconds between refreshes of a
#: driver's or worker's ``running`` rows).
DEFAULT_HEARTBEAT_S = 5.0

#: Default age after which a ``running`` row with no heartbeat counts as
#: abandoned by a dead driver/worker and becomes eligible for reclamation
#: (:meth:`ResultStore.reclaim_stale`) or adoption
#: (:meth:`ResultStore.claim_next_pending`).
DEFAULT_STALE_AFTER_S = 60.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    campaign TEXT NOT NULL,
    digest TEXT NOT NULL,
    name TEXT NOT NULL,
    position INTEGER NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    wall_time_s REAL,
    error TEXT,
    spec TEXT NOT NULL,
    result TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    lease_owner TEXT,
    heartbeat_ts REAL,
    degraded INTEGER NOT NULL DEFAULT 0,
    fallback_solver TEXT,
    priority TEXT NOT NULL DEFAULT 'batch',
    warm_hint_digest TEXT,
    warm_exact_prefix INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (campaign, digest)
);
CREATE INDEX IF NOT EXISTS idx_points_status ON points (campaign, status);
CREATE TABLE IF NOT EXISTS metrics (
    campaign TEXT NOT NULL,
    run_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    count INTEGER NOT NULL,
    total REAL NOT NULL,
    minimum REAL NOT NULL,
    maximum REAL NOT NULL,
    p50 REAL NOT NULL,
    p90 REAL NOT NULL,
    p99 REAL NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (campaign, run_id, kind, name)
);
"""

#: Metric row kinds persisted by the campaign runner.  ``stage_time`` rows
#: hold per-stage wall-time distributions over the run's computed points;
#: ``stage_hit_time`` / ``stage_recompute_time`` split the cacheable stages
#: by cache outcome (so cache savings are visible in seconds, not counts);
#: ``point_time`` is the whole-point distribution and ``counter`` plain
#: counts (computed/skipped/failed/retried, cache hit totals, ...).
METRIC_KIND_STAGE_TIME = "stage_time"
METRIC_KIND_STAGE_HIT_TIME = "stage_hit_time"
METRIC_KIND_STAGE_RECOMPUTE_TIME = "stage_recompute_time"
METRIC_KIND_POINT_TIME = "point_time"
METRIC_KIND_COUNTER = "counter"


def default_store_path() -> Path:
    """Store location: ``$REPRO_STORE_PATH`` or ``<cache dir>/campaigns.sqlite``."""
    env = os.environ.get(STORE_PATH_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "campaigns.sqlite"


def default_lease_owner() -> str:
    """The ``host:pid`` identity this driver writes into ``lease_owner``."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class PointRecord:
    """One campaign point as stored (immutable snapshot of a row)."""

    campaign: str
    digest: str
    name: str
    position: int
    status: str
    attempts: int
    wall_time_s: Optional[float]
    error: Optional[str]
    spec_dict: Mapping[str, Any]
    result_dict: Optional[Mapping[str, Any]]
    created_at: float
    updated_at: float
    lease_owner: Optional[str] = None
    heartbeat_ts: Optional[float] = None
    degraded: bool = False
    fallback_solver: Optional[str] = None
    priority: str = PRIORITY_BATCH
    #: Warm-start wiring written at enrollment: the content digest of the
    #: neighbour whose done placement should seed this point's solver, and
    #: whether that neighbour differs only by a smaller ``n_modules`` (the
    #: greedy exact-replay contract).  ``None`` = solve cold.
    warm_hint_digest: Optional[str] = None
    warm_exact_prefix: bool = False

    def spec(self) -> ScenarioSpec:
        """Rebuild the point's declarative scenario."""
        return ScenarioSpec.from_dict(self.spec_dict)

    def result(self) -> ScenarioResult:
        """Rebuild the stored result (``done`` rows only)."""
        if self.result_dict is None:
            raise ConfigurationError(
                f"campaign point {self.name!r} has no stored result (status {self.status})"
            )
        return ScenarioResult.from_dict(self.result_dict)


@dataclass(frozen=True)
class ClaimedPoint:
    """One point atomically claimed from the shared work queue.

    ``point`` is the row's post-claim snapshot (status ``running``, lease
    stamped, attempts already incremented).  ``adopted`` is True when the
    claim took over a stale ``running`` row abandoned by a dead worker
    rather than a fresh ``pending`` one.
    """

    point: PointRecord
    adopted: bool


@dataclass
class CampaignSummary:
    """Outcome accounting of one campaign run (or resume).

    ``done`` counts every completed point in the campaign after the run;
    ``computed`` the points executed by *this* invocation, ``skipped`` the
    points whose stored result was reused, ``failed`` the points still
    failed after retries, and ``retried`` the number of retry attempts this
    invocation performed.  ``timed_out`` counts points whose wall-clock
    budget expired (terminal state after retries), ``degraded`` the done
    points whose answer came from a fallback solver rather than the
    configured one, and ``reclaimed`` the stale running rows this run took
    over from a dead driver.  ``stage_hits`` / ``stage_recomputes`` aggregate
    the stage-cache provenance of the computed points only, so a resume
    proves it recomputed exactly the missing work; ``stage_hit_time_s`` /
    ``stage_recompute_time_s`` carry the same split in wall-clock seconds,
    so cache savings are reported as time, not just counts.
    """

    campaign: str
    n_points: int = 0
    done: int = 0
    computed: int = 0
    skipped: int = 0
    failed: int = 0
    retried: int = 0
    timed_out: int = 0
    degraded: int = 0
    reclaimed: int = 0
    stage_hits: Dict[str, int] = field(default_factory=dict)
    stage_recomputes: Dict[str, int] = field(default_factory=dict)
    stage_hit_time_s: Dict[str, float] = field(default_factory=dict)
    stage_recompute_time_s: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "n_points": self.n_points,
            "done": self.done,
            "computed": self.computed,
            "skipped": self.skipped,
            "failed": self.failed,
            "retried": self.retried,
            "timed_out": self.timed_out,
            "degraded": self.degraded,
            "reclaimed": self.reclaimed,
            "stage_hits": dict(self.stage_hits),
            "stage_recomputes": dict(self.stage_recomputes),
            "stage_hit_time_s": dict(self.stage_hit_time_s),
            "stage_recompute_time_s": dict(self.stage_recompute_time_s),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSummary":
        try:
            return cls(
                campaign=str(data["campaign"]),
                n_points=int(data.get("n_points", 0)),
                done=int(data.get("done", 0)),
                computed=int(data.get("computed", 0)),
                skipped=int(data.get("skipped", 0)),
                failed=int(data.get("failed", 0)),
                retried=int(data.get("retried", 0)),
                timed_out=int(data.get("timed_out", 0)),
                degraded=int(data.get("degraded", 0)),
                reclaimed=int(data.get("reclaimed", 0)),
                stage_hits={str(k): int(v) for k, v in data.get("stage_hits", {}).items()},
                stage_recomputes={
                    str(k): int(v) for k, v in data.get("stage_recomputes", {}).items()
                },
                stage_hit_time_s={
                    str(k): float(v) for k, v in data.get("stage_hit_time_s", {}).items()
                },
                stage_recompute_time_s={
                    str(k): float(v)
                    for k, v in data.get("stage_recompute_time_s", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed campaign summary: {exc}") from exc

    def report(self) -> str:
        """One-line human-readable summary.

        The ``computed/skipped/failed/retried`` prefix is stable (CI greps
        it); the robustness counters are appended only when nonzero.
        """
        extras = "".join(
            f", {label} {value}"
            for label, value in (
                ("timed_out", self.timed_out),
                ("degraded", self.degraded),
                ("reclaimed", self.reclaimed),
            )
            if value
        )
        return (
            f"campaign {self.campaign!r}: {self.done}/{self.n_points} done "
            f"(computed {self.computed}, skipped {self.skipped}, "
            f"failed {self.failed}, retried {self.retried}{extras})"
        )


class ResultStore:
    """SQLite-backed durable store of campaign points.

    Parameters
    ----------
    path:
        Database file (created on first use, parent directories included).
        Defaults to :func:`default_store_path`.

    The store is safe to reopen concurrently for *reading* (WAL mode); the
    campaign runner is the single writer.  Use as a context manager or call
    :meth:`close` to release the connection.

    Example
    -------
    >>> import tempfile, os
    >>> from repro.runner.store import ResultStore
    >>> from repro.scenario import get_scenario
    >>> tmp = tempfile.TemporaryDirectory()
    >>> store = ResultStore(os.path.join(tmp.name, "campaigns.sqlite"))
    >>> points = store.enroll("demo", [get_scenario("residential-south")])
    >>> [p.status for p in points]
    ['pending']
    >>> store.status_counts("demo")["pending"]
    1
    >>> store.close(); tmp.cleanup()
    """

    def __init__(
        self, path: Union[PathLike, None] = None, cross_thread: bool = False
    ) -> None:
        self.path = Path(path) if path is not None else default_store_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # ``cross_thread=True`` lets a caller that serialises its own access
        # (the ``repro serve`` front-end, whose HTTP threads share one store
        # behind a lock) use the connection from threads other than the one
        # that opened it; plain drivers keep sqlite's same-thread check.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=not cross_thread
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        # Every connection blocks (rather than erroring) on a contended
        # write lock: a fleet of workers claiming from one store must wait
        # its turn, not surface SQLITE_BUSY to the caller.
        self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
            elif int(row["value"]) < STORE_SCHEMA_VERSION:
                # In-place stepwise migration: every bump so far is purely
                # additive (v2: lease/heartbeat liveness + degradation
                # provenance, v3: the admission-priority tier, v4: the
                # warm-start wiring), so existing campaign state survives
                # verbatim.  Old rows take the column defaults -- notably
                # ``priority='batch'``, keeping the pre-priority claim
                # ordering for legacy campaigns, and a NULL
                # ``warm_hint_digest``, meaning legacy points solve cold.
                columns = []
                if int(row["value"]) < 2:
                    columns += [
                        "lease_owner TEXT",
                        "heartbeat_ts REAL",
                        "degraded INTEGER NOT NULL DEFAULT 0",
                        "fallback_solver TEXT",
                    ]
                if int(row["value"]) < 3:
                    columns += ["priority TEXT NOT NULL DEFAULT 'batch'"]
                if int(row["value"]) < 4:
                    columns += [
                        "warm_hint_digest TEXT",
                        "warm_exact_prefix INTEGER NOT NULL DEFAULT 0",
                    ]
                for column in columns:
                    try:
                        self._conn.execute(f"ALTER TABLE points ADD COLUMN {column}")
                    except sqlite3.OperationalError:
                        pass  # column already present (interrupted migration)
                self._conn.execute(
                    "UPDATE meta SET value=? WHERE key='schema_version'",
                    (str(STORE_SCHEMA_VERSION),),
                )
            elif int(row["value"]) != STORE_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"result store {self.path} has schema version {row['value']}, "
                    f"this build expects {STORE_SCHEMA_VERSION}"
                )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- enrollment ---------------------------------------------------------------

    def enroll(
        self,
        campaign: str,
        specs: Sequence[ScenarioSpec],
        priority: str = PRIORITY_BATCH,
        warm_hints: Optional[Mapping[str, Tuple[str, bool]]] = None,
    ) -> List[PointRecord]:
        """Register the campaign's points, keeping any existing state.

        Idempotent: a digest already enrolled keeps its row (status,
        attempts, result, priority) untouched, so enrolling the same fleet
        again is exactly the resume entry point.  ``priority`` stamps the
        admission tier of *newly created* rows: ``interactive`` points are
        claimed ahead of ``batch`` ones by :meth:`claim_next_pending`.
        ``warm_hints`` maps a spec name to ``(neighbour_name, exact_prefix)``
        -- the neighbour must be in this enrollment -- and is written into
        the ``warm_hint_digest``/``warm_exact_prefix`` columns so detached
        fleet workers resolve the same hints the driver would; unlike the
        lifecycle state it IS refreshed on re-enrollment (wiring is
        routing, not identity).  Returns the stored records in ``specs``
        order.
        """
        if not campaign:
            raise ConfigurationError("a campaign needs a non-empty name")
        if priority not in PRIORITIES:
            raise ConfigurationError(
                f"unknown priority {priority!r}; expected one of {', '.join(PRIORITIES)}"
            )
        digests = [scenario_content_digest(spec) for spec in specs]
        if len(set(digests)) != len(digests):
            raise ConfigurationError(
                f"campaign {campaign!r}: duplicate scenario content digests "
                "(identical specs enrolled twice)"
            )
        digest_by_name = {spec.name: digest for spec, digest in zip(specs, digests)}
        hint_columns: List[Tuple[Optional[str], int]] = []
        for spec in specs:
            target = warm_hints.get(spec.name) if warm_hints else None
            if target is None:
                hint_columns.append((None, 0))
                continue
            neighbour_name, exact_prefix = target
            neighbour_digest = digest_by_name.get(neighbour_name)
            if neighbour_digest is None:
                raise ConfigurationError(
                    f"warm hint for {spec.name!r} references {neighbour_name!r}, "
                    "which is not part of this enrollment"
                )
            hint_columns.append((neighbour_digest, int(bool(exact_prefix))))
        now = time.time()

        def operate(conn: sqlite3.Connection) -> None:
            # One IMMEDIATE transaction: two drivers enrolling the same
            # fleet concurrently serialise here, so positions stay unique
            # and the second enrollment is a pure no-op.
            row = conn.execute(
                "SELECT COALESCE(MAX(position), -1) AS top FROM points WHERE campaign=?",
                (campaign,),
            ).fetchone()
            next_position = int(row["top"]) + 1
            for spec, digest, (hint_digest, hint_exact) in zip(
                specs, digests, hint_columns
            ):
                cursor = conn.execute(
                    """
                    INSERT OR IGNORE INTO points
                        (campaign, digest, name, position, status, attempts,
                         spec, created_at, updated_at, priority,
                         warm_hint_digest, warm_exact_prefix)
                    VALUES (?, ?, ?, ?, 'pending', 0, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        campaign,
                        digest,
                        spec.name,
                        next_position,
                        json.dumps(spec.to_dict(), sort_keys=True),
                        now,
                        now,
                        priority,
                        hint_digest,
                        hint_exact,
                    ),
                )
                if cursor.rowcount:
                    next_position += 1
                elif warm_hints is not None:
                    conn.execute(
                        """
                        UPDATE points SET warm_hint_digest=?, warm_exact_prefix=?
                        WHERE campaign=? AND digest=?
                        """,
                        (hint_digest, hint_exact, campaign, digest),
                    )

        with span("store.enroll", campaign=campaign, n_specs=len(specs)):
            self._write(operate, key=campaign)
        return [self.point(campaign, digest) for digest in digests]

    # -- state transitions --------------------------------------------------------

    def _write(self, operate: Callable[[sqlite3.Connection], Any], key: str = "") -> Any:
        """Run one ``BEGIN IMMEDIATE`` write transaction with bounded retries.

        The write lock is acquired *up front* (``BEGIN IMMEDIATE``), so a
        read-modify-write transaction -- select the next claimable row,
        stamp it -- can never interleave with a competing driver's: SQLite
        serialises the whole transaction, which is what makes
        :meth:`claim_next_pending` and :meth:`reclaim_stale` atomic across
        processes and hosts.  A contended lock blocks for
        ``PRAGMA busy_timeout`` first; if it still surfaces as
        ``sqlite3.OperationalError`` (``SQLITE_BUSY``/"database is locked",
        a flaky network filesystem), the transaction retries with
        exponential backoff before giving up -- contended writes degrade to
        waiting, never to raw errors.  The ``store.io`` fault site injects
        exactly that error to prove the retries absorb it.
        """
        delay = WRITE_RETRY_BACKOFF_S
        last_error: Optional[BaseException] = None
        for attempt in range(WRITE_RETRIES):
            try:
                faults.fire("store.io", key=key)
                self._conn.execute("BEGIN IMMEDIATE")
            except sqlite3.OperationalError as exc:
                last_error = exc
                if attempt + 1 < WRITE_RETRIES:
                    time.sleep(delay)
                    delay *= 2
                continue
            try:
                value = operate(self._conn)
                self._conn.commit()
                return value
            except sqlite3.OperationalError as exc:
                self._conn.rollback()
                last_error = exc
                if attempt + 1 < WRITE_RETRIES:
                    time.sleep(delay)
                    delay *= 2
            except BaseException:
                self._conn.rollback()
                raise
        raise ConfigurationError(
            f"result store write failed after {WRITE_RETRIES} attempts: {last_error}"
        ) from last_error

    def _touch(
        self,
        campaign: str,
        digest: str,
        require_owner: Optional[str] = None,
        **updates: Any,
    ) -> bool:
        """Update one point row; optionally fenced on the caller's lease.

        With ``require_owner`` set the update only applies while the row is
        still ``running`` under that lease — the write is a no-op (returns
        ``False``) if a sibling worker adopted the lease in the meantime.
        This fencing is what keeps completion-marking at-most-once even
        though execution is at-least-once.  Without ``require_owner`` a
        missing row raises (a digest typo is a caller bug, not a race).
        """
        updates["updated_at"] = time.time()
        columns = ", ".join(f"{name}=?" for name in updates)
        where = "campaign=? AND digest=?"
        params: List[Any] = [*updates.values(), campaign, digest]
        if require_owner is not None:
            where += " AND status=? AND lease_owner=?"
            params.extend([STATUS_RUNNING, require_owner])
        cursor = self._write(
            lambda conn: conn.execute(
                f"UPDATE points SET {columns} WHERE {where}", params
            ),
            key=campaign,
        )
        if cursor.rowcount == 0:
            if require_owner is not None:
                return False
            raise ConfigurationError(
                f"campaign {campaign!r} has no point with digest {digest[:12]}..."
            )
        return True

    def mark_running(
        self, campaign: str, digest: str, lease_owner: Optional[str] = None
    ) -> None:
        """Claim a point for execution (increments its attempt count).

        Stamps the claiming driver's identity and a fresh heartbeat so the
        row's liveness is observable (:meth:`heartbeat`,
        :meth:`reclaim_stale`).
        """
        now = time.time()
        owner = lease_owner if lease_owner is not None else default_lease_owner()
        cursor = self._write(
            lambda conn: conn.execute(
                """
                UPDATE points
                SET status=?, attempts=attempts + 1, error=NULL,
                    lease_owner=?, heartbeat_ts=?, updated_at=?
                WHERE campaign=? AND digest=?
                """,
                (STATUS_RUNNING, owner, now, now, campaign, digest),
            ),
            key=campaign,
        )
        if cursor.rowcount == 0:
            raise ConfigurationError(
                f"campaign {campaign!r} has no point with digest {digest[:12]}..."
            )

    def claim_next_pending(
        self,
        campaign: str,
        owner: Optional[str] = None,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        now: Optional[float] = None,
    ) -> Optional[ClaimedPoint]:
        """Atomically claim the next runnable point for ``owner``.

        One ``BEGIN IMMEDIATE`` transaction selects the oldest eligible row
        — ``pending``, or ``running`` with a heartbeat older than
        ``stale_after_s`` (a dead sibling's lease, adopted in place) — then
        stamps ``lease_owner``/``heartbeat_ts``, increments ``attempts``,
        and returns the refreshed record.  Because the transaction holds
        the store's write lock from the first statement, two workers
        claiming concurrently serialise: each gets a distinct point, or
        ``None`` once the queue is drained.  Contended claims wait on
        ``PRAGMA busy_timeout`` (and the retry loop in ``_write``) rather
        than erroring or double-claiming.

        Eligible rows are ordered by admission tier first — ``interactive``
        points (enqueued by ``repro serve`` for a waiting caller) ahead of
        ``batch`` ones — and by enrollment ``position`` within a tier, so a
        store whose rows all share one priority claims in exactly the
        pre-priority order.
        """
        now = time.time() if now is None else now
        owner = owner if owner is not None else default_lease_owner()
        cutoff = now - stale_after_s

        def operate(conn: sqlite3.Connection) -> Optional[ClaimedPoint]:
            row = conn.execute(
                """
                SELECT digest, status FROM points
                WHERE campaign=?
                  AND (status='pending'
                       OR (status='running'
                           AND COALESCE(heartbeat_ts, updated_at) < ?))
                ORDER BY (CASE priority WHEN 'interactive' THEN 0 ELSE 1 END),
                         position
                LIMIT 1
                """,
                (campaign, cutoff),
            ).fetchone()
            if row is None:
                return None
            adopted = row["status"] == STATUS_RUNNING
            conn.execute(
                """
                UPDATE points
                SET status=?, attempts=attempts + 1, error=NULL,
                    lease_owner=?, heartbeat_ts=?, updated_at=?
                WHERE campaign=? AND digest=?
                """,
                (STATUS_RUNNING, owner, now, now, campaign, row["digest"]),
            )
            fresh = conn.execute(
                "SELECT * FROM points WHERE campaign=? AND digest=?",
                (campaign, row["digest"]),
            ).fetchone()
            return ClaimedPoint(point=self._record(fresh), adopted=adopted)

        with span("store.claim", campaign=campaign, owner=owner):
            return self._write(operate, key=campaign)

    def release(self, campaign: str, digest: str, owner: str) -> bool:
        """Hand an in-flight claim back to the queue (``running -> pending``).

        Used by a worker shutting down gracefully (SIGTERM) so a sibling
        can claim the point immediately instead of waiting for the lease
        to go stale.  Fenced on ``owner`` still holding the lease; returns
        ``False`` if the row moved on without us.
        """
        now = time.time()
        cursor = self._write(
            lambda conn: conn.execute(
                """
                UPDATE points
                SET status='pending', lease_owner=NULL, heartbeat_ts=NULL,
                    error=NULL, updated_at=?
                WHERE campaign=? AND digest=? AND status='running'
                  AND lease_owner=?
                """,
                (now, campaign, digest, owner),
            ),
            key=campaign,
        )
        return cursor.rowcount > 0

    def heartbeat(self, campaign: str, digests: Sequence[str]) -> int:
        """Refresh the heartbeat of this driver's in-flight ``running`` rows.

        Returns the number of rows touched.  Called periodically by the
        campaign driver so its claims never look stale to
        :meth:`reclaim_stale` (its own or a sibling driver's).
        """
        digests = list(digests)
        if not digests:
            return 0
        now = time.time()
        placeholders = ",".join("?" for _ in digests)
        cursor = self._write(
            lambda conn: conn.execute(
                f"""
                UPDATE points
                SET heartbeat_ts=?
                WHERE campaign=? AND status='running' AND digest IN ({placeholders})
                """,
                (now, campaign, *digests),
            ),
            key=campaign,
        )
        return cursor.rowcount

    def mark_done(
        self,
        campaign: str,
        digest: str,
        result: Union[ScenarioResult, Mapping[str, Any]],
        wall_time_s: Optional[float] = None,
        require_owner: Optional[str] = None,
    ) -> bool:
        """Record a completed point with its full result payload.

        The result's degradation provenance (``degraded`` /
        ``fallback_solver``) is mirrored into dedicated columns so status
        queries need not parse result JSON.  With ``require_owner`` the
        write is fenced on the caller still holding the lease (see
        :meth:`_touch`); returns ``False`` when the lease was lost.
        """
        record = result.to_dict() if isinstance(result, ScenarioResult) else dict(result)
        with span("store.mark_done", campaign=campaign):
            return self._touch(
                campaign,
                digest,
                require_owner=require_owner,
                status=STATUS_DONE,
                result=json.dumps(record, sort_keys=True),
                wall_time_s=wall_time_s,
                error=None,
                lease_owner=None,
                heartbeat_ts=None,
                degraded=1 if record.get("degraded") else 0,
                fallback_solver=record.get("fallback_solver"),
            )

    def mark_failed(
        self,
        campaign: str,
        digest: str,
        error: str,
        require_owner: Optional[str] = None,
    ) -> bool:
        """Record a failed attempt with the wrapped worker error text."""
        with span("store.mark_failed", campaign=campaign):
            return self._touch(
                campaign,
                digest,
                require_owner=require_owner,
                status=STATUS_FAILED,
                error=str(error),
                lease_owner=None,
                heartbeat_ts=None,
            )

    def mark_timed_out(
        self,
        campaign: str,
        digest: str,
        error: str,
        require_owner: Optional[str] = None,
    ) -> bool:
        """Record a point whose wall-clock budget expired (watchdog kill)."""
        with span("store.mark_timed_out", campaign=campaign):
            return self._touch(
                campaign,
                digest,
                require_owner=require_owner,
                status=STATUS_TIMED_OUT,
                error=str(error),
                lease_owner=None,
                heartbeat_ts=None,
            )

    def reset_running(self, campaign: str) -> int:
        """Fail rows stuck in ``running`` (a previous driver died mid-run).

        Returns the number of rows transitioned.  The rows become ``failed``
        (not ``pending``) so the interruption stays auditable in ``error``;
        the campaign runner re-attempts failed rows on resume anyway.
        """
        cursor = self._write(
            lambda conn: conn.execute(
                """
                UPDATE points
                SET status='failed',
                    error='interrupted: driver exited while the point was running',
                    lease_owner=NULL, heartbeat_ts=NULL, updated_at=?
                WHERE campaign=? AND status='running'
                """,
                (time.time(), campaign),
            ),
            key=campaign,
        )
        return cursor.rowcount

    def reclaim_stale(
        self, campaign: str, stale_after_s: float, now: Optional[float] = None
    ) -> List[str]:
        """Reclaim ``running`` rows whose heartbeat went stale.

        A row whose last proof of life (``heartbeat_ts``, falling back to
        ``updated_at`` for pre-heartbeat rows) is older than
        ``stale_after_s`` belonged to a driver that died; it is flipped to
        ``failed`` with an auditable ``interrupted: stale lease`` error so
        the normal retry/resume machinery picks it up.  Returns the
        reclaimed digests so an in-flight driver can re-enqueue the ones
        belonging to its fleet within the same run.
        """
        now = time.time() if now is None else now
        cutoff = now - stale_after_s

        def operate(conn: sqlite3.Connection) -> List[str]:
            rows = conn.execute(
                """
                SELECT digest, lease_owner FROM points
                WHERE campaign=? AND status='running'
                  AND COALESCE(heartbeat_ts, updated_at) < ?
                """,
                (campaign, cutoff),
            ).fetchall()
            reclaimed: List[str] = []
            for row in rows:
                owner = row["lease_owner"] or "unknown driver"
                # The UPDATE re-checks staleness so a reclaim racing a
                # sibling's reclaim (or a claim that adopted the lease
                # between our SELECT and here) is a no-op: exactly one
                # caller wins each stale row.
                cursor = conn.execute(
                    """
                    UPDATE points
                    SET status='failed', error=?, lease_owner=NULL,
                        heartbeat_ts=NULL, updated_at=?
                    WHERE campaign=? AND digest=? AND status='running'
                      AND COALESCE(heartbeat_ts, updated_at) < ?
                    """,
                    (
                        "interrupted: stale lease reclaimed "
                        f"(no heartbeat from {owner} for > {stale_after_s:g}s)",
                        now,
                        campaign,
                        row["digest"],
                        cutoff,
                    ),
                )
                if cursor.rowcount:
                    reclaimed.append(row["digest"])
            return reclaimed

        return self._write(operate, key=campaign)

    # -- queries ------------------------------------------------------------------

    @staticmethod
    def _record(row: sqlite3.Row) -> PointRecord:
        return PointRecord(
            campaign=row["campaign"],
            digest=row["digest"],
            name=row["name"],
            position=int(row["position"]),
            status=row["status"],
            attempts=int(row["attempts"]),
            wall_time_s=None if row["wall_time_s"] is None else float(row["wall_time_s"]),
            error=row["error"],
            spec_dict=json.loads(row["spec"]),
            result_dict=None if row["result"] is None else json.loads(row["result"]),
            created_at=float(row["created_at"]),
            updated_at=float(row["updated_at"]),
            lease_owner=row["lease_owner"],
            heartbeat_ts=(
                None if row["heartbeat_ts"] is None else float(row["heartbeat_ts"])
            ),
            degraded=bool(row["degraded"]),
            fallback_solver=row["fallback_solver"],
            priority=row["priority"] or PRIORITY_BATCH,
            warm_hint_digest=row["warm_hint_digest"],
            warm_exact_prefix=bool(row["warm_exact_prefix"]),
        )

    def point(self, campaign: str, digest: str) -> PointRecord:
        """The stored record of one point."""
        row = self._conn.execute(
            "SELECT * FROM points WHERE campaign=? AND digest=?", (campaign, digest)
        ).fetchone()
        if row is None:
            raise ConfigurationError(
                f"campaign {campaign!r} has no point with digest {digest[:12]}..."
            )
        return self._record(row)

    def find_point(self, campaign: str, digest: str) -> Optional[PointRecord]:
        """Like :meth:`point` but returns ``None`` for an unknown digest.

        The non-raising lookup the ``repro serve`` status endpoint uses: an
        unknown request id is an expected client condition (404), not a
        caller bug.
        """
        row = self._conn.execute(
            "SELECT * FROM points WHERE campaign=? AND digest=?", (campaign, digest)
        ).fetchone()
        return None if row is None else self._record(row)

    def find_done(self, digest: str) -> Optional[PointRecord]:
        """The newest ``done`` row carrying this content digest, any campaign.

        The content-digest memo behind the ``repro serve`` hit path: because
        rows are keyed by :func:`~repro.runner.stages.scenario_content_digest`,
        *any* campaign that ever completed a semantically identical scenario
        can answer for it -- a pure read, the pipeline is never touched.
        """
        row = self._conn.execute(
            """
            SELECT * FROM points
            WHERE digest=? AND status='done'
            ORDER BY updated_at DESC
            LIMIT 1
            """,
            (digest,),
        ).fetchone()
        return None if row is None else self._record(row)

    def warm_hint(self, record: PointRecord) -> Optional[dict]:
        """Resolve a point's enrolled warm-start wiring into a hint dict.

        Returns the transportable ``{"placement", "exact_prefix", "source"}``
        form :func:`~repro.runner.batch.execute_point` accepts, or ``None``
        when the point has no wiring or its neighbour has not finished yet
        -- the caller then simply solves cold, so picking hints up is
        always safe.
        """
        if record.warm_hint_digest is None:
            return None
        neighbour = self.find_done(record.warm_hint_digest)
        if neighbour is None:
            return None
        try:
            placement = neighbour.result().placement
        except ConfigurationError:  # pragma: no cover - done row without result
            return None
        if not placement:
            return None
        return {
            "placement": dict(placement),
            "exact_prefix": record.warm_exact_prefix,
            "source": neighbour.name,
        }

    def queue_depth(self, campaign: str) -> int:
        """Number of not-yet-terminal rows (``pending`` + ``running``).

        The admission-control figure: ``repro serve`` rejects new work
        (``429``) while this exceeds its ``--max-queue``.
        """
        row = self._conn.execute(
            """
            SELECT COUNT(*) AS n FROM points
            WHERE campaign=? AND status IN ('pending', 'running')
            """,
            (campaign,),
        ).fetchone()
        return int(row["n"])

    def points(
        self, campaign: str, status: Optional[str] = None
    ) -> List[PointRecord]:
        """All points of a campaign in enrollment order (optionally filtered)."""
        if status is not None and status not in _STATUSES:
            raise ConfigurationError(
                f"unknown status {status!r}; expected one of {', '.join(_STATUSES)}"
            )
        if status is None:
            rows = self._conn.execute(
                "SELECT * FROM points WHERE campaign=? ORDER BY position", (campaign,)
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM points WHERE campaign=? AND status=? ORDER BY position",
                (campaign, status),
            ).fetchall()
        return [self._record(row) for row in rows]

    def status_counts(self, campaign: str) -> Dict[str, int]:
        """Point counts per status (every status key present, possibly 0)."""
        counts = {status: 0 for status in _STATUSES}
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM points WHERE campaign=? GROUP BY status",
            (campaign,),
        ):
            counts[row["status"]] = int(row["n"])
        return counts

    def fleet(
        self, campaign: str, now: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Per-owner view of the campaign's in-flight ``running`` rows.

        Groups by ``lease_owner`` and reports how many points each worker
        holds plus the age of its oldest and newest heartbeats, so a fleet
        operator can spot a stalled worker before stale-lease reclamation
        kicks in.  Rows predating the heartbeat column fall back to
        ``updated_at``; a row with neither owner nor heartbeat is grouped
        under ``"(no owner)"``.
        """
        now = time.time() if now is None else now
        rows = self._conn.execute(
            """
            SELECT COALESCE(lease_owner, '(no owner)') AS owner,
                   COUNT(*) AS points,
                   MIN(COALESCE(heartbeat_ts, updated_at)) AS oldest_beat,
                   MAX(COALESCE(heartbeat_ts, updated_at)) AS newest_beat
            FROM points
            WHERE campaign=? AND status='running'
            GROUP BY COALESCE(lease_owner, '(no owner)')
            ORDER BY owner
            """,
            (campaign,),
        ).fetchall()
        return [
            {
                "owner": row["owner"],
                "points": int(row["points"]),
                "oldest_heartbeat_age_s": max(0.0, now - float(row["oldest_beat"])),
                "newest_heartbeat_age_s": max(0.0, now - float(row["newest_beat"])),
            }
            for row in rows
        ]

    def campaigns(self) -> List[Tuple[str, Dict[str, int]]]:
        """Every campaign in the store with its status counts."""
        names = [
            row["campaign"]
            for row in self._conn.execute(
                "SELECT DISTINCT campaign FROM points ORDER BY campaign"
            )
        ]
        return [(name, self.status_counts(name)) for name in names]

    def results(self, campaign: str) -> List[ScenarioResult]:
        """The ``done`` results of a campaign, in enrollment order."""
        return [record.result() for record in self.points(campaign, STATUS_DONE)]

    # -- doctor -------------------------------------------------------------------

    def integrity_report(
        self, campaign: Optional[str] = None, stale_after_s: float = 300.0
    ) -> Dict[str, Any]:
        """Audit the store for corruption and liveness anomalies.

        Checks, without modifying anything:

        * SQLite's own ``PRAGMA integrity_check``,
        * ``done`` rows whose result payload is missing or not valid JSON,
        * rows whose spec payload is not valid JSON,
        * ``running`` rows whose heartbeat is older than ``stale_after_s``
          (orphaned leases of dead drivers).

        Returns a report dict whose ``issues`` list is empty for a healthy
        store; :meth:`repair` fixes everything listed.
        """
        sqlite_ok = True
        try:
            rows = self._conn.execute("PRAGMA integrity_check").fetchall()
            sqlite_ok = len(rows) == 1 and rows[0][0] == "ok"
        except sqlite3.DatabaseError:
            sqlite_ok = False

        where = "" if campaign is None else " AND campaign=?"
        params: Tuple[Any, ...] = () if campaign is None else (campaign,)

        corrupt_results: List[Tuple[str, str]] = []
        corrupt_specs: List[Tuple[str, str]] = []
        for row in self._conn.execute(
            f"SELECT campaign, digest, name, status, spec, result FROM points "
            f"WHERE 1=1{where}",
            params,
        ):
            try:
                json.loads(row["spec"])
            except (TypeError, ValueError):
                corrupt_specs.append((row["campaign"], row["digest"]))
            if row["status"] == STATUS_DONE:
                try:
                    payload = json.loads(row["result"])
                    if not isinstance(payload, dict):
                        raise ValueError("result payload is not an object")
                except (TypeError, ValueError):
                    corrupt_results.append((row["campaign"], row["digest"]))

        cutoff = time.time() - stale_after_s
        stale_rows = self._conn.execute(
            f"""
            SELECT campaign, digest FROM points
            WHERE status='running' AND COALESCE(heartbeat_ts, updated_at) < ?{where}
            """,
            (cutoff, *params),
        ).fetchall()
        stale = [(row["campaign"], row["digest"]) for row in stale_rows]

        issues: List[str] = []
        if not sqlite_ok:
            issues.append("sqlite integrity_check failed")
        if corrupt_specs:
            issues.append(f"{len(corrupt_specs)} row(s) with corrupt spec JSON")
        if corrupt_results:
            issues.append(f"{len(corrupt_results)} done row(s) with corrupt result JSON")
        if stale:
            issues.append(f"{len(stale)} stale running row(s) (dead driver lease)")
        return {
            "path": str(self.path),
            "schema_version": STORE_SCHEMA_VERSION,
            "sqlite_ok": sqlite_ok,
            "corrupt_specs": corrupt_specs,
            "corrupt_results": corrupt_results,
            "stale_running": stale,
            "issues": issues,
        }

    def repair(
        self, campaign: Optional[str] = None, stale_after_s: float = 300.0
    ) -> Dict[str, int]:
        """Fix what :meth:`integrity_report` found; returns repair counts.

        ``done`` rows with corrupt result payloads and stale ``running``
        rows are demoted to ``failed`` with an auditable error text, so the
        normal resume machinery recomputes them; rows with corrupt *spec*
        payloads cannot be recomputed (the work definition itself is gone)
        and are deleted.
        """
        report = self.integrity_report(campaign, stale_after_s=stale_after_s)
        now = time.time()

        def operate(conn: sqlite3.Connection) -> None:
            for camp, digest in report["corrupt_results"]:
                conn.execute(
                    """
                    UPDATE points
                    SET status='failed', result=NULL,
                        error='doctor: corrupt result payload discarded',
                        lease_owner=NULL, heartbeat_ts=NULL,
                        degraded=0, fallback_solver=NULL, updated_at=?
                    WHERE campaign=? AND digest=?
                    """,
                    (now, camp, digest),
                )
            for camp, digest in report["stale_running"]:
                conn.execute(
                    """
                    UPDATE points
                    SET status='failed',
                        error='interrupted: stale lease reclaimed by doctor',
                        lease_owner=NULL, heartbeat_ts=NULL, updated_at=?
                    WHERE campaign=? AND digest=?
                    """,
                    (now, camp, digest),
                )
            for camp, digest in report["corrupt_specs"]:
                conn.execute(
                    "DELETE FROM points WHERE campaign=? AND digest=?", (camp, digest)
                )

        self._write(operate, key=campaign or "")
        return {
            "results_discarded": len(report["corrupt_results"]),
            "stale_reclaimed": len(report["stale_running"]),
            "specs_deleted": len(report["corrupt_specs"]),
        }

    # -- metrics ------------------------------------------------------------------

    def record_metrics(
        self,
        campaign: str,
        rows: Sequence[Tuple[str, MetricStats]],
        run_id: Optional[int] = None,
    ) -> int:
        """Persist one run's metric rollups as ``(kind, stats)`` rows.

        Each invocation of the campaign runner records under the campaign's
        next ``run_id`` (or an explicit one), so the latency history of a
        long-lived campaign stays queryable run by run.  Returns the run id
        used.
        """
        if run_id is None:
            latest = self.latest_metrics_run(campaign)
            run_id = 1 if latest is None else latest + 1
        now = time.time()

        def operate(conn: sqlite3.Connection) -> None:
            for kind, stats in rows:
                conn.execute(
                    """
                    INSERT OR REPLACE INTO metrics
                        (campaign, run_id, kind, name, count, total,
                         minimum, maximum, p50, p90, p99, created_at)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        campaign,
                        run_id,
                        kind,
                        stats.name,
                        stats.count,
                        stats.total,
                        stats.minimum,
                        stats.maximum,
                        stats.p50,
                        stats.p90,
                        stats.p99,
                        now,
                    ),
                )

        with span("store.record_metrics", campaign=campaign, n_rows=len(rows)):
            self._write(operate, key=campaign)
        return run_id

    def latest_metrics_run(self, campaign: str) -> Optional[int]:
        """The most recent metrics ``run_id`` of a campaign (None if none)."""
        row = self._conn.execute(
            "SELECT MAX(run_id) AS top FROM metrics WHERE campaign=?", (campaign,)
        ).fetchone()
        return None if row is None or row["top"] is None else int(row["top"])

    def metrics(
        self, campaign: str, run_id: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """One run's metric rows (latest run by default) as plain dicts."""
        if run_id is None:
            run_id = self.latest_metrics_run(campaign)
            if run_id is None:
                return []
        rows = self._conn.execute(
            "SELECT * FROM metrics WHERE campaign=? AND run_id=? ORDER BY kind, name",
            (campaign, run_id),
        ).fetchall()
        return [dict(row) for row in rows]

    # -- export -------------------------------------------------------------------

    def export(self, campaign: str, path: PathLike) -> int:
        """Write the campaign's completed results as a JSONL store.

        The output goes through the exact writer the in-memory batch runner
        uses, so it is byte-compatible with :func:`run_batch`'s
        ``results_path`` output and consumable by every downstream reader.
        Returns the number of records written.
        """
        from .batch import write_results_jsonl

        results = self.results(campaign)
        write_results_jsonl(results, path)
        return len(results)


# A backend URL looks like "scheme://...", where the scheme follows the
# RFC 3986 grammar (letter, then letters/digits/+/-/.).  Plain filesystem
# paths never match, so resolve_store can tell them apart unambiguously.
_URL_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.\-]*://")


def resolve_store(
    store: Union["ResultStore", PathLike, None]
) -> Optional[ResultStore]:
    """Normalise the ``store`` argument of the campaign entry points.

    ``None`` or the string ``"none"`` select the pure in-memory path; a
    path opens (or creates) a store there; a backend URL such as
    ``sqlite:///results.sqlite`` is dispatched through the scheme registry
    in :mod:`repro.runner.backend`; an existing :class:`ResultStore` is
    passed through.
    """
    if store is None:
        return None
    if isinstance(store, ResultStore):
        return store
    if isinstance(store, str):
        if store.lower() == "none":
            return None
        if _URL_RE.match(store):
            # Imported lazily: backend.py imports this module at top level.
            from .backend import store_from_url

            return store_from_url(store)
    return ResultStore(store)
