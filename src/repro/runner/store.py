"""Durable, resumable campaign state: a SQLite-backed result store.

A *campaign* is a named set of scenario points whose execution state must
survive crashes, OOM kills and CTRL-C.  The :class:`ResultStore` keeps one
row per point in a SQLite database (WAL mode, so a reader -- ``repro
campaign status`` -- never blocks the writer), keyed by the campaign name
plus the scenario's stage-cache content digest
(:func:`~repro.runner.stages.scenario_content_digest`).  Each row records:

``status``
    ``pending`` (enrolled, not started), ``running`` (claimed by the
    current run), ``done`` (payload holds the full
    :class:`~repro.runner.stages.ScenarioResult` record) or ``failed``
    (``error`` holds the wrapped worker traceback).
``attempts`` / ``wall_time_s`` / ``error``
    Per-point accounting: how often the point was started, how long the
    successful run took, and the last failure text.
``spec``
    The point's full declarative :class:`~repro.scenario.ScenarioSpec`
    dictionary, so ``repro campaign resume`` can rebuild the work list from
    the store alone -- no original command line or plan file needed.

The store is written only by the parent (campaign-driving) process; worker
processes never touch it, which keeps the SQLite access single-writer and
makes a worker death unable to corrupt campaign state.  ``export`` renders
the ``done`` rows through the existing JSONL writer, byte-for-byte
compatible with :func:`~repro.runner.batch.write_results_jsonl`, so every
downstream consumer (sweep aggregation, reports) works unchanged.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..scenario.spec import ScenarioSpec
from ..telemetry import MetricStats, span
from .cache import PathLike, default_cache_dir
from .stages import ScenarioResult, scenario_content_digest

#: Environment variable overriding the default store location.
STORE_PATH_ENV = "REPRO_STORE_PATH"

#: Bump when the table layout changes; old stores are rejected, not migrated.
STORE_SCHEMA_VERSION = 1

#: Row lifecycle states.
STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

_STATUSES = (STATUS_PENDING, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    campaign TEXT NOT NULL,
    digest TEXT NOT NULL,
    name TEXT NOT NULL,
    position INTEGER NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    wall_time_s REAL,
    error TEXT,
    spec TEXT NOT NULL,
    result TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    PRIMARY KEY (campaign, digest)
);
CREATE INDEX IF NOT EXISTS idx_points_status ON points (campaign, status);
CREATE TABLE IF NOT EXISTS metrics (
    campaign TEXT NOT NULL,
    run_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    count INTEGER NOT NULL,
    total REAL NOT NULL,
    minimum REAL NOT NULL,
    maximum REAL NOT NULL,
    p50 REAL NOT NULL,
    p90 REAL NOT NULL,
    p99 REAL NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (campaign, run_id, kind, name)
);
"""

#: Metric row kinds persisted by the campaign runner.  ``stage_time`` rows
#: hold per-stage wall-time distributions over the run's computed points;
#: ``stage_hit_time`` / ``stage_recompute_time`` split the cacheable stages
#: by cache outcome (so cache savings are visible in seconds, not counts);
#: ``point_time`` is the whole-point distribution and ``counter`` plain
#: counts (computed/skipped/failed/retried, cache hit totals, ...).
METRIC_KIND_STAGE_TIME = "stage_time"
METRIC_KIND_STAGE_HIT_TIME = "stage_hit_time"
METRIC_KIND_STAGE_RECOMPUTE_TIME = "stage_recompute_time"
METRIC_KIND_POINT_TIME = "point_time"
METRIC_KIND_COUNTER = "counter"


def default_store_path() -> Path:
    """Store location: ``$REPRO_STORE_PATH`` or ``<cache dir>/campaigns.sqlite``."""
    env = os.environ.get(STORE_PATH_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "campaigns.sqlite"


@dataclass(frozen=True)
class PointRecord:
    """One campaign point as stored (immutable snapshot of a row)."""

    campaign: str
    digest: str
    name: str
    position: int
    status: str
    attempts: int
    wall_time_s: Optional[float]
    error: Optional[str]
    spec_dict: Mapping[str, Any]
    result_dict: Optional[Mapping[str, Any]]
    created_at: float
    updated_at: float

    def spec(self) -> ScenarioSpec:
        """Rebuild the point's declarative scenario."""
        return ScenarioSpec.from_dict(self.spec_dict)

    def result(self) -> ScenarioResult:
        """Rebuild the stored result (``done`` rows only)."""
        if self.result_dict is None:
            raise ConfigurationError(
                f"campaign point {self.name!r} has no stored result (status {self.status})"
            )
        return ScenarioResult.from_dict(self.result_dict)


@dataclass
class CampaignSummary:
    """Outcome accounting of one campaign run (or resume).

    ``done`` counts every completed point in the campaign after the run;
    ``computed`` the points executed by *this* invocation, ``skipped`` the
    points whose stored result was reused, ``failed`` the points still
    failed after retries, and ``retried`` the number of retry attempts this
    invocation performed.  ``stage_hits`` / ``stage_recomputes`` aggregate
    the stage-cache provenance of the computed points only, so a resume
    proves it recomputed exactly the missing work; ``stage_hit_time_s`` /
    ``stage_recompute_time_s`` carry the same split in wall-clock seconds,
    so cache savings are reported as time, not just counts.
    """

    campaign: str
    n_points: int = 0
    done: int = 0
    computed: int = 0
    skipped: int = 0
    failed: int = 0
    retried: int = 0
    stage_hits: Dict[str, int] = field(default_factory=dict)
    stage_recomputes: Dict[str, int] = field(default_factory=dict)
    stage_hit_time_s: Dict[str, float] = field(default_factory=dict)
    stage_recompute_time_s: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "n_points": self.n_points,
            "done": self.done,
            "computed": self.computed,
            "skipped": self.skipped,
            "failed": self.failed,
            "retried": self.retried,
            "stage_hits": dict(self.stage_hits),
            "stage_recomputes": dict(self.stage_recomputes),
            "stage_hit_time_s": dict(self.stage_hit_time_s),
            "stage_recompute_time_s": dict(self.stage_recompute_time_s),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSummary":
        try:
            return cls(
                campaign=str(data["campaign"]),
                n_points=int(data.get("n_points", 0)),
                done=int(data.get("done", 0)),
                computed=int(data.get("computed", 0)),
                skipped=int(data.get("skipped", 0)),
                failed=int(data.get("failed", 0)),
                retried=int(data.get("retried", 0)),
                stage_hits={str(k): int(v) for k, v in data.get("stage_hits", {}).items()},
                stage_recomputes={
                    str(k): int(v) for k, v in data.get("stage_recomputes", {}).items()
                },
                stage_hit_time_s={
                    str(k): float(v) for k, v in data.get("stage_hit_time_s", {}).items()
                },
                stage_recompute_time_s={
                    str(k): float(v)
                    for k, v in data.get("stage_recompute_time_s", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed campaign summary: {exc}") from exc

    def report(self) -> str:
        """One-line human-readable summary."""
        return (
            f"campaign {self.campaign!r}: {self.done}/{self.n_points} done "
            f"(computed {self.computed}, skipped {self.skipped}, "
            f"failed {self.failed}, retried {self.retried})"
        )


class ResultStore:
    """SQLite-backed durable store of campaign points.

    Parameters
    ----------
    path:
        Database file (created on first use, parent directories included).
        Defaults to :func:`default_store_path`.

    The store is safe to reopen concurrently for *reading* (WAL mode); the
    campaign runner is the single writer.  Use as a context manager or call
    :meth:`close` to release the connection.

    Example
    -------
    >>> import tempfile, os
    >>> from repro.runner.store import ResultStore
    >>> from repro.scenario import get_scenario
    >>> tmp = tempfile.TemporaryDirectory()
    >>> store = ResultStore(os.path.join(tmp.name, "campaigns.sqlite"))
    >>> points = store.enroll("demo", [get_scenario("residential-south")])
    >>> [p.status for p in points]
    ['pending']
    >>> store.status_counts("demo")["pending"]
    1
    >>> store.close(); tmp.cleanup()
    """

    def __init__(self, path: Union[PathLike, None] = None) -> None:
        self.path = Path(path) if path is not None else default_store_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
            elif int(row["value"]) != STORE_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"result store {self.path} has schema version {row['value']}, "
                    f"this build expects {STORE_SCHEMA_VERSION}"
                )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- enrollment ---------------------------------------------------------------

    def enroll(
        self, campaign: str, specs: Sequence[ScenarioSpec]
    ) -> List[PointRecord]:
        """Register the campaign's points, keeping any existing state.

        Idempotent: a digest already enrolled keeps its row (status,
        attempts, result) untouched, so enrolling the same fleet again is
        exactly the resume entry point.  Returns the stored records in
        ``specs`` order.
        """
        if not campaign:
            raise ConfigurationError("a campaign needs a non-empty name")
        digests = [scenario_content_digest(spec) for spec in specs]
        if len(set(digests)) != len(digests):
            raise ConfigurationError(
                f"campaign {campaign!r}: duplicate scenario content digests "
                "(identical specs enrolled twice)"
            )
        now = time.time()
        with span("store.enroll", campaign=campaign, n_specs=len(specs)):
            with self._conn:
                row = self._conn.execute(
                    "SELECT COALESCE(MAX(position), -1) AS top FROM points WHERE campaign=?",
                    (campaign,),
                ).fetchone()
                next_position = int(row["top"]) + 1
                for spec, digest in zip(specs, digests):
                    cursor = self._conn.execute(
                        """
                        INSERT OR IGNORE INTO points
                            (campaign, digest, name, position, status, attempts,
                             spec, created_at, updated_at)
                        VALUES (?, ?, ?, ?, 'pending', 0, ?, ?, ?)
                        """,
                        (
                            campaign,
                            digest,
                            spec.name,
                            next_position,
                            json.dumps(spec.to_dict(), sort_keys=True),
                            now,
                            now,
                        ),
                    )
                    if cursor.rowcount:
                        next_position += 1
        return [self.point(campaign, digest) for digest in digests]

    # -- state transitions --------------------------------------------------------

    def _touch(self, campaign: str, digest: str, **updates: Any) -> None:
        updates["updated_at"] = time.time()
        columns = ", ".join(f"{name}=?" for name in updates)
        with self._conn:
            cursor = self._conn.execute(
                f"UPDATE points SET {columns} WHERE campaign=? AND digest=?",
                (*updates.values(), campaign, digest),
            )
        if cursor.rowcount == 0:
            raise ConfigurationError(
                f"campaign {campaign!r} has no point with digest {digest[:12]}..."
            )

    def mark_running(self, campaign: str, digest: str) -> None:
        """Claim a point for execution (increments its attempt count)."""
        with self._conn:
            cursor = self._conn.execute(
                """
                UPDATE points
                SET status=?, attempts=attempts + 1, error=NULL, updated_at=?
                WHERE campaign=? AND digest=?
                """,
                (STATUS_RUNNING, time.time(), campaign, digest),
            )
        if cursor.rowcount == 0:
            raise ConfigurationError(
                f"campaign {campaign!r} has no point with digest {digest[:12]}..."
            )

    def mark_done(
        self,
        campaign: str,
        digest: str,
        result: Union[ScenarioResult, Mapping[str, Any]],
        wall_time_s: Optional[float] = None,
    ) -> None:
        """Record a completed point with its full result payload."""
        record = result.to_dict() if isinstance(result, ScenarioResult) else dict(result)
        with span("store.mark_done", campaign=campaign):
            self._touch(
                campaign,
                digest,
                status=STATUS_DONE,
                result=json.dumps(record, sort_keys=True),
                wall_time_s=wall_time_s,
                error=None,
            )

    def mark_failed(self, campaign: str, digest: str, error: str) -> None:
        """Record a failed attempt with the wrapped worker error text."""
        with span("store.mark_failed", campaign=campaign):
            self._touch(campaign, digest, status=STATUS_FAILED, error=str(error))

    def reset_running(self, campaign: str) -> int:
        """Fail rows stuck in ``running`` (a previous driver died mid-run).

        Returns the number of rows transitioned.  The rows become ``failed``
        (not ``pending``) so the interruption stays auditable in ``error``;
        the campaign runner re-attempts failed rows on resume anyway.
        """
        now = time.time()
        with self._conn:
            cursor = self._conn.execute(
                """
                UPDATE points
                SET status='failed',
                    error='interrupted: driver exited while the point was running',
                    updated_at=?
                WHERE campaign=? AND status='running'
                """,
                (now, campaign),
            )
        return cursor.rowcount

    # -- queries ------------------------------------------------------------------

    @staticmethod
    def _record(row: sqlite3.Row) -> PointRecord:
        return PointRecord(
            campaign=row["campaign"],
            digest=row["digest"],
            name=row["name"],
            position=int(row["position"]),
            status=row["status"],
            attempts=int(row["attempts"]),
            wall_time_s=None if row["wall_time_s"] is None else float(row["wall_time_s"]),
            error=row["error"],
            spec_dict=json.loads(row["spec"]),
            result_dict=None if row["result"] is None else json.loads(row["result"]),
            created_at=float(row["created_at"]),
            updated_at=float(row["updated_at"]),
        )

    def point(self, campaign: str, digest: str) -> PointRecord:
        """The stored record of one point."""
        row = self._conn.execute(
            "SELECT * FROM points WHERE campaign=? AND digest=?", (campaign, digest)
        ).fetchone()
        if row is None:
            raise ConfigurationError(
                f"campaign {campaign!r} has no point with digest {digest[:12]}..."
            )
        return self._record(row)

    def points(
        self, campaign: str, status: Optional[str] = None
    ) -> List[PointRecord]:
        """All points of a campaign in enrollment order (optionally filtered)."""
        if status is not None and status not in _STATUSES:
            raise ConfigurationError(
                f"unknown status {status!r}; expected one of {', '.join(_STATUSES)}"
            )
        if status is None:
            rows = self._conn.execute(
                "SELECT * FROM points WHERE campaign=? ORDER BY position", (campaign,)
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM points WHERE campaign=? AND status=? ORDER BY position",
                (campaign, status),
            ).fetchall()
        return [self._record(row) for row in rows]

    def status_counts(self, campaign: str) -> Dict[str, int]:
        """Point counts per status (every status key present, possibly 0)."""
        counts = {status: 0 for status in _STATUSES}
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM points WHERE campaign=? GROUP BY status",
            (campaign,),
        ):
            counts[row["status"]] = int(row["n"])
        return counts

    def campaigns(self) -> List[Tuple[str, Dict[str, int]]]:
        """Every campaign in the store with its status counts."""
        names = [
            row["campaign"]
            for row in self._conn.execute(
                "SELECT DISTINCT campaign FROM points ORDER BY campaign"
            )
        ]
        return [(name, self.status_counts(name)) for name in names]

    def results(self, campaign: str) -> List[ScenarioResult]:
        """The ``done`` results of a campaign, in enrollment order."""
        return [record.result() for record in self.points(campaign, STATUS_DONE)]

    # -- metrics ------------------------------------------------------------------

    def record_metrics(
        self,
        campaign: str,
        rows: Sequence[Tuple[str, MetricStats]],
        run_id: Optional[int] = None,
    ) -> int:
        """Persist one run's metric rollups as ``(kind, stats)`` rows.

        Each invocation of the campaign runner records under the campaign's
        next ``run_id`` (or an explicit one), so the latency history of a
        long-lived campaign stays queryable run by run.  Returns the run id
        used.
        """
        if run_id is None:
            latest = self.latest_metrics_run(campaign)
            run_id = 1 if latest is None else latest + 1
        now = time.time()
        with span("store.record_metrics", campaign=campaign, n_rows=len(rows)):
            with self._conn:
                for kind, stats in rows:
                    self._conn.execute(
                        """
                        INSERT OR REPLACE INTO metrics
                            (campaign, run_id, kind, name, count, total,
                             minimum, maximum, p50, p90, p99, created_at)
                        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                        """,
                        (
                            campaign,
                            run_id,
                            kind,
                            stats.name,
                            stats.count,
                            stats.total,
                            stats.minimum,
                            stats.maximum,
                            stats.p50,
                            stats.p90,
                            stats.p99,
                            now,
                        ),
                    )
        return run_id

    def latest_metrics_run(self, campaign: str) -> Optional[int]:
        """The most recent metrics ``run_id`` of a campaign (None if none)."""
        row = self._conn.execute(
            "SELECT MAX(run_id) AS top FROM metrics WHERE campaign=?", (campaign,)
        ).fetchone()
        return None if row is None or row["top"] is None else int(row["top"])

    def metrics(
        self, campaign: str, run_id: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """One run's metric rows (latest run by default) as plain dicts."""
        if run_id is None:
            run_id = self.latest_metrics_run(campaign)
            if run_id is None:
                return []
        rows = self._conn.execute(
            "SELECT * FROM metrics WHERE campaign=? AND run_id=? ORDER BY kind, name",
            (campaign, run_id),
        ).fetchall()
        return [dict(row) for row in rows]

    # -- export -------------------------------------------------------------------

    def export(self, campaign: str, path: PathLike) -> int:
        """Write the campaign's completed results as a JSONL store.

        The output goes through the exact writer the in-memory batch runner
        uses, so it is byte-compatible with :func:`run_batch`'s
        ``results_path`` output and consumable by every downstream reader.
        Returns the number of records written.
        """
        from .batch import write_results_jsonl

        results = self.results(campaign)
        write_results_jsonl(results, path)
        return len(results)


def resolve_store(
    store: Union["ResultStore", PathLike, None]
) -> Optional[ResultStore]:
    """Normalise the ``store`` argument of the campaign entry points.

    ``None`` or the string ``"none"`` select the pure in-memory path; a path
    opens (or creates) a store there; an existing :class:`ResultStore` is
    passed through.
    """
    if store is None:
        return None
    if isinstance(store, ResultStore):
        return store
    if isinstance(store, str) and store.lower() == "none":
        return None
    return ResultStore(store)
