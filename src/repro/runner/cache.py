"""Content-hash disk cache for expensive pipeline stages.

The irradiance simulation dominates the pipeline's runtime, and many
workloads (fleet variants sharing a roof, solver sweeps, repeated CLI runs)
recompute identical intermediate state.  The :class:`StageCache` memoises
stage outputs on disk, keyed by a SHA-256 digest of a *content payload*: the
canonical JSON form of every input that influences the stage's result.  Two
runs -- in the same process, in parallel worker processes, or days apart --
that hash to the same payload share the cached artefact; any change to the
roof, weather, time base or model options changes the digest and invalidates
the entry automatically (there is no explicit invalidation protocol).

Entries are pickled because stage outputs are numpy-laden simulation objects.
Writes go through a temporary file followed by an atomic ``os.replace`` so
concurrent batch workers never observe half-written entries; a corrupt or
unreadable entry is treated as a miss and recomputed.

Zero-copy array sidecars
------------------------
Objects that declare a ``__cache_array_fields__`` class attribute (a tuple
of attribute names -- e.g. the irradiance block of a
:class:`~repro.solar.irradiance_map.RoofSolarField`, the horizon cube of a
:class:`~repro.solar.shading.HorizonMap`) have those arrays stored as raw
``.npy`` sidecar files next to the pickle instead of inside it.  On a hit
the sidecars are reattached with ``numpy.load(..., mmap_mode="r")``, so a
fleet of batch worker processes reading the same cached solar field share
one page-cache copy of the bulk data instead of each unpickling a private
one.  Set ``REPRO_CACHE_MMAP=0`` to load full in-memory copies instead
(e.g. when the cache directory lives on a slow network filesystem).

Integrity manifests and quarantine
----------------------------------
Every entry carries a ``<digest>.sum.json`` manifest recording the SHA-256
and byte size of the pickle and each sidecar.  The write order is sidecars
-> manifest -> pickle, so the pickle's appearance is the commit point: a
reader that finds the pickle also finds the manifest describing it, and a
crash mid-write leaves only invisible leftovers that read as plain misses.
On a hit, :meth:`StageCache.get` verifies the entry per ``verify`` mode:

``fast`` (default)
    Full hash of the pickle plus a byte-size check of each sidecar.
    Sidecar hashing is skipped so memory-mapped reads stay zero-copy.
``full``
    Additionally streams every sidecar through SHA-256 (``REPRO_CACHE_VERIFY=full``;
    detects same-size bit rot at the cost of reading the bulk data).
``off``
    No manifest checks; pre-manifest behaviour.

Any verification failure -- checksum mismatch, size mismatch, missing
manifest, unreadable pickle or sidecar -- *quarantines* the entry: all of
its files are moved to ``<root>/_quarantine/<stage>/`` with a
``.quarantined`` suffix (preserved for post-mortem, invisible to lookups
and :meth:`entry_count`), a ``cache.quarantine`` trace event and a stderr
diagnostic are emitted, and the lookup degrades to a miss.  Corruption is
therefore never an exception, only a recompute.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from .. import faults
from ..errors import ConfigurationError
from ..telemetry import emit_diagnostic, span, trace_event

PathLike = Union[str, Path]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable switching memory-mapped sidecar reads off ("0").
CACHE_MMAP_ENV = "REPRO_CACHE_MMAP"

#: Environment variable selecting the entry verification mode.
CACHE_VERIFY_ENV = "REPRO_CACHE_VERIFY"

#: The recognised ``REPRO_CACHE_VERIFY`` modes.
CACHE_VERIFY_MODES = ("off", "fast", "full")

#: Subdirectory of the cache root holding quarantined corrupt entries.
QUARANTINE_DIR = "_quarantine"

#: Bump to orphan every existing entry when the on-disk format changes.
#: Version 2: daylight-compressed solar fields + ``.npy`` array sidecars.
#: Version 3: per-entry ``.sum.json`` integrity manifests.
CACHE_FORMAT_VERSION = 3


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding used for content hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_coerce)


def _coerce(value: Any) -> Any:
    """Fallback encoder for payload values json cannot natively encode."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    if hasattr(value, "to_dict"):
        return value.to_dict()
    raise TypeError(f"payload value {value!r} is not content-hashable")


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of a content payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _mmap_default() -> bool:
    """Default for memory-mapped sidecar reads (``REPRO_CACHE_MMAP``)."""
    return os.environ.get(CACHE_MMAP_ENV, "1") != "0"


def _verify_default() -> str:
    """Default entry verification mode (``REPRO_CACHE_VERIFY``)."""
    return os.environ.get(CACHE_VERIFY_ENV) or "fast"


def _file_sha256(path: Path) -> str:
    """Stream a file through SHA-256 (used by ``full`` verification)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class _HashingHandle:
    """File-object proxy that hashes and counts everything written.

    Intercepts only ``write``; everything else (``tell``, ``flush``, ...)
    is delegated, so ``numpy.save`` and ``pickle.dump`` work unchanged.
    """

    def __init__(self, handle: Any) -> None:
        self._handle = handle
        self._digest = hashlib.sha256()
        self.size = 0

    def write(self, data: Any) -> int:
        view = memoryview(data)
        self._digest.update(view)
        self.size += view.nbytes
        return self._handle.write(data)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._handle, name)

    @property
    def sha256(self) -> str:
        return self._digest.hexdigest()


@dataclass
class _SidecarStub:
    """Pickled form of an entry whose bulk arrays live in ``.npy`` sidecars.

    ``value`` is a shallow copy of the original object with the listed
    attributes set to ``None``; :meth:`StageCache.get` reattaches the
    sidecar arrays before returning it.
    """

    value: Any
    fields: Tuple[str, ...]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`StageCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }


@dataclass
class StageCache:
    """A directory-backed, content-addressed store of pickled stage outputs.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  Defaults to
        :func:`default_cache_dir`.
    enabled:
        When False every lookup misses and nothing is written; lets callers
        thread one cache handle through the pipeline and switch caching off
        with a flag (the CLI's ``--no-cache``).
    mmap_arrays:
        When True (the default, overridable via ``REPRO_CACHE_MMAP=0``)
        array sidecars are reattached as read-only memory maps instead of
        in-memory copies.
    verify:
        Entry verification mode: ``"fast"`` (default, overridable via
        ``REPRO_CACHE_VERIFY``), ``"full"``, or ``"off"``.

    Example
    -------
    The cache is content-addressed: the payload *is* the key, and the
    compute callable only runs on a miss.

    >>> import tempfile
    >>> from repro.runner import StageCache
    >>> tmp = tempfile.TemporaryDirectory()
    >>> cache = StageCache(root=tmp.name)
    >>> cache.get_or_compute("stage", {"pitch": 0.4}, lambda: "computed")
    ('computed', False)
    >>> cache.get_or_compute("stage", {"pitch": 0.4}, lambda: "never called")
    ('computed', True)
    >>> cache.get_or_compute("stage", {"pitch": 0.5}, lambda: "other key")
    ('other key', False)
    >>> cache.stats.as_dict()
    {'hits': 1, 'misses': 2, 'writes': 2, 'quarantined': 0}
    >>> tmp.cleanup()
    """

    root: Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    mmap_arrays: bool = field(default_factory=_mmap_default)
    verify: str = field(default_factory=_verify_default)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.verify not in CACHE_VERIFY_MODES:
            known = ", ".join(CACHE_VERIFY_MODES)
            raise ConfigurationError(
                f"invalid cache verify mode {self.verify!r} "
                f"(set {CACHE_VERIFY_ENV} to one of: {known})"
            )

    # -- key handling -------------------------------------------------------------

    def path_for(self, stage: str, payload: Any) -> Path:
        """On-disk location of the entry for ``payload`` under ``stage``."""
        if not stage or any(sep in stage for sep in "/\\"):
            raise ConfigurationError(f"invalid cache stage name {stage!r}")
        digest = content_digest({"format": CACHE_FORMAT_VERSION, "payload": payload})
        return self.root / stage / f"{digest}.pkl"

    @staticmethod
    def _sidecar_path(path: Path, name: str) -> Path:
        """On-disk location of one array sidecar of the entry at ``path``."""
        return path.with_name(f"{path.stem}.{name}.npy")

    @staticmethod
    def _manifest_path(path: Path) -> Path:
        """On-disk location of the integrity manifest of the entry at ``path``."""
        return path.with_name(f"{path.stem}.sum.json")

    @classmethod
    def _entry_bytes(cls, path: Path, sidecar_fields: Tuple[str, ...]) -> int:
        """On-disk size of an entry (pickle + sidecars), for trace attrs.

        Only called while a tracer is recording -- the ``stat`` calls are
        not part of the untraced hot path.
        """
        total = 0
        for candidate in (path, *(cls._sidecar_path(path, name) for name in sidecar_fields)):
            try:
                total += candidate.stat().st_size
            except OSError:
                pass
        return total

    # -- integrity ----------------------------------------------------------------

    def _load_manifest(self, path: Path) -> Optional[Dict[str, Dict[str, Any]]]:
        """The ``{filename: {sha256, size}}`` map of an entry, or None."""
        try:
            data = json.loads(self._manifest_path(path).read_text(encoding="utf-8"))
            files = data["files"]
            if not isinstance(files, dict):
                return None
            return files
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _quarantine(self, stage: str, path: Path, reason: str) -> None:
        """Move every file of a corrupt entry out of the lookup path.

        The files keep their names plus a ``.quarantined`` suffix under
        ``<root>/_quarantine/<stage>/`` so they stay available for
        post-mortem inspection but can never satisfy (or re-poison) a
        future lookup, and are not counted by :meth:`entry_count`.
        """
        target_dir = self.root / QUARANTINE_DIR / stage
        moved = []
        candidates = [path, self._manifest_path(path)]
        candidates.extend(sorted(path.parent.glob(f"{path.stem}.*.npy")))
        for candidate in candidates:
            if not candidate.exists():
                continue
            try:
                target_dir.mkdir(parents=True, exist_ok=True)
                os.replace(candidate, target_dir / f"{candidate.name}.quarantined")
                moved.append(candidate.name)
            except OSError:
                # Last resort: an entry we cannot move must not survive as
                # a lookup target either.
                try:
                    candidate.unlink()
                except OSError:
                    pass
        self.stats.quarantined += 1
        trace_event("cache.quarantine", stage=stage, entry=path.stem, reason=reason)
        emit_diagnostic(
            f"cache: quarantined corrupt entry {stage}/{path.stem} "
            f"({reason}; files: {', '.join(moved) or 'none'})"
        )

    def _verify_pickle(self, raw: bytes, path: Path) -> Optional[str]:
        """Check the pickle bytes against the manifest; a reason on failure."""
        files = self._load_manifest(path)
        if files is None:
            return "missing or unreadable checksum manifest"
        record = files.get(path.name)
        if record is None:
            return "manifest lacks pickle record"
        if len(raw) != record.get("size"):
            return f"pickle size mismatch ({len(raw)} != {record.get('size')})"
        if hashlib.sha256(raw).hexdigest() != record.get("sha256"):
            return "pickle checksum mismatch"
        return None

    def _verify_sidecar(self, sidecar: Path, path: Path) -> Optional[str]:
        """Check one sidecar file against the manifest; a reason on failure."""
        files = self._load_manifest(path)
        if files is None:
            return "missing or unreadable checksum manifest"
        record = files.get(sidecar.name)
        if record is None:
            return f"manifest lacks sidecar record for {sidecar.name}"
        try:
            size = sidecar.stat().st_size
        except OSError:
            return f"missing sidecar {sidecar.name}"
        if size != record.get("size"):
            return f"sidecar {sidecar.name} size mismatch ({size} != {record.get('size')})"
        if self.verify == "full" and _file_sha256(sidecar) != record.get("sha256"):
            return f"sidecar {sidecar.name} checksum mismatch"
        return None

    # -- lookup / store -----------------------------------------------------------

    def get(self, stage: str, payload: Any) -> Tuple[Any, bool]:
        """Look up a stage result.  Returns ``(value, hit)``.

        A present-but-corrupt entry (failed checksum, truncated pickle or
        sidecar, missing manifest) is quarantined and returned as a miss;
        corruption never raises.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None, False
        path = self.path_for(stage, payload)
        with span("cache.get", stage=stage) as cache_span:
            sidecar_fields: Tuple[str, ...] = ()
            sidecar_s = 0.0
            started = time.perf_counter()
            try:
                raw = path.read_bytes()
            except OSError:
                # Absent entry (or a partial write that never published its
                # pickle): an ordinary miss, nothing to quarantine.
                self.stats.misses += 1
                cache_span.set(hit=False)
                return None, False
            if self.verify != "off":
                reason = self._verify_pickle(raw, path)
                if reason is not None:
                    self._quarantine(stage, path, reason)
                    self.stats.misses += 1
                    cache_span.set(hit=False)
                    return None, False
            try:
                value = pickle.loads(raw)
            except (
                pickle.PickleError,
                EOFError,
                AttributeError,
                ImportError,
                IndexError,
                ValueError,
            ):
                self._quarantine(stage, path, "unreadable pickle")
                self.stats.misses += 1
                cache_span.set(hit=False)
                return None, False
            if isinstance(value, _SidecarStub):
                stub = value.value
                sidecar_fields = value.fields
                mmap_mode = "r" if self.mmap_arrays else None
                sidecar_started = time.perf_counter()
                for name in value.fields:
                    sidecar = self._sidecar_path(path, name)
                    if self.verify != "off":
                        reason = self._verify_sidecar(sidecar, path)
                        if reason is not None:
                            self._quarantine(stage, path, reason)
                            self.stats.misses += 1
                            cache_span.set(hit=False)
                            return None, False
                    try:
                        array = np.load(sidecar, mmap_mode=mmap_mode)
                    except (OSError, ValueError, EOFError, pickle.PickleError):
                        self._quarantine(stage, path, f"unreadable sidecar {sidecar.name}")
                        self.stats.misses += 1
                        cache_span.set(hit=False)
                        return None, False
                    object.__setattr__(stub, name, array)
                sidecar_s = time.perf_counter() - sidecar_started
                value = stub
            self.stats.hits += 1
            if cache_span.active:
                total_s = time.perf_counter() - started
                cache_span.set(
                    hit=True,
                    bytes=self._entry_bytes(path, sidecar_fields),
                    pickle_s=round(total_s - sidecar_s, 9),
                    sidecar_s=round(sidecar_s, 9),
                )
            return value, True

    def put(self, stage: str, payload: Any, value: Any) -> None:
        """Store a stage result atomically (no-op when disabled).

        The declared ``__cache_array_fields__`` of ``value`` (if any) are
        written as raw ``.npy`` sidecars first, then the ``.sum.json``
        integrity manifest, then the pickle -- the pickle's atomic rename
        is the commit point, so a concurrent reader either sees the
        complete, manifest-covered entry or a miss.
        """
        if not self.enabled:
            return
        path = self.path_for(stage, payload)
        path.parent.mkdir(parents=True, exist_ok=True)

        with span("cache.put", stage=stage) as cache_span:
            stored = value
            sidecar_fields = tuple(getattr(type(value), "__cache_array_fields__", ()) or ())
            sidecar_s = 0.0
            started = time.perf_counter()
            manifest_files: Dict[str, Dict[str, Any]] = {}
            if sidecar_fields:
                stored = copy.copy(value)
                sidecar_started = time.perf_counter()
                for name in sidecar_fields:
                    array = np.asarray(getattr(value, name))
                    sidecar = self._sidecar_path(path, name)
                    checksum = self._write_atomic(
                        sidecar, lambda h, a=array: np.save(h, a)
                    )
                    manifest_files[sidecar.name] = checksum
                    object.__setattr__(stored, name, None)
                sidecar_s = time.perf_counter() - sidecar_started
                stored = _SidecarStub(value=stored, fields=sidecar_fields)

            raw = pickle.dumps(stored, protocol=pickle.HIGHEST_PROTOCOL)
            manifest_files[path.name] = {
                "sha256": hashlib.sha256(raw).hexdigest(),
                "size": len(raw),
            }
            manifest = json.dumps(
                {"format": CACHE_FORMAT_VERSION, "files": manifest_files},
                sort_keys=True,
            ).encode("utf-8")
            self._write_atomic(self._manifest_path(path), lambda h: h.write(manifest))
            self._write_atomic(path, lambda h: h.write(raw))
            self.stats.writes += 1
            if faults.fire("cache.corrupt", key=stage):
                # Chaos hook: bit-rot the entry we just published.  The
                # truncated pickle no longer matches its manifest, so the
                # next reader must quarantine it and recompute.
                with open(path, "r+b") as handle:
                    handle.truncate(max(1, len(raw) // 2))
            if cache_span.active:
                total_s = time.perf_counter() - started
                cache_span.set(
                    bytes=self._entry_bytes(path, sidecar_fields),
                    pickle_s=round(total_s - sidecar_s, 9),
                    sidecar_s=round(sidecar_s, 9),
                )

    @staticmethod
    def _write_atomic(path: Path, write: Callable[[Any], None]) -> Dict[str, Any]:
        """Write a file through a temporary + atomic ``os.replace``.

        Returns the ``{"sha256", "size"}`` record of the written bytes
        (hashed in-flight through a proxy handle) for the entry manifest.
        """
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                hashing = _HashingHandle(handle)
                write(hashing)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return {"sha256": hashing.sha256, "size": hashing.size}

    def get_or_compute(
        self, stage: str, payload: Any, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """Return the cached value or compute-and-store it.

        Returns ``(value, hit)`` where ``hit`` tells whether the value came
        from the cache.
        """
        value, hit = self.get(stage, payload)
        if hit:
            return value, True
        value = compute()
        self.put(stage, payload, value)
        return value, False

    # -- maintenance --------------------------------------------------------------

    def clear(self, stage: Optional[str] = None) -> int:
        """Delete cached entries (one stage or everything).

        Array sidecars, integrity manifests and quarantined files are
        removed along with their entries; the returned count is the number
        of *entries* (pickles) deleted.
        """
        base = self.root / stage if stage else self.root
        removed = 0
        if base.exists():
            for path in sorted(base.rglob("*.pkl")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for pattern in ("*.npy", "*.sum.json", "*.tmp"):
                for path in sorted(base.rglob(pattern)):
                    try:
                        path.unlink()
                    except OSError:
                        pass
        quarantine = self.root / QUARANTINE_DIR
        if stage:
            quarantine = quarantine / stage
        shutil.rmtree(quarantine, ignore_errors=True)
        return removed

    def entry_count(self) -> int:
        """Number of (non-quarantined) entries currently stored."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))


def resolve_cache(
    cache: Union[StageCache, PathLike, None], enabled: bool = True
) -> StageCache:
    """Normalise the cache argument accepted by runner entry points.

    ``None`` means the default location; a path means a cache rooted there.
    An existing :class:`StageCache` is passed through unless ``enabled`` is
    False, in which case a disabled view of the same root is returned --
    either the handle's own flag or the caller's ``use_cache=False`` can
    switch caching off, and neither can override the other's opt-out.
    """
    if isinstance(cache, StageCache):
        if cache.enabled and not enabled:
            return StageCache(
                root=cache.root,
                enabled=False,
                stats=cache.stats,
                mmap_arrays=cache.mmap_arrays,
                verify=cache.verify,
            )
        return cache
    if cache is None:
        return StageCache(enabled=enabled)
    return StageCache(root=Path(cache), enabled=enabled)
