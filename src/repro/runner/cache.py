"""Content-hash disk cache for expensive pipeline stages.

The irradiance simulation dominates the pipeline's runtime, and many
workloads (fleet variants sharing a roof, solver sweeps, repeated CLI runs)
recompute identical intermediate state.  The :class:`StageCache` memoises
stage outputs on disk, keyed by a SHA-256 digest of a *content payload*: the
canonical JSON form of every input that influences the stage's result.  Two
runs -- in the same process, in parallel worker processes, or days apart --
that hash to the same payload share the cached artefact; any change to the
roof, weather, time base or model options changes the digest and invalidates
the entry automatically (there is no explicit invalidation protocol).

Entries are pickled because stage outputs are numpy-laden simulation objects.
Writes go through a temporary file followed by an atomic ``os.replace`` so
concurrent batch workers never observe half-written entries; a corrupt or
unreadable entry is treated as a miss and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

from ..errors import ConfigurationError

PathLike = Union[str, Path]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to orphan every existing entry when the on-disk format changes.
CACHE_FORMAT_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding used for content hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_coerce)


def _coerce(value: Any) -> Any:
    """Fallback encoder for payload values json cannot natively encode."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    if hasattr(value, "to_dict"):
        return value.to_dict()
    raise TypeError(f"payload value {value!r} is not content-hashable")


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of a content payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`StageCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


@dataclass
class StageCache:
    """A directory-backed, content-addressed store of pickled stage outputs.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  Defaults to
        :func:`default_cache_dir`.
    enabled:
        When False every lookup misses and nothing is written; lets callers
        thread one cache handle through the pipeline and switch caching off
        with a flag (the CLI's ``--no-cache``).
    """

    root: Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- key handling -------------------------------------------------------------

    def path_for(self, stage: str, payload: Any) -> Path:
        """On-disk location of the entry for ``payload`` under ``stage``."""
        if not stage or any(sep in stage for sep in "/\\"):
            raise ConfigurationError(f"invalid cache stage name {stage!r}")
        digest = content_digest({"format": CACHE_FORMAT_VERSION, "payload": payload})
        return self.root / stage / f"{digest}.pkl"

    # -- lookup / store -----------------------------------------------------------

    def get(self, stage: str, payload: Any) -> Tuple[Any, bool]:
        """Look up a stage result.  Returns ``(value, hit)``."""
        if not self.enabled:
            self.stats.misses += 1
            return None, False
        path = self.path_for(stage, payload)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            self.stats.misses += 1
            return None, False
        self.stats.hits += 1
        return value, True

    def put(self, stage: str, payload: Any, value: Any) -> None:
        """Store a stage result atomically (no-op when disabled)."""
        if not self.enabled:
            return
        path = self.path_for(stage, payload)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def get_or_compute(
        self, stage: str, payload: Any, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """Return the cached value or compute-and-store it.

        Returns ``(value, hit)`` where ``hit`` tells whether the value came
        from the cache.
        """
        value, hit = self.get(stage, payload)
        if hit:
            return value, True
        value = compute()
        self.put(stage, payload, value)
        return value, False

    # -- maintenance --------------------------------------------------------------

    def clear(self, stage: Optional[str] = None) -> int:
        """Delete cached entries (one stage or everything); returns the count."""
        base = self.root / stage if stage else self.root
        removed = 0
        if not base.exists():
            return removed
        for path in sorted(base.rglob("*.pkl")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def entry_count(self) -> int:
        """Number of entries currently stored."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))


def resolve_cache(
    cache: Union[StageCache, PathLike, None], enabled: bool = True
) -> StageCache:
    """Normalise the cache argument accepted by runner entry points.

    ``None`` means the default location; a path means a cache rooted there.
    An existing :class:`StageCache` is passed through unless ``enabled`` is
    False, in which case a disabled view of the same root is returned --
    either the handle's own flag or the caller's ``use_cache=False`` can
    switch caching off, and neither can override the other's opt-out.
    """
    if isinstance(cache, StageCache):
        if cache.enabled and not enabled:
            return StageCache(root=cache.root, enabled=False, stats=cache.stats)
        return cache
    if cache is None:
        return StageCache(enabled=enabled)
    return StageCache(root=Path(cache), enabled=enabled)
