"""Content-hash disk cache for expensive pipeline stages.

The irradiance simulation dominates the pipeline's runtime, and many
workloads (fleet variants sharing a roof, solver sweeps, repeated CLI runs)
recompute identical intermediate state.  The :class:`StageCache` memoises
stage outputs on disk, keyed by a SHA-256 digest of a *content payload*: the
canonical JSON form of every input that influences the stage's result.  Two
runs -- in the same process, in parallel worker processes, or days apart --
that hash to the same payload share the cached artefact; any change to the
roof, weather, time base or model options changes the digest and invalidates
the entry automatically (there is no explicit invalidation protocol).

Entries are pickled because stage outputs are numpy-laden simulation objects.
Writes go through a temporary file followed by an atomic ``os.replace`` so
concurrent batch workers never observe half-written entries; a corrupt or
unreadable entry is treated as a miss and recomputed.

Zero-copy array sidecars
------------------------
Objects that declare a ``__cache_array_fields__`` class attribute (a tuple
of attribute names -- e.g. the irradiance block of a
:class:`~repro.solar.irradiance_map.RoofSolarField`, the horizon cube of a
:class:`~repro.solar.shading.HorizonMap`) have those arrays stored as raw
``.npy`` sidecar files next to the pickle instead of inside it.  On a hit
the sidecars are reattached with ``numpy.load(..., mmap_mode="r")``, so a
fleet of batch worker processes reading the same cached solar field share
one page-cache copy of the bulk data instead of each unpickling a private
one.  Set ``REPRO_CACHE_MMAP=0`` to load full in-memory copies instead
(e.g. when the cache directory lives on a slow network filesystem).
Sidecars are written before the pickle and a missing/corrupt sidecar turns
the whole entry into a miss, preserving the atomicity guarantee.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..telemetry import span

PathLike = Union[str, Path]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable switching memory-mapped sidecar reads off ("0").
CACHE_MMAP_ENV = "REPRO_CACHE_MMAP"

#: Bump to orphan every existing entry when the on-disk format changes.
#: Version 2: daylight-compressed solar fields + ``.npy`` array sidecars.
CACHE_FORMAT_VERSION = 2


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding used for content hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_coerce)


def _coerce(value: Any) -> Any:
    """Fallback encoder for payload values json cannot natively encode."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    if hasattr(value, "to_dict"):
        return value.to_dict()
    raise TypeError(f"payload value {value!r} is not content-hashable")


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of a content payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _mmap_default() -> bool:
    """Default for memory-mapped sidecar reads (``REPRO_CACHE_MMAP``)."""
    return os.environ.get(CACHE_MMAP_ENV, "1") != "0"


@dataclass
class _SidecarStub:
    """Pickled form of an entry whose bulk arrays live in ``.npy`` sidecars.

    ``value`` is a shallow copy of the original object with the listed
    attributes set to ``None``; :meth:`StageCache.get` reattaches the
    sidecar arrays before returning it.
    """

    value: Any
    fields: Tuple[str, ...]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`StageCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


@dataclass
class StageCache:
    """A directory-backed, content-addressed store of pickled stage outputs.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  Defaults to
        :func:`default_cache_dir`.
    enabled:
        When False every lookup misses and nothing is written; lets callers
        thread one cache handle through the pipeline and switch caching off
        with a flag (the CLI's ``--no-cache``).
    mmap_arrays:
        When True (the default, overridable via ``REPRO_CACHE_MMAP=0``)
        array sidecars are reattached as read-only memory maps instead of
        in-memory copies.

    Example
    -------
    The cache is content-addressed: the payload *is* the key, and the
    compute callable only runs on a miss.

    >>> import tempfile
    >>> from repro.runner import StageCache
    >>> tmp = tempfile.TemporaryDirectory()
    >>> cache = StageCache(root=tmp.name)
    >>> cache.get_or_compute("stage", {"pitch": 0.4}, lambda: "computed")
    ('computed', False)
    >>> cache.get_or_compute("stage", {"pitch": 0.4}, lambda: "never called")
    ('computed', True)
    >>> cache.get_or_compute("stage", {"pitch": 0.5}, lambda: "other key")
    ('other key', False)
    >>> cache.stats.as_dict()
    {'hits': 1, 'misses': 2, 'writes': 2}
    >>> tmp.cleanup()
    """

    root: Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    mmap_arrays: bool = field(default_factory=_mmap_default)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- key handling -------------------------------------------------------------

    def path_for(self, stage: str, payload: Any) -> Path:
        """On-disk location of the entry for ``payload`` under ``stage``."""
        if not stage or any(sep in stage for sep in "/\\"):
            raise ConfigurationError(f"invalid cache stage name {stage!r}")
        digest = content_digest({"format": CACHE_FORMAT_VERSION, "payload": payload})
        return self.root / stage / f"{digest}.pkl"

    @staticmethod
    def _sidecar_path(path: Path, name: str) -> Path:
        """On-disk location of one array sidecar of the entry at ``path``."""
        return path.with_name(f"{path.stem}.{name}.npy")

    @classmethod
    def _entry_bytes(cls, path: Path, sidecar_fields: Tuple[str, ...]) -> int:
        """On-disk size of an entry (pickle + sidecars), for trace attrs.

        Only called while a tracer is recording -- the ``stat`` calls are
        not part of the untraced hot path.
        """
        total = 0
        for candidate in (path, *(cls._sidecar_path(path, name) for name in sidecar_fields)):
            try:
                total += candidate.stat().st_size
            except OSError:
                pass
        return total

    # -- lookup / store -----------------------------------------------------------

    def get(self, stage: str, payload: Any) -> Tuple[Any, bool]:
        """Look up a stage result.  Returns ``(value, hit)``."""
        if not self.enabled:
            self.stats.misses += 1
            return None, False
        path = self.path_for(stage, payload)
        with span("cache.get", stage=stage) as cache_span:
            sidecar_fields: Tuple[str, ...] = ()
            sidecar_s = 0.0
            started = time.perf_counter()
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
                if isinstance(value, _SidecarStub):
                    stub = value.value
                    sidecar_fields = value.fields
                    mmap_mode = "r" if self.mmap_arrays else None
                    sidecar_started = time.perf_counter()
                    for name in value.fields:
                        array = np.load(self._sidecar_path(path, name), mmap_mode=mmap_mode)
                        object.__setattr__(stub, name, array)
                    sidecar_s = time.perf_counter() - sidecar_started
                    value = stub
            except (
                OSError,
                pickle.PickleError,
                EOFError,
                AttributeError,
                ImportError,
                ValueError,
            ):
                self.stats.misses += 1
                cache_span.set(hit=False)
                return None, False
            self.stats.hits += 1
            if cache_span.active:
                total_s = time.perf_counter() - started
                cache_span.set(
                    hit=True,
                    bytes=self._entry_bytes(path, sidecar_fields),
                    pickle_s=round(total_s - sidecar_s, 9),
                    sidecar_s=round(sidecar_s, 9),
                )
            return value, True

    def put(self, stage: str, payload: Any, value: Any) -> None:
        """Store a stage result atomically (no-op when disabled).

        The declared ``__cache_array_fields__`` of ``value`` (if any) are
        written as raw ``.npy`` sidecars *before* the pickle is published,
        so a concurrent reader either sees the complete entry or a miss.
        """
        if not self.enabled:
            return
        path = self.path_for(stage, payload)
        path.parent.mkdir(parents=True, exist_ok=True)

        with span("cache.put", stage=stage) as cache_span:
            stored = value
            sidecar_fields = tuple(getattr(type(value), "__cache_array_fields__", ()) or ())
            sidecar_s = 0.0
            started = time.perf_counter()
            if sidecar_fields:
                stored = copy.copy(value)
                sidecar_started = time.perf_counter()
                for name in sidecar_fields:
                    array = np.asarray(getattr(value, name))
                    self._write_atomic(
                        self._sidecar_path(path, name), lambda h, a=array: np.save(h, a)
                    )
                    object.__setattr__(stored, name, None)
                sidecar_s = time.perf_counter() - sidecar_started
                stored = _SidecarStub(value=stored, fields=sidecar_fields)

            self._write_atomic(
                path, lambda h: pickle.dump(stored, h, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self.stats.writes += 1
            if cache_span.active:
                total_s = time.perf_counter() - started
                cache_span.set(
                    bytes=self._entry_bytes(path, sidecar_fields),
                    pickle_s=round(total_s - sidecar_s, 9),
                    sidecar_s=round(sidecar_s, 9),
                )

    @staticmethod
    def _write_atomic(path: Path, write: Callable[[Any], None]) -> None:
        """Write a file through a temporary + atomic ``os.replace``."""
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                write(handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def get_or_compute(
        self, stage: str, payload: Any, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """Return the cached value or compute-and-store it.

        Returns ``(value, hit)`` where ``hit`` tells whether the value came
        from the cache.
        """
        value, hit = self.get(stage, payload)
        if hit:
            return value, True
        value = compute()
        self.put(stage, payload, value)
        return value, False

    # -- maintenance --------------------------------------------------------------

    def clear(self, stage: Optional[str] = None) -> int:
        """Delete cached entries (one stage or everything).

        Array sidecars are removed along with their entries; the returned
        count is the number of *entries* (pickles) deleted.
        """
        base = self.root / stage if stage else self.root
        removed = 0
        if not base.exists():
            return removed
        for path in sorted(base.rglob("*.pkl")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in sorted(base.rglob("*.npy")):
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def entry_count(self) -> int:
        """Number of entries currently stored."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))


def resolve_cache(
    cache: Union[StageCache, PathLike, None], enabled: bool = True
) -> StageCache:
    """Normalise the cache argument accepted by runner entry points.

    ``None`` means the default location; a path means a cache rooted there.
    An existing :class:`StageCache` is passed through unless ``enabled`` is
    False, in which case a disabled view of the same root is returned --
    either the handle's own flag or the caller's ``use_cache=False`` can
    switch caching off, and neither can override the other's opt-out.
    """
    if isinstance(cache, StageCache):
        if cache.enabled and not enabled:
            return StageCache(
                root=cache.root,
                enabled=False,
                stats=cache.stats,
                mmap_arrays=cache.mmap_arrays,
            )
        return cache
    if cache is None:
        return StageCache(enabled=enabled)
    return StageCache(root=Path(cache), enabled=enabled)
