"""Staged, cache-aware execution of the end-to-end pipeline.

The pipeline is decomposed into the paper's stages --

    scene (DSM rasterisation)
      -> grid (virtual grid + suitable area)
      -> solar field (spatio-temporal irradiance; the dominant cost)
      -> suitability (per-cell placement metric)
      -> placement (solver registry)
      -> evaluation (series/parallel energy model + baseline comparison)

-- with the expensive stages memoised in a :class:`~repro.runner.cache.StageCache`
keyed by content hashes of the declarative inputs.  Scenario variants that
share a roof/weather/time base therefore skip straight to the placement
stage, and re-runs of a whole batch are dominated by the (cheap) solver and
evaluation work.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..core.problem import FloorplanProblem, default_topology
from ..core.evaluation import PlacementComparison, PlacementEvaluator
from ..core.suitability import SuitabilityConfig, SuitabilityMap, compute_suitability
from ..errors import ConfigurationError
from ..gis.gridding import RoofGrid, make_roof_grid
from ..gis.suitable_area import suitable_grid_for_scene
from ..gis.synthetic import RoofScene, RoofSpec, build_roof_scene
from ..io.placement_json import placement_to_dict
from ..pv.datasheet import ModuleDatasheet
from ..scenario.spec import (
    ScenarioSpec,
    grid_content_payload,
    scene_content_payload,
)
from ..solar.irradiance_map import RoofSolarField, SolarSimulationConfig, compute_roof_solar_field
from ..solar.shading import HorizonMap, compute_horizon_map
from ..solar.time_series import TimeGrid
from ..telemetry import span
from ..weather.records import WeatherSeries
from .cache import CACHE_FORMAT_VERSION, StageCache, content_digest, resolve_cache
from .solvers import SolverOutcome, WarmStart, solve, solve_with_fallback

#: Stage names used both as cache sub-directories and as keys of the
#: per-scenario ``stage_cached`` provenance map.
STAGE_SCENE = "scene"
STAGE_GRID = "grid"
STAGE_SOLAR = "solar"
STAGE_SUITABILITY = "suitability"
STAGE_HORIZON = "horizon"
STAGE_SOLVE = "solve"
STAGE_EVALUATE = "evaluate"

#: The six pipeline stages of one scenario run, in execution order.  The
#: first four are the cacheable data-extraction stages (the keys of
#: ``stage_cached``); all six key the per-stage wall times recorded in
#: :attr:`ScenarioResult.stage_times_s` and the campaign metrics table.
PIPELINE_STAGES = (
    STAGE_SCENE,
    STAGE_GRID,
    STAGE_SOLAR,
    STAGE_SUITABILITY,
    STAGE_SOLVE,
    STAGE_EVALUATE,
)


@contextlib.contextmanager
def _timed_stage(name: str, stage_times: Dict[str, float], **attrs: Any) -> Iterator[Any]:
    """Span + wall-time accounting around one pipeline stage.

    The wall time is *always* measured (two ``perf_counter`` calls -- the
    campaign metrics table needs per-stage seconds even when tracing is
    off); the span is the usual no-op unless a tracer is active.
    """
    with span(name, **attrs) as stage_span:
        started = time.perf_counter()
        try:
            yield stage_span
        finally:
            stage_times[name] = stage_times.get(name, 0.0) + (time.perf_counter() - started)


# ---------------------------------------------------------------------------
# Content payloads for non-declarative inputs
# ---------------------------------------------------------------------------


def scenario_content_digest(spec: ScenarioSpec) -> str:
    """Content digest identifying one scenario as a campaign point.

    The digest covers the scenario's full declarative dictionary under the
    same canonical-JSON hashing (and format version) the stage cache uses
    for its entries, so a campaign point's identity changes exactly when any
    input that could change its result changes.  The durable result store
    (:mod:`repro.runner.store`) keys its rows on this digest.
    """
    return content_digest({"format": CACHE_FORMAT_VERSION, "scenario": spec.to_dict()})


def solar_config_payload(config: SolarSimulationConfig) -> dict:
    """Content payload of a materialised :class:`SolarSimulationConfig`."""
    return {
        "sky_model": config.sky_model,
        "decomposition_model": config.decomposition_model,
        "albedo": config.albedo,
        "linke_turbidity": list(config.linke_turbidity.monthly_values),
        "n_horizon_sectors": config.n_horizon_sectors,
        "horizon_max_distance_m": config.horizon_max_distance_m,
        "store_dtype": config.store_dtype,
    }


def weather_content_key(weather: WeatherSeries) -> str:
    """Content digest of a materialised weather series.

    Declarative scenarios hash their :class:`WeatherSpec`; entry points that
    accept an arbitrary :class:`WeatherSeries` (``plan_roof``, the case-study
    drivers) hash the actual arrays instead, so caching stays correct no
    matter where the weather came from.
    """
    digest = hashlib.sha256()
    grid = weather.time_grid
    digest.update(f"{grid.step_minutes}:{grid.day_stride}".encode())
    station = weather.station
    digest.update(
        f"{station.name}:{station.latitude_deg}:{station.longitude_deg}:"
        f"{station.altitude_m}".encode()
    )
    for name in ("ghi", "temperature", "dni", "dhi"):
        array = getattr(weather, name)
        digest.update(name.encode())
        if array is not None:
            digest.update(np.ascontiguousarray(array, dtype=np.float64).tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Cached stage helpers (object-level; shared by scenarios and plan_roof)
# ---------------------------------------------------------------------------


def cached_scene(
    roof: RoofSpec, dsm_pitch: float, cache: StageCache
) -> Tuple[RoofScene, bool]:
    """Rasterise the roof scene, reusing a cached DSM when available."""
    return cache.get_or_compute(
        STAGE_SCENE,
        scene_content_payload(roof, dsm_pitch),
        lambda: build_roof_scene(roof, dsm_pitch=dsm_pitch),
    )


def cached_suitable_grid(
    roof: RoofSpec, scene: RoofScene, dsm_pitch: float, grid_pitch: float, cache: StageCache
) -> Tuple[RoofGrid, bool]:
    """Build the suitable-area virtual grid, cached on roof + pitches."""

    def compute() -> RoofGrid:
        grid = make_roof_grid(scene, pitch=grid_pitch)
        return suitable_grid_for_scene(scene, grid)

    return cache.get_or_compute(
        STAGE_GRID, grid_content_payload(roof, dsm_pitch, grid_pitch), compute
    )


def cached_horizon_map(
    roof: RoofSpec,
    scene: RoofScene,
    dsm_pitch: float,
    config: SolarSimulationConfig,
    cache: StageCache,
) -> Tuple[HorizonMap, bool]:
    """DSM horizon map (the dominant cost inside the solar stage)."""
    payload = {
        "stage": STAGE_HORIZON,
        "scene": scene_content_payload(roof, dsm_pitch),
        "n_sectors": config.n_horizon_sectors,
        "max_distance_m": config.horizon_max_distance_m,
    }
    return cache.get_or_compute(
        STAGE_HORIZON,
        payload,
        lambda: compute_horizon_map(
            scene.dsm.raster,
            n_sectors=config.n_horizon_sectors,
            max_distance=config.horizon_max_distance_m,
        ),
    )


def cached_solar_field(
    roof: RoofSpec,
    scene: RoofScene,
    grid: RoofGrid,
    weather: WeatherSeries,
    config: SolarSimulationConfig,
    dsm_pitch: float,
    grid_pitch: float,
    cache: StageCache,
    weather_key: Optional[str] = None,
    horizon_map: Optional[HorizonMap] = None,
) -> Tuple[RoofSolarField, bool]:
    """Spatio-temporal irradiance field, cached on every influencing input.

    ``horizon_map`` is forwarded to the underlying simulation on a cache
    miss, so callers that already hold the (cached) horizon map do not pay
    for it twice; it does not participate in the content key because it is
    itself derived from the scene + config inputs that do.
    """
    payload = {
        "stage": STAGE_SOLAR,
        "grid": grid_content_payload(roof, dsm_pitch, grid_pitch),
        "weather": weather_key if weather_key is not None else weather_content_key(weather),
        "solar": solar_config_payload(config),
    }
    return cache.get_or_compute(
        STAGE_SOLAR,
        payload,
        lambda: compute_roof_solar_field(scene, grid, weather, config, horizon_map=horizon_map),
    )


def cached_suitability(
    problem: FloorplanProblem, solar_payload_key: Mapping[str, Any], cache: StageCache
) -> Tuple[SuitabilityMap, bool]:
    """Per-cell suitability metric, cached on the solar key + module + percentile.

    The full datasheet participates in the key (not just the module name):
    the metric's temperature correction depends on the module's electrical
    parameters, and inline scenario modules may share a name.
    """
    payload = {
        "stage": STAGE_SUITABILITY,
        "solar": dict(solar_payload_key),
        "module": dataclasses.asdict(problem.datasheet),
        "percentile": problem.suitability_percentile,
    }
    return cache.get_or_compute(
        STAGE_SUITABILITY,
        payload,
        lambda: compute_suitability(
            problem.solar,
            SuitabilityConfig(percentile=problem.suitability_percentile),
            problem.module_model,
        ),
    )


# ---------------------------------------------------------------------------
# Problem preparation shared by plan_roof and the scenario runner
# ---------------------------------------------------------------------------


def prepare_problem(
    roof: RoofSpec,
    n_modules: int,
    n_series: Optional[int] = None,
    datasheet: Optional[ModuleDatasheet] = None,
    grid_pitch: float = 0.2,
    dsm_pitch: float = 0.4,
    time_grid: Optional[TimeGrid] = None,
    weather: Optional[WeatherSeries] = None,
    weather_seed: int = 0,
    solar_config: Optional[SolarSimulationConfig] = None,
    cache: Optional[StageCache] = None,
    allow_rotation: bool = False,
    label: Optional[str] = None,
) -> Tuple[FloorplanProblem, Dict[str, bool], WeatherSeries]:
    """Run the data-extraction stages and assemble a floorplanning problem.

    Returns ``(problem, stage_cached, weather)`` where ``stage_cached`` maps
    stage names to whether the disk cache supplied them.
    """
    from ..pv.datasheet import PV_MF165EB3
    from ..weather.synthetic import SyntheticWeatherConfig, generate_weather

    sheet = datasheet if datasheet is not None else PV_MF165EB3
    solar_cfg = solar_config if solar_config is not None else SolarSimulationConfig()
    stage_cache = resolve_cache(cache) if cache is not None else StageCache(enabled=False)

    if weather is not None:
        # The weather series carries its own sampling; an explicitly passed
        # time grid must agree with it.
        if time_grid is not None and time_grid.n_samples != weather.time_grid.n_samples:
            raise ConfigurationError(
                "the provided weather series and time grid disagree on sample count"
            )
        series = weather
    else:
        grid_time = (
            time_grid if time_grid is not None else TimeGrid(step_minutes=60.0, day_stride=7)
        )
        series = generate_weather(grid_time, SyntheticWeatherConfig(seed=weather_seed))

    stage_cached: Dict[str, bool] = {}
    scene, stage_cached[STAGE_SCENE] = cached_scene(roof, dsm_pitch, stage_cache)
    grid, stage_cached[STAGE_GRID] = cached_suitable_grid(
        roof, scene, dsm_pitch, grid_pitch, stage_cache
    )
    solar, stage_cached[STAGE_SOLAR] = cached_solar_field(
        roof, scene, grid, series, solar_cfg, dsm_pitch, grid_pitch, stage_cache
    )

    series_length = n_series if n_series is not None else min(8, n_modules)
    topology = default_topology(n_modules, series_length)
    problem = FloorplanProblem(
        grid=solar.grid,
        solar=solar,
        n_modules=n_modules,
        topology=topology,
        datasheet=sheet,
        allow_rotation=allow_rotation,
        label=label if label is not None else roof.name,
    )
    return problem, stage_cached, series


# ---------------------------------------------------------------------------
# Scenario execution
# ---------------------------------------------------------------------------


@dataclass
class ScenarioResult:
    """Flat, JSONL-serialisable outcome of one scenario run."""

    scenario: str
    solver: str
    n_modules: int
    n_valid_cells: int
    grid_cols: int
    grid_rows: int
    annual_energy_mwh: float
    baseline_energy_mwh: float
    improvement_percent: float
    wiring_extra_length_m: float
    capacity_factor: float
    runtime_s: float
    stage_cached: Dict[str, bool] = field(default_factory=dict)
    #: Wall-clock seconds per pipeline stage (keys of :data:`PIPELINE_STAGES`).
    #: Like ``runtime_s`` this is provenance, not part of the fingerprint.
    stage_times_s: Dict[str, float] = field(default_factory=dict)
    solver_info: Dict[str, Any] = field(default_factory=dict)
    placement: Dict[str, Any] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    #: Degradation provenance: True when the configured solver failed (or
    #: blew its budget) and ``fallback_solver`` produced this best-effort
    #: answer instead; ``degradation_reason`` records why, one line per
    #: abandoned chain entry.  ``solver`` always names the *configured*
    #: solver so report joins stay stable.
    degraded: bool = False
    fallback_solver: Optional[str] = None
    degradation_reason: Optional[str] = None
    #: Warm-start provenance: True when a neighbour's placement actually
    #: contributed to the solve.  Like ``runtime_s`` this is provenance,
    #: not part of the fingerprint -- warm and cold runs of the same
    #: scenario are interchangeable by construction.
    warm_started: bool = False
    #: Solver-reported relative optimality gap (None = not reported).
    gap: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-serialisable record (one JSONL line)."""
        return {
            "scenario": self.scenario,
            "solver": self.solver,
            "n_modules": self.n_modules,
            "n_valid_cells": self.n_valid_cells,
            "grid_cols": self.grid_cols,
            "grid_rows": self.grid_rows,
            "annual_energy_mwh": self.annual_energy_mwh,
            "baseline_energy_mwh": self.baseline_energy_mwh,
            "improvement_percent": self.improvement_percent,
            "wiring_extra_length_m": self.wiring_extra_length_m,
            "capacity_factor": self.capacity_factor,
            "runtime_s": self.runtime_s,
            "stage_cached": dict(self.stage_cached),
            "stage_times_s": dict(self.stage_times_s),
            "solver_info": dict(self.solver_info),
            "placement": dict(self.placement),
            "tags": list(self.tags),
            "degraded": self.degraded,
            "fallback_solver": self.fallback_solver,
            "degradation_reason": self.degradation_reason,
            "warm_started": self.warm_started,
            "gap": self.gap,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        return cls(
            scenario=str(data["scenario"]),
            solver=str(data["solver"]),
            n_modules=int(data["n_modules"]),
            n_valid_cells=int(data["n_valid_cells"]),
            grid_cols=int(data.get("grid_cols", 0)),
            grid_rows=int(data.get("grid_rows", 0)),
            annual_energy_mwh=float(data["annual_energy_mwh"]),
            baseline_energy_mwh=float(data["baseline_energy_mwh"]),
            improvement_percent=float(data["improvement_percent"]),
            wiring_extra_length_m=float(data["wiring_extra_length_m"]),
            capacity_factor=float(data["capacity_factor"]),
            runtime_s=float(data["runtime_s"]),
            stage_cached=dict(data.get("stage_cached", {})),
            stage_times_s={
                str(name): float(seconds)
                for name, seconds in dict(data.get("stage_times_s", {})).items()
            },
            solver_info=dict(data.get("solver_info", {})),
            placement=dict(data.get("placement", {})),
            tags=tuple(data.get("tags", [])),
            degraded=bool(data.get("degraded", False)),
            fallback_solver=data.get("fallback_solver"),
            degradation_reason=data.get("degradation_reason"),
            warm_started=bool(data.get("warm_started", False)),
            gap=None if data.get("gap") is None else float(data["gap"]),
        )

    def fingerprint(self) -> dict:
        """Deterministic subset of the result (no runtimes, no cache state).

        Two runs of the same scenario -- serial or parallel, cold or warm
        cache -- must produce identical fingerprints; the determinism tests
        and the batch runner's integrity checks rely on this.
        """
        placement = dict(self.placement)
        placement.pop("metadata", None)
        return {
            "scenario": self.scenario,
            "solver": self.solver,
            "n_modules": self.n_modules,
            "n_valid_cells": self.n_valid_cells,
            "annual_energy_mwh": self.annual_energy_mwh,
            "baseline_energy_mwh": self.baseline_energy_mwh,
            "improvement_percent": self.improvement_percent,
            "wiring_extra_length_m": self.wiring_extra_length_m,
            "placement": placement,
        }

    def report(self) -> str:
        """Short human-readable summary line."""
        cached = [name for name, hit in self.stage_cached.items() if hit]
        cache_note = f" [cached: {', '.join(cached)}]" if cached else ""
        degraded_note = (
            f" [degraded -> {self.fallback_solver}]" if self.degraded else ""
        )
        return (
            f"{self.scenario}: solver={self.solver}{degraded_note} N={self.n_modules} "
            f"Ng={self.n_valid_cells} energy={self.annual_energy_mwh:.3f} MWh/y "
            f"(baseline {self.baseline_energy_mwh:.3f}, "
            f"{self.improvement_percent:+.2f} %) in {self.runtime_s:.2f}s{cache_note}"
        )


def run_scenario(
    spec: ScenarioSpec,
    cache: Optional[StageCache] = None,
    use_cache: bool = True,
    warm_start: Optional[WarmStart] = None,
) -> ScenarioResult:
    """Execute one scenario through the staged pipeline.

    Parameters
    ----------
    spec:
        The declarative scenario.
    cache:
        Stage cache handle (or None for the default location).
    use_cache:
        Set False to force recomputation of every stage (the handle's own
        ``enabled`` flag also applies when a :class:`StageCache` is passed).
    warm_start:
        Optional neighbour placement hint forwarded to warm-start-capable
        solvers.  Hints travel out-of-band -- they are never part of the
        spec, so a scenario's content digest (and therefore its identity in
        caches and stores) is the same warm or cold.
    """
    start = time.perf_counter()
    stage_cache = resolve_cache(cache, enabled=use_cache)
    stage_cached: Dict[str, bool] = {}
    stage_times: Dict[str, float] = {}

    with span(
        "scenario",
        scenario=spec.name,
        solver=spec.solver.name,
        n_modules=spec.n_modules,
    ) as scenario_span:
        with _timed_stage(STAGE_SCENE, stage_times) as stage_span:
            scene, stage_cached[STAGE_SCENE] = cached_scene(
                spec.roof, spec.dsm_pitch, stage_cache
            )
            stage_span.set(cached=stage_cached[STAGE_SCENE])
        with _timed_stage(STAGE_GRID, stage_times) as stage_span:
            grid, stage_cached[STAGE_GRID] = cached_suitable_grid(
                spec.roof, scene, spec.dsm_pitch, spec.grid_pitch, stage_cache
            )
            stage_span.set(cached=stage_cached[STAGE_GRID])

        with _timed_stage(STAGE_SOLAR, stage_times) as stage_span:
            time_grid = spec.time.build()
            weather = spec.weather.build(time_grid)
            solar_cfg = spec.solar.build()
            solar_payload = spec.solar_payload()
            solar, stage_cached[STAGE_SOLAR] = stage_cache.get_or_compute(
                STAGE_SOLAR,
                solar_payload,
                lambda: compute_roof_solar_field(scene, grid, weather, solar_cfg),
            )
            stage_span.set(cached=stage_cached[STAGE_SOLAR])

        topology = default_topology(spec.n_modules, spec.series_length())
        problem = FloorplanProblem(
            grid=solar.grid,
            solar=solar,
            n_modules=spec.n_modules,
            topology=topology,
            datasheet=spec.datasheet(),
            allow_rotation=spec.allow_rotation,
            label=spec.name,
        )

        with _timed_stage(STAGE_SUITABILITY, stage_times) as stage_span:
            suitability, stage_cached[STAGE_SUITABILITY] = cached_suitability(
                problem, solar_payload, stage_cache
            )
            stage_span.set(cached=stage_cached[STAGE_SUITABILITY])

        with _timed_stage(STAGE_SOLVE, stage_times):
            chain = solve_with_fallback(
                problem,
                spec.solver.name,
                spec.solver.options,
                suitability,
                fallback=spec.solver.fallback,
                budget_s=spec.solver.budget_s,
                warm_start=warm_start if spec.solver.warm_start else None,
            )
            outcome = chain.outcome
            if (
                spec.solver.name == "traditional"
                and not spec.solver.options
                and not chain.degraded
            ):
                baseline: SolverOutcome = outcome
            else:
                baseline = solve(problem, "traditional", {}, suitability)

        with _timed_stage(STAGE_EVALUATE, stage_times):
            # One evaluation context scores both the proposed and the baseline
            # placement, sharing the per-problem precomputation.
            evaluator = PlacementEvaluator(problem)
            comparison: PlacementComparison = evaluator.compare(
                baseline.placement, outcome.placement
            )

        runtime = time.perf_counter() - start
        scenario_span.set(
            runtime_s=round(runtime, 6),
            cached_stages=sum(1 for hit in stage_cached.values() if hit),
        )
    return ScenarioResult(
        scenario=spec.name,
        solver=spec.solver.name,
        n_modules=spec.n_modules,
        n_valid_cells=problem.grid.n_valid,
        grid_cols=problem.grid.n_cols,
        grid_rows=problem.grid.n_rows,
        annual_energy_mwh=comparison.candidate.annual_energy_mwh,
        baseline_energy_mwh=comparison.baseline.annual_energy_mwh,
        improvement_percent=comparison.improvement_percent,
        wiring_extra_length_m=comparison.candidate.wiring_extra_length_m,
        capacity_factor=comparison.candidate.capacity_factor,
        runtime_s=runtime,
        stage_cached=stage_cached,
        stage_times_s={name: round(seconds, 9) for name, seconds in stage_times.items()},
        solver_info=dict(outcome.info),
        placement=placement_to_dict(outcome.placement),
        tags=spec.tags,
        degraded=chain.degraded,
        fallback_solver=chain.fallback_solver,
        degradation_reason="; ".join(chain.failures) if chain.failures else None,
        warm_started=outcome.warm_started,
        gap=outcome.gap,
    )
