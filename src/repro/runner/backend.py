"""Pluggable campaign store backends behind a URL scheme registry.

The SQLite :class:`~repro.runner.store.ResultStore` is the first (and so
far only) implementation of the :class:`StoreBackend` protocol — the
narrow interface a campaign driver or :mod:`~repro.runner.worker` fleet
actually needs from shared campaign state: enroll points, atomically
claim/heartbeat/mark/release them, reclaim stale leases, and query rows.
A future Postgres or HTTP backend plugs in by implementing the protocol
and registering a URL scheme:

    >>> from repro.runner.backend import available_schemes, store_from_url
    >>> available_schemes()
    ['sqlite']
    >>> store = store_from_url("sqlite:///:memory:")  # doctest: +SKIP

``resolve_store`` in :mod:`repro.runner.store` dispatches any
``scheme://...`` string through this registry, so every CLI ``--store``
flag and every ``store=`` keyword accepts backend URLs transparently;
plain filesystem paths keep opening SQLite stores directly.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)
from urllib.parse import unquote, urlsplit

from ..errors import ConfigurationError
from .store import (
    DEFAULT_STALE_AFTER_S,
    ClaimedPoint,
    PointRecord,
    ResultStore,
    default_store_path,
)


@runtime_checkable
class StoreBackend(Protocol):
    """The store surface a campaign driver or worker fleet relies on.

    Structural (duck-typed) and :func:`runtime_checkable`:
    ``isinstance(store, StoreBackend)`` verifies method presence only, as
    usual for runtime protocols.  Implementations must provide the same
    atomicity guarantees :class:`~repro.runner.store.ResultStore`
    documents — in particular ``claim_next_pending`` must never hand the
    same point to two owners, and the ``require_owner`` fencing on the
    ``mark_*`` methods must be enforced in the same transaction that
    applies the write.
    """

    def enroll(self, campaign: str, specs: Sequence[Any]) -> List[PointRecord]: ...

    def claim_next_pending(
        self,
        campaign: str,
        owner: Optional[str] = None,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        now: Optional[float] = None,
    ) -> Optional[ClaimedPoint]: ...

    def mark_running(
        self, campaign: str, digest: str, lease_owner: Optional[str] = None
    ) -> None: ...

    def heartbeat(self, campaign: str, digests: Sequence[str]) -> int: ...

    def mark_done(
        self,
        campaign: str,
        digest: str,
        result: Mapping[str, Any],
        wall_time_s: Optional[float] = None,
        require_owner: Optional[str] = None,
    ) -> bool: ...

    def mark_failed(
        self,
        campaign: str,
        digest: str,
        error: str,
        require_owner: Optional[str] = None,
    ) -> bool: ...

    def mark_timed_out(
        self,
        campaign: str,
        digest: str,
        error: str,
        require_owner: Optional[str] = None,
    ) -> bool: ...

    def release(self, campaign: str, digest: str, owner: str) -> bool: ...

    def reclaim_stale(
        self, campaign: str, stale_after_s: float, now: Optional[float] = None
    ) -> List[str]: ...

    def reset_running(self, campaign: str) -> int: ...

    def point(self, campaign: str, digest: str) -> PointRecord: ...

    def points(
        self, campaign: str, status: Optional[str] = None
    ) -> List[PointRecord]: ...

    def status_counts(self, campaign: str) -> Dict[str, int]: ...

    def fleet(
        self, campaign: str, now: Optional[float] = None
    ) -> List[Dict[str, Any]]: ...

    def results(self, campaign: str) -> List[Any]: ...

    def close(self) -> None: ...


BackendFactory = Callable[[str], StoreBackend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(
    scheme: str, factory: BackendFactory, overwrite: bool = False
) -> None:
    """Register ``factory`` to build stores for ``scheme://`` URLs.

    The factory receives the full URL and returns a :class:`StoreBackend`.
    Re-registering an existing scheme raises unless ``overwrite=True`` so
    two plugins cannot silently shadow each other.
    """
    scheme = scheme.lower().strip()
    if not scheme:
        raise ConfigurationError("backend scheme must be a non-empty string")
    if scheme in _BACKENDS and not overwrite:
        raise ConfigurationError(
            f"store backend scheme {scheme!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _BACKENDS[scheme] = factory


def available_schemes() -> List[str]:
    """The registered backend URL schemes, sorted."""
    return sorted(_BACKENDS)


def store_from_url(url: str) -> StoreBackend:
    """Build a store backend from a ``scheme://...`` URL.

    Unknown schemes raise a :class:`~repro.errors.ConfigurationError`
    listing what is registered, so a typo'd ``sqlte://`` fails with an
    actionable message instead of being treated as a filesystem path.
    """
    scheme, sep, _ = url.partition("://")
    if not sep:
        raise ConfigurationError(
            f"not a store backend URL (expected scheme://...): {url!r}"
        )
    factory = _BACKENDS.get(scheme.lower())
    if factory is None:
        known = ", ".join(available_schemes()) or "(none)"
        raise ConfigurationError(
            f"unknown store backend scheme {scheme!r} in {url!r}; "
            f"registered schemes: {known}"
        )
    return factory(url)


def _sqlite_backend(url: str) -> StoreBackend:
    """``sqlite:///path/to/store.sqlite`` → :class:`ResultStore`.

    The triple-slash form (empty authority) is the canonical spelling;
    ``sqlite://`` with no path opens the default store location.  A
    non-empty authority (``sqlite://host/db``) is rejected because SQLite
    has no notion of a remote host.
    """
    parts = urlsplit(url)
    if parts.netloc:
        raise ConfigurationError(
            f"sqlite store URLs take no host; write sqlite:///{parts.netloc}"
            f"{parts.path} (got {url!r})"
        )
    path = unquote(parts.path)
    if not path or path == "/":
        return ResultStore(default_store_path())
    return ResultStore(path)


register_backend("sqlite", _sqlite_backend)


__all__ = [
    "StoreBackend",
    "BackendFactory",
    "register_backend",
    "available_schemes",
    "store_from_url",
]
