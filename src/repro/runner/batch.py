"""Parallel batch execution of scenario fleets.

The batch runner executes a list of :class:`~repro.scenario.ScenarioSpec`
in a :class:`~concurrent.futures.ProcessPoolExecutor` and appends one JSON
record per scenario to a JSONL results store.  The worker transport is
zero-copy by construction: each submission carries only the scenario's
declarative dictionary plus the cache *location* (a directory path -- the
content keys are recomputed inside the worker), never a pickled irradiance
array or any other bulk simulation object; workers attach to the shared
on-disk stage cache, whose bulk arrays they memory-map read-only (see
:mod:`repro.runner.cache`).  The first scenario that needs a given solar
field computes and publishes it, all later scenarios -- in this run or the
next -- hit the cache.

Submission is chunked and completion-streamed: at most a small multiple of
the worker count is in flight at any moment (so huge fleets do not pile up
thousands of pending futures) and finished results are collected with
``concurrent.futures.wait`` as they complete instead of the ``executor.map``
barrier.  Results are still returned in input order regardless of completion
order, and all scenario inputs are seeded, so a parallel batch is
bit-for-bit identical to a serial one.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..scenario.spec import ScenarioSpec
from .cache import PathLike, StageCache, resolve_cache
from .stages import ScenarioResult, run_scenario

#: In-flight submissions per worker process: enough to keep every worker
#: busy while results stream back, small enough that a 10k-scenario fleet
#: does not materialise 10k pending futures up front.
INFLIGHT_PER_WORKER = 2


def count_stage_flags(
    results: Sequence[ScenarioResult], cached: bool
) -> Dict[str, int]:
    """Tally per-stage cache provenance across scenario results.

    ``cached=True`` counts results whose stage was served from the cache,
    ``cached=False`` counts recomputations.  Every stage that appears in any
    result's provenance map gets an entry (possibly zero), so hit and miss
    tallies always cover the same stage set.  Shared by the batch- and
    sweep-level accounting so the two can never drift apart.
    """
    counts: Dict[str, int] = {}
    for result in results:
        for stage, hit in result.stage_cached.items():
            counts[stage] = counts.get(stage, 0) + (1 if hit == cached else 0)
    return counts


@dataclass
class BatchResult:
    """Outcome of one batch run."""

    results: List[ScenarioResult]
    runtime_s: float
    jobs: int
    results_path: Optional[Path] = None
    cache_dir: Optional[Path] = None

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios executed."""
        return len(self.results)

    def by_name(self) -> Dict[str, ScenarioResult]:
        """Results keyed by scenario name."""
        return {result.scenario: result for result in self.results}

    def cache_hit_counts(self) -> Dict[str, int]:
        """Per-stage count of scenarios served from the cache."""
        return count_stage_flags(self.results, cached=True)

    def cache_miss_counts(self) -> Dict[str, int]:
        """Per-stage count of scenarios that *recomputed* the stage.

        The complement of :meth:`cache_hit_counts` over the same provenance
        records: ``misses[stage]`` scenarios had to recompute ``stage``
        because no cache entry existed (or the cache was disabled).  A warm
        re-run of an unchanged fleet must report zero misses for every
        expensive stage -- the sweep engine's reuse accounting asserts
        exactly that.
        """
        return count_stage_flags(self.results, cached=False)

    def summary(self) -> dict:
        """Aggregate figures for reports and the CLI."""
        return {
            "n_scenarios": self.n_scenarios,
            "jobs": self.jobs,
            "runtime_s": self.runtime_s,
            "total_energy_mwh": sum(r.annual_energy_mwh for r in self.results),
            "cache_hits_by_stage": self.cache_hit_counts(),
            "cache_misses_by_stage": self.cache_miss_counts(),
            "results_path": None if self.results_path is None else str(self.results_path),
        }


def _worker_payload(
    spec: ScenarioSpec,
    cache_dir: Optional[str],
    use_cache: bool,
    mmap_arrays: bool = True,
) -> Tuple[dict, Optional[str], bool, bool]:
    """The pickled work unit shipped to one worker process.

    Deliberately tiny: the declarative scenario dictionary and the cache
    *location* (plus its memmap flag).  Workers rederive every content key
    from the spec and pull bulk arrays from the shared cache
    (memory-mapped), so no irradiance matrix -- or any other numpy payload
    -- ever crosses the process boundary.  A test asserts the serialised
    size stays in the kilobytes.
    """
    return (spec.to_dict(), cache_dir, use_cache, mmap_arrays)


def _run_scenario_worker(args: tuple) -> dict:
    """Process-pool entry point: rebuild the spec, run it, return a record."""
    # The batch already parallelises across processes; keep the horizon
    # kernel single-threaded inside each worker to avoid oversubscription.
    os.environ.setdefault("REPRO_HORIZON_WORKERS", "1")
    spec_dict, cache_dir, use_cache, mmap_arrays = args
    spec = ScenarioSpec.from_dict(spec_dict)
    cache = (
        StageCache(root=Path(cache_dir), enabled=use_cache, mmap_arrays=mmap_arrays)
        if cache_dir
        else None
    )
    result = run_scenario(spec, cache=cache, use_cache=use_cache)
    return result.to_dict()


def run_batch(
    specs: Sequence[ScenarioSpec],
    cache: Union[StageCache, PathLike, None] = None,
    jobs: Optional[int] = None,
    results_path: Optional[PathLike] = None,
    use_cache: bool = True,
    parallel: bool = True,
) -> BatchResult:
    """Execute a scenario fleet, optionally in parallel, and store results.

    Parameters
    ----------
    specs:
        The scenarios to run.  Names must be unique (they key the store).
    cache:
        Stage cache handle or directory shared by every worker.
    jobs:
        Worker-process count; defaults to ``min(len(specs), cpu_count)``.
        ``1`` (or ``parallel=False``) runs serially in-process.
    results_path:
        When given, one JSON record per scenario is written there (JSONL).
    use_cache:
        Set False to bypass the stage cache entirely.
    parallel:
        Convenience switch for forcing serial execution.

    Example
    -------
    A one-scenario serial batch (parallel batches are bit-for-bit
    identical; ``use_cache=False`` keeps the example self-contained):

    >>> from repro.gis import RoofSpec
    >>> from repro.runner import run_batch
    >>> from repro.scenario import ScenarioSpec, TimeSpec
    >>> spec = ScenarioSpec(
    ...     name="doc-batch",
    ...     roof=RoofSpec(name="doc-roof", width_m=6.0, depth_m=4.0,
    ...                   tilt_deg=30.0, azimuth_deg=0.0),
    ...     n_modules=2, n_series=2, grid_pitch=0.4,
    ...     time=TimeSpec(step_minutes=240.0, day_stride=45),
    ... )
    >>> batch = run_batch([spec], parallel=False, use_cache=False)
    >>> batch.n_scenarios
    1
    >>> batch.results[0].annual_energy_mwh > 0
    True
    >>> sorted(batch.summary())  # doctest: +NORMALIZE_WHITESPACE
    ['cache_hits_by_stage', 'cache_misses_by_stage', 'jobs', 'n_scenarios',
     'results_path', 'runtime_s', 'total_energy_mwh']
    """
    specs = list(specs)
    if not specs:
        raise ConfigurationError("a batch needs at least one scenario")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError("scenario names within a batch must be unique")

    stage_cache = resolve_cache(cache, enabled=use_cache)
    # Workers reconstruct their cache handle from (dir, flag); the effective
    # flag honours both the handle's own state and the use_cache argument so
    # a disabled handle can never resurrect as an enabled default-dir cache.
    use_cache = stage_cache.enabled
    cache_dir = str(stage_cache.root) if use_cache else None

    if jobs is None:
        jobs = min(len(specs), os.cpu_count() or 1)
    jobs = max(1, int(jobs))
    if not parallel:
        jobs = 1

    start = time.perf_counter()
    if jobs == 1:
        records = [
            run_scenario(spec, cache=stage_cache, use_cache=use_cache).to_dict()
            for spec in specs
        ]
    else:
        work = [
            _worker_payload(spec, cache_dir, use_cache, stage_cache.mmap_arrays)
            for spec in specs
        ]
        records = [None] * len(work)
        max_inflight = jobs * INFLIGHT_PER_WORKER
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            pending: Dict[object, int] = {}
            next_index = 0
            while next_index < len(work) or pending:
                while next_index < len(work) and len(pending) < max_inflight:
                    future = executor.submit(_run_scenario_worker, work[next_index])
                    pending[future] = next_index
                    next_index += 1
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    # .result() re-raises worker exceptions, like map() did.
                    records[pending.pop(future)] = future.result()
    runtime = time.perf_counter() - start

    results = [ScenarioResult.from_dict(record) for record in records]

    path: Optional[Path] = None
    if results_path is not None:
        path = Path(results_path)
        write_results_jsonl(results, path)

    return BatchResult(
        results=results,
        runtime_s=runtime,
        jobs=jobs,
        results_path=path,
        cache_dir=stage_cache.root if stage_cache.enabled else None,
    )


def write_results_jsonl(results: Sequence[ScenarioResult], path: PathLike) -> None:
    """Write one JSON record per scenario result (JSONL store)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")


def read_results_jsonl(path: PathLike) -> List[ScenarioResult]:
    """Read a JSONL results store back into :class:`ScenarioResult` objects."""
    results: List[ScenarioResult] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                results.append(ScenarioResult.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed results record at {path}:{line_number}: {exc}"
                ) from exc
    return results
